#!/usr/bin/env python
"""The paper's cardiovascular use case, end to end (Sec. V-A, Fig. 6-9).

Reproduces the narrative of the evaluation section: deploy on small
instances, transfer ``fourCelFileSamples.zip``, run
``affyDifferentialExpression.R``, then expand the cluster with a
c1.medium host via ``gp-instance-update`` and analyse the 190.3 MB
``affyCelFileSamples.zip``.

Run:  python examples/cardio_workflow.py
"""

from repro.core import CloudTestbed, run_usecase
from repro.reporting import render_table


def main() -> None:
    print("=" * 72)
    print("Use case: baseline (m1.small cluster, no expansion)")
    print("=" * 72)
    baseline = run_usecase(bed=CloudTestbed(seed=0), scale_up_with=None)
    print(f"$ gp-instance-create -c galaxy.conf")
    print(f"Created new instance: {baseline.instance.id}")
    print(f"$ gp-instance-start {baseline.instance.id}")
    print(f"Starting instance {baseline.instance.id}... done!  "
          f"({baseline.deploy_minutes:.1f} simulated minutes)")
    print(f"step 1: Get Data via Globus Online  -> "
          f"{baseline.transfer_small_seconds:.0f} s for 10.7 MB")
    print(f"step 3: affyDifferentialExpression.R on {baseline.step3_job.machine} "
          f"-> {baseline.step3_job.wall_s:.0f} s")
    print(f"step 4: affyDifferentialExpression.R (190.3 MB) on "
          f"{baseline.step4_job.machine} -> {baseline.step4_job.wall_s:.0f} s")
    print(f"steps 3+4 total: {baseline.steps34_minutes:.1f} min "
          f"(paper: 10.7 min)")

    print()
    print("=" * 72)
    print("Use case: dynamic expansion (gp-instance-update adds c1.medium)")
    print("=" * 72)
    scaled = run_usecase(bed=CloudTestbed(seed=0), scale_up_with="c1.medium")
    print(f"$ gp-instance-update -t newtopology.json {scaled.instance.id}")
    print(f"update applied in {scaled.update_seconds:.0f} simulated seconds")
    print(f"step 4 now runs on {scaled.step4_job.machine} "
          f"({scaled.step4_job.wall_s:.0f} s)")
    print(f"steps 3+4 total: {scaled.steps34_minutes:.1f} min (paper: 6.9 min)")

    print()
    print(render_table(
        ["scenario", "steps 3+4 (min)", "paper (min)"],
        [
            ("small cluster", f"{baseline.steps34_minutes:.1f}", "10.7"),
            ("after adding c1.medium", f"{scaled.steps34_minutes:.1f}", "6.9"),
        ],
        title="Summary",
    ))

    print("\nText output of affyDifferentialExpression.R (Fig. 8):")
    for row in scaled.top_table_head.splitlines():
        print(f"  {row}")
    print("\nHistory panel (Fig. 9):")
    for line in scaled.history_panel:
        print(f"  {line}")


if __name__ == "__main__":
    main()
