#!/usr/bin/env python
"""Figure 11: Globus Transfer vs Galaxy's FTP and HTTP uploads.

Sweeps file sizes from 1 MB to 2 GB over the calibrated laptop->EC2 WAN
path and prints the achieved rates, plus the paper-vs-measured summary.
Also demonstrates the failure modes the paper highlights: the 2 GB HTTP
cap, and Globus Transfer's automatic fault retry.

Run:  python examples/transfer_comparison.py
"""

from repro.bench import figure11
from repro.calibration import GB, MB
from repro.core import CloudTestbed
from repro.transfer import TransferItem, TransferSpec


def main() -> None:
    result = figure11.run()
    print(result.render())

    # HTTP's hard cap (Sec. IV-A: "files larger than 2GB cannot be uploaded")
    capped = figure11.run(sizes=[2 * GB + MB])
    assert capped.rates["http"][0] is None
    print("\nHTTP upload of a 2 GB + 1 MB file: refused (the paper's hard cap).")
    print(f"Globus Transfer moved the same file at "
          f"{capped.rates['globus'][0]:.1f} Mbit/s.")

    # Fault recovery: a flaky WAN, retried automatically.
    bed = CloudTestbed(seed=9, fault_rate=0.35)
    bed.laptop_fs.write("/home/boliu/flaky.dat", size=512 * MB)
    from repro.cluster import SimFilesystem
    from repro.transfer import GridFTPServer

    galaxy_fs = SimFilesystem("g")
    server = GridFTPServer(ctx=bed.ctx, hostname="g.ec2", site="ec2", fs=galaxy_fs)
    bed.go.register_user("cvrg")
    bed.go.create_endpoint("cvrg#galaxy", [server], public=True)
    task = bed.go.submit(
        "boliu",
        TransferSpec(
            source_endpoint="boliu#laptop",
            dest_endpoint="cvrg#galaxy",
            items=[TransferItem("/home/boliu/flaky.dat", "/in/flaky.dat")],
            notify=False,
        ),
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    print(f"\nFlaky-network transfer: status={task.status.value}, "
          f"{task.faults} fault(s) retried automatically, "
          f"effective rate {task.effective_rate_mbps():.1f} Mbit/s")
    for event in task.events:
        if event.code == "FAULT":
            print(f"  t={event.time:7.1f}s  {event.description}")


if __name__ == "__main__":
    main()
