#!/usr/bin/env python
"""Regenerate every evaluation artefact of the paper in one run.

Prints, in order:

* the Sec. V-A use case (baseline vs dynamic expansion),
* Figure 10 (deployment/execution/cost per instance type),
* Figure 11 (transfer rate per method and file size),
* the four design-choice ablations,

each with its paper-vs-measured comparison — the same tables the
benchmark suite writes to ``benchmarks/results/``.

Run:  python examples/reproduce_paper.py        (~15 s of real time)
"""

from repro.bench import ablations, figure10, figure11, usecase


def main() -> None:
    print("#" * 72)
    print("# Use case (Sec. V-A)")
    print("#" * 72)
    bench = usecase.run()
    bench.check_shape()
    print(bench.render())

    print()
    print("#" * 72)
    print("# Figure 10")
    print("#" * 72)
    fig10 = figure10.run()
    fig10.check_shape()
    print(fig10.render())

    print()
    print("#" * 72)
    print("# Figure 11")
    print("#" * 72)
    fig11 = figure11.run()
    fig11.check_shape()
    print(fig11.render())

    print()
    print("#" * 72)
    print("# Ablations")
    print("#" * 72)
    for runner in (
        ablations.run_ami_ablation,
        ablations.run_billing_ablation,
        ablations.run_pool_width_ablation,
        ablations.run_stream_ablation,
    ):
        result = runner()
        result.check_shape()
        print(result.render())
        print()


if __name__ == "__main__":
    main()
