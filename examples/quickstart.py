#!/usr/bin/env python
"""Quickstart: deploy a Galaxy cloud instance and run one analysis.

This walks the happy path in ~40 lines of API:

1. build the simulated world (EC2 + Globus Online + the CVRG data
   endpoint);
2. deploy the paper's ``galaxy.conf`` topology with Globus Provision;
3. pull a dataset in through *Get Data via Globus Online*;
4. run a CRData statistical tool on the Condor pool;
5. look at the history panel, exactly what the Galaxy UI would show.

Run:  python examples/quickstart.py
"""

from repro.core import CVRG_DATA_ENDPOINT, FOUR_CEL_PATH, CloudTestbed, usecase_topology
from repro.provision import GlobusProvision
from repro.tools_globus import GET_DATA_TOOL_ID


def main() -> None:
    bed = CloudTestbed(seed=0)
    gp = GlobusProvision(bed)

    # 1-2: create and start a GP instance from the paper's topology.
    gpi = gp.create(usecase_topology(instance_type="c1.medium", cluster_nodes=1))
    print(f"Created new instance: {gpi.id}")

    def scenario():
        print(f"Starting instance {gpi.id}...")
        yield from gp.start(gpi.id)
        print(f"done!  (simulated deployment: {gpi.start_seconds / 60:.1f} min)")
        doc = gpi.describe()
        for host in doc["hosts"]:
            print(f"  {host['name']:24s} {host['instance_type']:10s} {host['hostname']}")
        print(f"Galaxy URL: {doc['galaxy_url']}")

        app = gpi.deployment.galaxy
        history = app.create_history("boliu", "Quickstart")

        # 3: fetch the 10.7 MB CEL archive from the CVRG endpoint.
        fetch = app.run_tool(
            "boliu", history, GET_DATA_TOOL_ID,
            params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
        )
        yield app.jobs.when_done(fetch)
        dataset = fetch.outputs["output"]
        print(f"\nFetched {dataset.name} ({dataset.size / 2**20:.1f} MB) "
              f"in {fetch.wall_s:.0f} simulated seconds")

        # 4: run differential expression on the Condor pool.
        analyse = app.run_tool(
            "boliu", history, "crdata_affyDifferentialExpression",
            params={"top_n": 10}, inputs=[dataset],
        )
        yield app.jobs.when_done(analyse)
        print(f"Analysis ran on {analyse.machine} in {analyse.wall_s:.0f} s\n")

        # 5: the history panel and the first rows of the top table.
        print("History panel:")
        for line in app.history_panel(history):
            print(f"  {line}")
        table = app.fs.read(analyse.outputs["top_table"].file_path).decode()
        print("\nTop table (first 5 rows):")
        for row in table.splitlines()[:6]:
            print(f"  {row}")

        gp.terminate(gpi.id)
        print(f"\nTerminated {gpi.id}.  "
              f"Total simulated cost: ${bed.total_cost():.4f}")

        from repro.reporting import render_timeline

        print("\n" + render_timeline(bed.ctx.trace))

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))


if __name__ == "__main__":
    main()
