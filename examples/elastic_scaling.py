#!/usr/bin/env python
"""Elastic scaling: the paper's future-work feature, working.

Deploys a one-worker cluster, attaches the autoscaler, then submits a
burst of 12 statistical jobs.  The scaler watches the Condor queue, grows
the pool with c1.medium workers through ``gp-instance-update``, and
shrinks it again once the queue drains — "users pay only for the
resources they use, while also being able to scale up to meet resource
requirements" (Sec. III-C).

Run:  python examples/elastic_scaling.py
"""

from repro.calibration import MB
from repro.core import CloudTestbed, ElasticScaler, ScalerPolicy, usecase_topology
from repro.galaxy import JobState
from repro.provision import GlobusProvision
from repro.workloads import make_expression_matrix_bytes


def main() -> None:
    bed = CloudTestbed(seed=0)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)
        print(f"Deployed {gpi.id} with "
              f"{len(gpi.deployment.worker_nodes('simple'))} worker(s)")
        app = gpi.deployment.galaxy
        history = app.create_history("boliu", "burst")

        scaler = ElasticScaler(
            gp, gpi.id,
            policy=ScalerPolicy(
                check_interval_s=30.0,
                scale_up_queue_depth=2,
                scale_down_idle_checks=3,
                max_workers=4,
                worker_instance_type="c1.medium",
            ),
        )
        scaler.start()

        data = make_expression_matrix_bytes(n_probes=2000)
        jobs = []
        for i in range(12):
            ds = app.upload_data(
                history, f"batch_{i}.tsv", data=data, size=400 * MB, ext="tabular"
            )
            jobs.append(
                app.run_tool("boliu", history, "crdata_matrixModeratedTTest",
                             inputs=[ds])
            )
        print(f"Submitted {len(jobs)} jobs at t={bed.ctx.now:.0f}s")
        yield bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs])
        makespan = max(j.end_time for j in jobs) - min(j.create_time for j in jobs)
        print(f"All jobs finished; makespan {makespan / 60:.1f} min")
        assert all(j.state == JobState.OK for j in jobs)

        # let the scaler notice the idle pool and shrink
        yield bed.ctx.sim.timeout(10 * 60.0)
        scaler.stop()

        print("\nScaler events:")
        for event in scaler.events:
            print(f"  t={event.time:7.0f}s  {event.action:10s} "
                  f"workers={event.workers}  queue={event.queue_depth}")
        by_machine = {}
        for job in jobs:
            by_machine[job.machine] = by_machine.get(job.machine, 0) + 1
        print("\nJobs per machine:")
        for machine, count in sorted(by_machine.items()):
            print(f"  {machine:24s} {count}")
        print(f"\nFinal worker count: {len(gpi.deployment.worker_nodes('simple'))}")
        print(f"Total simulated cost: ${bed.total_cost():.4f}")

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))


if __name__ == "__main__":
    main()
