#!/usr/bin/env python
"""Workflow composition, provenance, and sharing — Galaxy's core features.

Demonstrates Sec. II of the paper on the deployed cloud instance:

* compose a 3-step analysis with the workflow editor API
  (normalize -> filter -> moderated t-test);
* run it; every step is captured with full provenance;
* publish a Galaxy Page embedding the history and the workflow;
* a second user opens the page, clones the workflow, and reproduces the
  analysis — getting bit-identical results.

Run:  python examples/workflow_sharing.py
"""

from repro.core import CVRG_DATA_ENDPOINT, FOUR_CEL_PATH, CloudTestbed, usecase_topology
from repro.galaxy import Workflow
from repro.provision import GlobusProvision
from repro.tools_globus import GET_DATA_TOOL_ID


def main() -> None:
    bed = CloudTestbed(seed=0)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("c1.medium", cluster_nodes=2))

    def scenario():
        yield from gp.start(gpi.id)
        app = gpi.deployment.galaxy

        # --- boliu composes and runs a workflow --------------------------
        history = app.create_history("boliu", "CEL pipeline")
        fetch = app.run_tool(
            "boliu", history, GET_DATA_TOOL_ID,
            params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
        )
        yield app.jobs.when_done(fetch)
        cel = fetch.outputs["output"]

        wf = Workflow(name="cel-pipeline", annotation="RMA + filter + DE")
        inp = wf.add_input("CEL archive")
        norm = wf.add_step("crdata_affyNormalize", connect={"input": inp})
        filt = wf.add_step("crdata_affyFilterProbes", params={"top_n": 800},
                           connect={"input": (norm, "matrix")})
        de = wf.add_step("crdata_matrixModeratedTTest", params={"top_n": 15},
                         connect={"input": (filt, "matrix")})
        app.save_workflow(wf)
        inv = app.run_workflow("boliu", "cel-pipeline", history, {inp.id: cel})
        yield app.workflows.when_done(inv)
        print(f"Workflow finished: {inv.state}")
        for step_id, job in sorted(inv.jobs.items()):
            print(f"  step {step_id}: {job.tool.id:34s} on {job.machine} "
                  f"({job.wall_s:.0f}s)")
        result = inv.jobs[de.id].outputs["top_table"]
        original = app.fs.read(result.file_path)

        # --- provenance: the full lineage of the final table -------------
        print("\nProvenance lineage of the final top table:")
        for record in app.provenance.lineage(result, history):
            print(f"  job {record.job_id}: {record.tool_id} "
                  f"params={dict(record.params)}")

        # --- publish a page -----------------------------------------------
        page = app.pages.create("CEL pipeline writeup", owner="boliu", slug="cel")
        page.add_text("A reproducible 3-step pipeline over four CEL files.")
        page.embed(history, caption="the analysis")
        page.embed(wf, caption="the workflow")
        link = app.pages.publish("cel", owner="boliu")
        print(f"\nPublished: {link}")

        # --- user2 reproduces it -------------------------------------------
        got = app.pages.get("cel", as_user="user2")
        shared_wf = got.embedded("workflow")[0]
        own_copy = shared_wf.clone("user2-repro")
        app.save_workflow(own_copy)
        h2 = app.create_history("user2", "reproduction")
        fetch2 = app.run_tool(
            "user2", h2, GET_DATA_TOOL_ID,
            params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
        )
        yield app.jobs.when_done(fetch2)
        inv2 = app.run_workflow(
            "user2", "user2-repro", h2,
            {own_copy.input_steps()[0].id: fetch2.outputs["output"]},
        )
        yield app.workflows.when_done(inv2)
        final_step = max(s.id for s in own_copy.tool_steps())
        repeated = app.fs.read(
            inv2.jobs[final_step].outputs["top_table"].file_path
        )
        print(f"\nuser2's reproduction: {inv2.state}; "
              f"bit-identical to the original: {repeated == original}")

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))


if __name__ == "__main__":
    main()
