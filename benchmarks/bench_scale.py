"""Scale benchmark: the first entry in the repo's perf trajectory.

Deploys a 128-node GP topology, pushes 500 concurrent Globus transfers
and 2000 Condor jobs through it, and records kernel throughput
(events/second of wall time), wall time, and peak scheduler queue depth
to ``BENCH_scale.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py

or via pytest (the full run is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -m slow
"""

import json
import pathlib

import pytest

from repro.bench import scale

#: the perf-trajectory artefact lives at the repo root, next to ROADMAP.md
RESULT_PATH = pathlib.Path(__file__).parent.parent / "BENCH_scale.json"


def run_and_save(config: scale.ScaleConfig = scale.FULL_CONFIG) -> scale.ScaleResult:
    result = scale.run(config)
    result.check_shape()
    RESULT_PATH.write_text(result.to_json() + "\n")
    return result


@pytest.mark.slow
def test_scale_full(benchmark):
    """The headline run; simulation metrics are seed-deterministic."""
    result = benchmark.pedantic(run_and_save, rounds=1, iterations=1)
    benchmark.extra_info.update(
        events_per_sec=round(result.events_per_sec),
        events_processed=result.events_processed,
        peak_queue_depth=result.peak_queue_depth,
    )
    assert result.nodes == 128


def main() -> None:
    result = run_and_save()
    print(result.to_json())
    print(f"\nwrote {RESULT_PATH}")
    print(
        f"{result.nodes} nodes | {result.config.transfers} transfers | "
        f"{result.config.jobs} jobs | "
        f"{result.events_processed} events in {result.wall_seconds:.2f}s wall "
        f"({result.events_per_sec:,.0f} ev/s) | "
        f"peak queue depth {result.peak_queue_depth}"
    )


if __name__ == "__main__":
    main()
