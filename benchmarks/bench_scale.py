"""Scale benchmark: the tracked entry in the repo's perf trajectory.

Runs the full scale grid (the 128-node headline config plus shape/seed
variants) through the fan-out harness, refreshes ``BENCH_scale.json``
with the headline snapshot, and appends a per-commit record to
``BENCH_trajectory.json``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py [--workers N]

or via pytest (the full grid is marked ``slow``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -m slow
"""

import argparse
import json
import pathlib

import pytest

from repro.bench import harness, suites, trajectory

REPO_ROOT = pathlib.Path(__file__).parent.parent
#: the headline snapshot lives at the repo root, next to ROADMAP.md
RESULT_PATH = REPO_ROOT / "BENCH_scale.json"
TRAJECTORY_PATH = REPO_ROOT / "BENCH_trajectory.json"


def run_and_save(workers: int = 1) -> harness.SuiteResult:
    suite = suites.scale_suite()
    result = harness.run_suite(suite, workers=workers)
    assert result.ok, [t.error for t in result.tasks if not t.ok]
    headline = result.tasks[0]  # FULL_CONFIG is the first grid point
    RESULT_PATH.write_text(
        json.dumps(headline.payload, indent=2, sort_keys=True) + "\n"
    )
    trajectory.append(trajectory.from_suite_result(result), TRAJECTORY_PATH)
    return result


@pytest.mark.slow
def test_scale_full(benchmark):
    """The headline grid; simulation metrics are seed-deterministic."""
    result = benchmark.pedantic(run_and_save, rounds=1, iterations=1)
    headline = result.tasks[0].payload
    benchmark.extra_info.update(
        events_per_sec=round(headline["events_per_sec"]),
        events_processed=headline["events_processed"],
        peak_queue_depth=headline["peak_queue_depth"],
    )
    assert headline["nodes"] == 128


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-w", "--workers", type=int, default=1)
    args = parser.parse_args()
    result = run_and_save(workers=args.workers)
    print(result.render())
    headline = result.tasks[0].payload
    print(f"\nwrote {RESULT_PATH}")
    print(
        f"{headline['nodes']} nodes | "
        f"{headline['config']['transfers']} transfers | "
        f"{headline['config']['jobs']} jobs | "
        f"{headline['events_processed']} events in "
        f"{headline['wall_seconds']:.2f}s wall "
        f"({headline['events_per_sec']:,.0f} ev/s) | "
        f"peak queue depth {headline['peak_queue_depth']}"
    )
    print()
    print(trajectory.render(trajectory.load(TRAJECTORY_PATH), last=10))
    print(f"appended to {TRAJECTORY_PATH}")


if __name__ == "__main__":
    main()
