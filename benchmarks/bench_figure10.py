"""Figure 10: deployment time, execution time and cost per instance type."""

import pytest

from repro.bench import figure10


@pytest.mark.parametrize("instance_type", figure10.INSTANCE_TYPES)
def test_figure10_per_instance_type(benchmark, instance_type):
    """One column of Fig. 10; paper anchors asserted within 15%."""
    row = benchmark.pedantic(
        figure10.run_one, args=(instance_type,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        deploy_min=round(row.deploy_min, 2),
        exec_min=round(row.exec_min, 2),
        cost_usd=round(row.cost_usd, 4),
    )
    paper_exec = figure10.PAPER_EXEC_MIN[instance_type]
    assert row.exec_min == pytest.approx(paper_exec, rel=0.15)
    paper_deploy = figure10.PAPER_DEPLOY_MIN[instance_type]
    if paper_deploy is not None:
        assert row.deploy_min == pytest.approx(paper_deploy, rel=0.15)


def test_figure10_full_series(benchmark, save_result):
    """The whole figure: orderings and the ~2x cost steps."""
    result = benchmark.pedantic(figure10.run, rounds=1, iterations=1)
    result.check_shape()
    save_result("figure10", result.render())
    small, xlarge = result.row("m1.small"), result.row("m1.xlarge")
    # "performance improvements are disproportionate with cost"
    speedup = small.exec_min / xlarge.exec_min
    cost_ratio = xlarge.cost_usd / small.cost_usd
    assert cost_ratio > speedup
