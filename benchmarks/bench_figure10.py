"""Figure 10: deployment time, execution time and cost per instance type.

A thin wrapper over the fan-out harness: the per-column runs come from
the ``fig10`` suite registry, and the matrix test executes the full
instance-type x cluster-width sweep through the worker pool.
"""

import pytest

from repro.bench import figure10, harness, suites

FIG10_COLUMNS = suites.fig10_suite(smoke=True).specs  # one spec per instance type


@pytest.mark.parametrize("spec", FIG10_COLUMNS, ids=lambda s: s.name)
def test_figure10_per_instance_type(benchmark, spec):
    """One column of Fig. 10; paper anchors asserted within 15%."""
    result = benchmark.pedantic(harness.run_spec, args=(spec,), rounds=1, iterations=1)
    assert result.ok, result.error
    row = result.payload
    benchmark.extra_info.update(
        deploy_min=round(row["deploy_min"], 2),
        exec_min=round(row["exec_min"], 2),
        cost_usd=round(row["cost_usd"], 4),
    )
    instance_type = row["instance_type"]
    paper_exec = figure10.PAPER_EXEC_MIN[instance_type]
    assert row["exec_min"] == pytest.approx(paper_exec, rel=0.15)
    paper_deploy = figure10.PAPER_DEPLOY_MIN[instance_type]
    if paper_deploy is not None:
        assert row["deploy_min"] == pytest.approx(paper_deploy, rel=0.15)


def test_figure10_full_series(benchmark, save_result):
    """The whole figure: orderings and the ~2x cost steps."""
    result = benchmark.pedantic(figure10.run, rounds=1, iterations=1)
    result.check_shape()
    save_result("figure10", result.render())
    small, xlarge = result.row("m1.small"), result.row("m1.xlarge")
    # "performance improvements are disproportionate with cost"
    speedup = small.exec_min / xlarge.exec_min
    cost_ratio = xlarge.cost_usd / small.cost_usd
    assert cost_ratio > speedup


def test_figure10_matrix_fanout(benchmark):
    """The full matrix through the pool; width-1 columns must match the
    sequential driver exactly."""
    suite = suites.fig10_suite()
    result = benchmark.pedantic(
        harness.run_suite, args=(suite,), kwargs={"workers": 4}, rounds=1, iterations=1
    )
    assert result.ok
    sequential = {r.instance_type: r for r in figure10.run().rows}
    for task in result.tasks:
        row = task.payload
        if row["cluster_nodes"] != 1:
            continue
        seq = sequential[row["instance_type"]]
        assert row["deploy_min"] == seq.deploy_min
        assert row["exec_min"] == seq.exec_min
        assert row["cost_usd"] == seq.cost_usd
