"""Sec. V-A use case: dynamic expansion of the Condor pool (via the harness)."""

import pytest

from repro.bench import harness, suites, usecase

SPEC = suites.usecase_suite().specs[0]


def test_usecase_scaling(benchmark, save_result):
    result = benchmark.pedantic(harness.run_spec, args=(SPEC,), rounds=1, iterations=1)
    assert result.ok, result.error
    payload = result.payload
    save_result("usecase", payload["rendered"])
    assert payload["baseline_min"] == pytest.approx(usecase.PAPER_BASELINE_MIN, rel=0.1)
    assert payload["scaled_min"] == pytest.approx(usecase.PAPER_SCALED_MIN, rel=0.15)
    assert payload["step4_machine"] == "simple-condor-wn2"
