"""Sec. V-A use case: dynamic expansion of the Condor pool."""

import pytest

from repro.bench import usecase


def test_usecase_scaling(benchmark, save_result):
    bench = benchmark.pedantic(usecase.run, rounds=1, iterations=1)
    bench.check_shape()
    save_result("usecase", bench.render())
    assert bench.baseline.steps34_minutes == pytest.approx(
        usecase.PAPER_BASELINE_MIN, rel=0.1
    )
    assert bench.scaled.steps34_minutes == pytest.approx(
        usecase.PAPER_SCALED_MIN, rel=0.15
    )
