"""Benchmark harness configuration.

Each benchmark regenerates one paper artefact inside the simulation,
asserts its *shape* against the paper, and writes the rendered table to
``benchmarks/results/<name>.txt`` (also echoed to stdout) so
EXPERIMENTS.md can be rebuilt from fresh runs.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
