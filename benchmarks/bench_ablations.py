"""Design-choice ablations (DESIGN.md experiment index, last row)."""

from repro.bench import ablations


def test_ami_preload_ablation(benchmark, save_result):
    result = benchmark.pedantic(ablations.run_ami_ablation, rounds=1, iterations=1)
    result.check_shape()
    save_result("ablation_ami", result.render())


def test_billing_model_ablation(benchmark, save_result):
    result = benchmark.pedantic(ablations.run_billing_ablation, rounds=1, iterations=1)
    result.check_shape()
    save_result("ablation_billing", result.render())


def test_pool_width_ablation(benchmark, save_result):
    result = benchmark.pedantic(
        ablations.run_pool_width_ablation, rounds=1, iterations=1
    )
    result.check_shape()
    save_result("ablation_pool_width", result.render())


def test_stream_count_ablation(benchmark, save_result):
    result = benchmark.pedantic(ablations.run_stream_ablation, rounds=1, iterations=1)
    result.check_shape()
    save_result("ablation_streams", result.render())


def test_batching_ablation(benchmark, save_result):
    result = benchmark.pedantic(ablations.run_batching_ablation, rounds=1, iterations=1)
    result.check_shape()
    save_result("ablation_batching", result.render())
