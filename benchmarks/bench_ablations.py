"""Design-choice ablations (DESIGN.md experiment index, last row).

Thin wrappers: each test runs one spec of the ``ablations`` suite
through the harness (the adapters call ``check_shape`` themselves) and
saves the rendered artefact carried in the payload.
"""

import pytest

from repro.bench import harness, suites

SPECS = {spec.name.split("/")[-1]: spec for spec in suites.ablations_suite().specs}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_ablation(benchmark, save_result, name):
    spec = SPECS[name]
    result = benchmark.pedantic(harness.run_spec, args=(spec,), rounds=1, iterations=1)
    assert result.ok, result.error
    save_result(f"ablation_{name}", result.payload["rendered"])


def test_ablations_suite_fanout():
    """The whole suite through the pool: every adapter's shape check holds."""
    result = harness.run_suite(suites.ablations_suite(smoke=True), workers=2)
    assert result.ok, [t.error for t in result.tasks if not t.ok]
