"""Kernel microbenchmarks: raw event throughput of the simulation core.

Three workloads exercise the kernel's hot paths in isolation:

* ``timeout_churn`` — a flat heap of one-shot timers at distinct times
  (pure heap push/pop traffic);
* ``process_switching`` — many generator processes trading zero-delay
  events, so thousands of events land on identical timestamps (the
  batched same-timestamp drain path);
* ``condition_fanin`` — repeated AnyOf/AllOf fan-ins over timer sets
  (condition-event allocation and callback fan-out);
* ``resource_handoff`` — many processes cycling one contended
  :class:`Resource` (the GridFTP connection-pool / Condor-slot pattern:
  request grants and releases chained at a single timestamp).

Each workload schedules an analytically known number of events, so the
events/sec figure is comparable across kernel versions — including ones
that predate the ``Simulator.events_processed`` counter.  Run directly::

    PYTHONPATH=src python benchmarks/bench_kernel.py

or through pytest (``python -m pytest benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.simcore import Resource, Simulator, set_default_scheduler

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


# ---------------------------------------------------------------------------
# Workloads.  Each returns the exact number of events the kernel processed.
# ---------------------------------------------------------------------------


def timeout_churn(n: int = 200_000) -> int:
    """``n`` one-shot timers at scattered times: pure heap traffic."""
    sim = Simulator()
    timeout = sim.timeout
    for i in range(n):
        # Deterministic scatter without an RNG; ~61.8% land out of order.
        timeout((i * 0.6180339887) % 1000.0)
    sim.run()
    return n


def process_switching(procs: int = 500, rounds: int = 200) -> int:
    """``procs`` generators each yielding ``rounds`` zero-delay timeouts.

    Every yield lands on the current timestamp, so the whole run is one
    long same-timestamp cascade: initialization events, timer events and
    process-completion events all drain at t=0.
    """
    sim = Simulator()

    def worker():
        for _ in range(rounds):
            yield sim.timeout(0.0)

    for _ in range(procs):
        sim.process(worker())
    sim.run()
    # per process: 1 _Initialize + `rounds` timeouts + 1 completion event
    return procs * (rounds + 2)


def condition_fanin(rounds: int = 2_000, width: int = 24) -> int:
    """AnyOf/AllOf over ``width`` timers, ``rounds`` times in sequence."""
    sim = Simulator()

    def driver():
        for r in range(rounds):
            base = 0.001 * (r % 7)
            yield sim.all_of([sim.timeout(base + 0.001 * i) for i in range(width)])
            yield sim.any_of([sim.timeout(base + 0.001 * i) for i in range(width)])

    proc = sim.process(driver())
    sim.run(until=proc)
    sim.run()  # drain the losing AnyOf timers
    # per round: width timers + AllOf + width timers + AnyOf, plus the
    # driver's _Initialize and completion events.
    return rounds * (2 * width + 2) + 2


def resource_handoff(procs: int = 400, rounds: int = 125, capacity: int = 8) -> int:
    """``procs`` processes cycling a ``capacity``-wide resource.

    Each acquisition is a request-grant event and each hold a zero-delay
    timeout, all at one timestamp — the connection-pool handoff pattern
    GridFTP servers and Condor slots generate under load.
    """
    sim = Simulator()
    res = Resource(sim, capacity=capacity)

    def worker():
        for _ in range(rounds):
            req = res.request()
            yield req
            yield sim.timeout(0.0)
            req.release()

    for _ in range(procs):
        sim.process(worker())
    sim.run()
    # per process: 1 _Initialize + rounds * (grant + timeout) + 1 completion
    return procs * (2 * rounds + 2)


WORKLOADS = [
    ("timeout_churn", timeout_churn),
    ("process_switching", process_switching),
    ("condition_fanin", condition_fanin),
    ("resource_handoff", resource_handoff),
]


def run_workload(fn, repeats: int = 3, scheduler: str | None = None) -> dict:
    """Best-of-``repeats`` wall time; events/sec from the analytic count.

    ``scheduler`` pins the kernel's default scheduler for the run (the
    workloads build plain ``Simulator()`` instances), restored after.
    """
    best_s = float("inf")
    events = 0
    previous = set_default_scheduler(scheduler) if scheduler else None
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = fn()
            elapsed = time.perf_counter() - t0
            best_s = min(best_s, elapsed)
    finally:
        if previous is not None:
            set_default_scheduler(previous)
    return {
        "events": events,
        "wall_s": round(best_s, 4),
        "events_per_sec": round(events / best_s),
    }


def run_all(repeats: int = 3) -> dict:
    """Every workload under both schedulers; heap stays the baseline.

    The top-level fields keep their historical heap-based meaning so the
    perf trajectory stays comparable across commits; the wheel numbers
    ride along per workload with the heap/wheel speedup factor.
    """
    results = {}
    for name, fn in WORKLOADS:
        heap = run_workload(fn, repeats, scheduler="heap")
        wheel = run_workload(fn, repeats, scheduler="wheel")
        entry = dict(heap)
        entry["wheel"] = {
            "wall_s": wheel["wall_s"],
            "events_per_sec": wheel["events_per_sec"],
        }
        entry["wheel_speedup"] = round(heap["wall_s"] / wheel["wall_s"], 3)
        results[name] = entry
    total_events = sum(r["events"] for r in results.values())
    total_wall = sum(r["wall_s"] for r in results.values())
    total_wheel_wall = sum(r["wheel"]["wall_s"] for r in results.values())
    return {
        "workloads": results,
        "total_events": total_events,
        "total_wall_s": round(total_wall, 4),
        "overall_events_per_sec": round(total_events / total_wall),
        "wheel_total_wall_s": round(total_wheel_wall, 4),
        "wheel_overall_events_per_sec": round(total_events / total_wheel_wall),
    }


def main() -> dict:
    report = run_all()
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_kernel.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    for name, r in report["workloads"].items():
        print(f"{name:20s} {r['events']:>9d} events  {r['wall_s']:>8.3f} s  "
              f"{r['events_per_sec']:>10d} ev/s  "
              f"wheel {r['wheel']['wall_s']:>7.3f} s ({r['wheel_speedup']:.2f}x)")
    print(f"{'overall':20s} {report['total_events']:>9d} events  "
          f"{report['total_wall_s']:>8.3f} s  "
          f"{report['overall_events_per_sec']:>10d} ev/s")
    return report


def test_kernel_microbench():
    """Pytest entry point: the harness runs and writes its JSON report."""
    report = main()
    assert report["overall_events_per_sec"] > 0
    assert (RESULTS_DIR / "bench_kernel.json").exists()


if __name__ == "__main__":
    main()
