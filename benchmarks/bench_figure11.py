"""Figure 11: transfer rate by method and file size."""

import pytest

from repro.bench import figure11
from repro.calibration import GB, MB


def test_figure11_full_series(benchmark, save_result):
    result = benchmark.pedantic(figure11.run, rounds=1, iterations=1)
    result.check_shape()
    save_result("figure11", result.render())
    go = [r for r in result.rates["globus"] if r is not None]
    ftp = [r for r in result.rates["ftp"] if r is not None]
    # paper envelopes, within 20%
    assert min(go) == pytest.approx(figure11.PAPER_GO_RANGE_MBPS[0], rel=0.2)
    assert max(go) == pytest.approx(figure11.PAPER_GO_RANGE_MBPS[1], rel=0.2)
    assert min(ftp) == pytest.approx(figure11.PAPER_FTP_RANGE_MBPS[0], rel=0.3)
    assert max(ftp) == pytest.approx(figure11.PAPER_FTP_RANGE_MBPS[1], rel=0.2)


def test_figure11_http_refuses_over_2gb(benchmark):
    result = benchmark.pedantic(
        figure11.run, kwargs={"sizes": [1 * MB, 2 * GB + MB]}, rounds=1, iterations=1
    )
    assert result.rates["http"][0] is not None
    assert result.rates["http"][1] is None  # refused: over the 2 GB cap
    assert result.rates["globus"][1] is not None  # GO handles it fine


def test_figure11_order_of_magnitude_claim(benchmark):
    """Intro claim: 'performance improvements up to an order of magnitude'."""
    result = benchmark.pedantic(figure11.run, rounds=1, iterations=1)
    ratios = [
        go / ftp
        for go, ftp in zip(result.rates["globus"], result.rates["ftp"])
        if go is not None and ftp is not None
    ]
    assert max(ratios) >= 6.0
