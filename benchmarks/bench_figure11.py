"""Figure 11: transfer rate by method and file size (via the harness)."""

import pytest

from repro.bench import figure11, harness
from repro.bench.harness import BenchSpec
from repro.calibration import GB, MB

FULL_SWEEP = BenchSpec(name="fig11/sweep", task="fig11.sweep")


def test_figure11_full_series(benchmark, save_result):
    result = benchmark.pedantic(
        harness.run_spec, args=(FULL_SWEEP,), rounds=1, iterations=1
    )
    assert result.ok, result.error
    save_result("figure11", result.payload["rendered"])
    rates = result.payload["rates"]
    go = [r for r in rates["globus"] if r is not None]
    ftp = [r for r in rates["ftp"] if r is not None]
    # paper envelopes, within 20%
    assert min(go) == pytest.approx(figure11.PAPER_GO_RANGE_MBPS[0], rel=0.2)
    assert max(go) == pytest.approx(figure11.PAPER_GO_RANGE_MBPS[1], rel=0.2)
    assert min(ftp) == pytest.approx(figure11.PAPER_FTP_RANGE_MBPS[0], rel=0.3)
    assert max(ftp) == pytest.approx(figure11.PAPER_FTP_RANGE_MBPS[1], rel=0.2)


def test_figure11_http_refuses_over_2gb(benchmark):
    spec = BenchSpec(
        name="fig11/2gb", task="fig11.sweep", params={"sizes": [1 * MB, 2 * GB + MB]}
    )
    result = benchmark.pedantic(harness.run_spec, args=(spec,), rounds=1, iterations=1)
    assert result.ok, result.error
    rates = result.payload["rates"]
    assert rates["http"][0] is not None
    assert rates["http"][1] is None  # refused: over the 2 GB cap
    assert rates["globus"][1] is not None  # GO handles it fine


def test_figure11_order_of_magnitude_claim(benchmark):
    """Intro claim: 'performance improvements up to an order of magnitude'."""
    result = benchmark.pedantic(
        harness.run_spec, args=(FULL_SWEEP,), rounds=1, iterations=1
    )
    assert result.ok, result.error
    rates = result.payload["rates"]
    ratios = [
        go / ftp
        for go, ftp in zip(rates["globus"], rates["ftp"])
        if go is not None and ftp is not None
    ]
    assert max(ratios) >= 6.0
