"""Closed-form batch cost estimation: N jobs x M instance types, no event loop.

The discrete-event simulator prices one use-case run at a time; a CRData
sweep wants the Fig. 10 economics — execution seconds and USD cost per
instance type — for *thousands* of candidate archives at once.  Both
views share one model:

    seconds = JOB_FIXED_OVERHEAD_S + cpu_work / cpu_factor + io_work / io_factor
    cost    = hourly_price * seconds / 3600

``estimate_batch`` composes a tool's batched work model with
``calibration.CPU_FACTORS`` / ``IO_FACTORS`` and a :class:`PriceBook` in
one broadcasted array expression, so the vectorized estimate is
bit-for-bit identical to looping the scalar work model per sample (the
equivalence is pinned in ``tests/cloud/test_estimator.py``, along with
the Fig. 10 step-3+4 anchors the simulator reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import calibration
from .pricing import PriceBook

#: the Fig. 10 instance grid (the types the paper's economics cover)
DEFAULT_INSTANCE_TYPES = ("m1.small", "c1.medium", "m1.large", "m1.xlarge")


@dataclass
class CostEstimate:
    """Seconds and USD for ``n_jobs`` jobs across ``instance_types``.

    ``seconds`` and ``cost_usd`` have shape ``(n_jobs, len(instance_types))``;
    ``cpu_work`` / ``io_work`` are the per-job work vectors (m1.small-seconds).
    """

    instance_types: tuple[str, ...]
    seconds: np.ndarray
    cost_usd: np.ndarray
    cpu_work: np.ndarray
    io_work: np.ndarray

    @property
    def n_jobs(self) -> int:
        return int(self.seconds.shape[0])

    def column(self, instance_type: str) -> int:
        try:
            return self.instance_types.index(instance_type)
        except ValueError:
            raise KeyError(f"no such instance type {instance_type!r}") from None

    def seconds_for(self, instance_type: str) -> np.ndarray:
        return self.seconds[:, self.column(instance_type)]

    def cost_for(self, instance_type: str) -> np.ndarray:
        return self.cost_usd[:, self.column(instance_type)]

    def total_seconds(self) -> dict[str, float]:
        """Serial makespan of the whole batch per instance type."""
        return {
            t: float(self.seconds[:, j].sum())
            for j, t in enumerate(self.instance_types)
        }

    def total_cost(self) -> dict[str, float]:
        """Whole-batch USD per instance type."""
        return {
            t: float(self.cost_usd[:, j].sum())
            for j, t in enumerate(self.instance_types)
        }

    def cheapest(self) -> str:
        totals = self.total_cost()
        return min(totals, key=totals.__getitem__)

    def fastest(self) -> str:
        totals = self.total_seconds()
        return min(totals, key=totals.__getitem__)


def _factors(
    instance_types: Sequence[str], table: dict[str, float], label: str
) -> np.ndarray:
    try:
        return np.array([table[t] for t in instance_types], dtype=float)
    except KeyError as exc:
        raise KeyError(f"no {label} for instance type {exc}") from None


def estimate_batch(
    tool,
    sizes,
    instance_types: Sequence[str] = DEFAULT_INSTANCE_TYPES,
    book: Optional[PriceBook] = None,
    params: Optional[dict] = None,
    overhead_s: float = calibration.JOB_FIXED_OVERHEAD_S,
) -> CostEstimate:
    """Price ``sizes`` (an ``(n_jobs, n_inputs)`` byte matrix, or a 1-D
    vector of single-input jobs) run through ``tool`` on every instance
    type, in one broadcasted expression.

    ``tool`` is a :class:`repro.galaxy.tools.Tool` (its ``work_batch``
    supplies the work vectors; tools without a native batch model fall
    back to the scalar loop transparently).
    """
    book = book if book is not None else PriceBook.paper()
    types = tuple(instance_types)
    cpu, io = tool.work_batch(params or {}, sizes)
    cpu_factors = _factors(types, calibration.CPU_FACTORS, "cpu factor")
    io_factors = _factors(types, calibration.IO_FACTORS, "io factor")
    rates = np.array([book.hourly(t) for t in types], dtype=float)
    seconds = (
        overhead_s
        + cpu[:, None] / cpu_factors[None, :]
        + io[:, None] / io_factors[None, :]
    )
    cost = rates[None, :] * seconds / 3600.0
    return CostEstimate(
        instance_types=types,
        seconds=seconds,
        cost_usd=cost,
        cpu_work=cpu,
        io_work=io,
    )


def estimate_scalar_loop(
    tool,
    sizes,
    instance_types: Sequence[str] = DEFAULT_INSTANCE_TYPES,
    book: Optional[PriceBook] = None,
    params: Optional[dict] = None,
    overhead_s: float = calibration.JOB_FIXED_OVERHEAD_S,
) -> CostEstimate:
    """Reference implementation: the per-sample Python loop.

    Same model as :func:`estimate_batch`, computed one job and one
    instance type at a time with the tool's *scalar* work model.  Exists
    so the equivalence tests (and the ``pricing_sweep`` benchmark's
    self-check) can assert the vectorized path matches it exactly.
    """
    from ..galaxy.tools import as_sizes_matrix

    book = book if book is not None else PriceBook.paper()
    types = tuple(instance_types)
    matrix = as_sizes_matrix(sizes)
    n = matrix.shape[0]
    cpu = np.empty(n, dtype=float)
    io = np.empty(n, dtype=float)
    for i, row in enumerate(matrix):
        cpu[i], io[i] = tool.work_model(params or {}, row)
    seconds = np.empty((n, len(types)), dtype=float)
    cost = np.empty((n, len(types)), dtype=float)
    for j, itype in enumerate(types):
        f = calibration.CPU_FACTORS[itype]
        g = calibration.IO_FACTORS[itype]
        rate = book.hourly(itype)
        for i in range(n):
            seconds[i, j] = overhead_s + cpu[i] / f + io[i] / g
            cost[i, j] = rate * seconds[i, j] / 3600.0
    return CostEstimate(
        instance_types=types,
        seconds=seconds,
        cost_usd=cost,
        cpu_work=cpu,
        io_work=io,
    )


def estimate_usecase_steps34(
    instance_types: Sequence[str] = DEFAULT_INSTANCE_TYPES,
    book: Optional[PriceBook] = None,
) -> CostEstimate:
    """The Fig. 10 anchor workload: the two use-case CEL archives.

    Steps 3+4 run ``affyDifferentialExpression.R`` over the 10.7 MB and
    190.3 MB archives; the column sums of ``seconds`` reproduce the
    642/414/324/276 s anchors the event-driven simulator pins, without
    running the event loop.
    """
    from ..crdata.catalog import USECASE_TOOL_ID, build_crdata_tools

    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    sizes = np.array(
        [[calibration.FOUR_CEL_ZIP_BYTES], [calibration.AFFY_CEL_ZIP_BYTES]],
        dtype=float,
    )
    return estimate_batch(tool, sizes, instance_types=instance_types, book=book)
