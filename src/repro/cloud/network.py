"""Analytic network model: TCP throughput over a WAN path.

The transfer subsystems (GridFTP, FTP, HTTP upload) share one model:

* per-stream steady rate = ``min(window/RTT, Mathis limit, fair share of
  the bottleneck)`` where the Mathis limit is
  ``MSS / (RTT * sqrt(loss)) * C`` — the classic loss-constrained TCP
  throughput formula;
* a transfer of ``size`` bytes takes
  ``overhead + slow_start_ramp + size / steady_rate + n_chunks * chunk_cost``.

Only the parameters differ per protocol (see :mod:`repro.calibration`),
which is exactly the paper's story: Globus Transfer wins because it uses
parallel tuned streams and avoids Galaxy's per-request handling costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from .. import calibration


class TransferTooLarge(Exception):
    """The protocol refuses files over its size cap (Galaxy HTTP: 2 GB)."""


@dataclass(frozen=True)
class NetworkPath:
    """A WAN path characterised by RTT, loss rate and bottleneck capacity."""

    rtt_s: float
    loss: float
    bottleneck_bps: float

    def __post_init__(self) -> None:
        if self.rtt_s <= 0:
            raise ValueError("rtt must be positive")
        if not (0.0 < self.loss < 1.0):
            raise ValueError("loss must be in (0, 1)")
        if self.bottleneck_bps <= 0:
            raise ValueError("bottleneck must be positive")

    @classmethod
    def paper_wan(cls) -> "NetworkPath":
        """Laptop -> EC2 path calibrated for Fig. 11."""
        return cls(
            rtt_s=calibration.WAN_RTT_S,
            loss=calibration.WAN_LOSS,
            bottleneck_bps=calibration.WAN_BOTTLENECK_BPS,
        )

    @classmethod
    def lan(cls) -> "NetworkPath":
        """Intra-cluster path (EC2 availability zone)."""
        return cls(rtt_s=0.0005, loss=1e-6, bottleneck_bps=1e9)


# The rate/ramp functions are pure in their (hashable) arguments and sit on
# the per-transfer hot path: a scale run prices thousands of file movements
# over a handful of distinct (path, streams, window) shapes, so memoizing
# turns repeated sqrt/log work into dict lookups.


@lru_cache(maxsize=4096)
def mathis_limit_bps(
    path: NetworkPath,
    mss_bytes: int = calibration.TCP_MSS_BYTES,
    c: float = calibration.MATHIS_C,
) -> float:
    """Loss-bounded steady-state TCP throughput (Mathis et al. 1997)."""
    return mss_bytes * 8.0 / path.rtt_s * c / math.sqrt(path.loss)


def stream_rate_bps(path: NetworkPath, window_bytes: int) -> float:
    """Steady throughput of one TCP stream with a given window."""
    window_limit = window_bytes * 8.0 / path.rtt_s
    return min(window_limit, mathis_limit_bps(path), path.bottleneck_bps)


@lru_cache(maxsize=4096)
def aggregate_rate_bps(path: NetworkPath, streams: int, window_bytes: int) -> float:
    """Steady throughput of ``streams`` parallel TCP streams."""
    if streams < 1:
        raise ValueError("streams must be >= 1")
    unconstrained = min(
        window_bytes * 8.0 / path.rtt_s, mathis_limit_bps(path)
    )
    return min(streams * unconstrained, path.bottleneck_bps)


@lru_cache(maxsize=4096)
def slow_start_ramp_s(
    path: NetworkPath,
    window_bytes: int,
    mss_bytes: int = calibration.TCP_MSS_BYTES,
) -> float:
    """Time to grow the congestion window from one MSS to ``window_bytes``.

    One RTT per doubling — the standard textbook approximation.
    """
    doublings = max(0.0, math.log2(max(1.0, window_bytes / mss_bytes)))
    return doublings * path.rtt_s


@dataclass(frozen=True)
class ProtocolModel:
    """Transfer-time model for one protocol (streams + overheads)."""

    name: str
    streams: int
    window_bytes: int
    overhead_s: float = 0.0
    chunk_bytes: int = 0          # 0 => no per-chunk penalty
    seconds_per_chunk: float = 0.0
    max_bytes: Optional[int] = None

    def steady_rate_bps(self, path: NetworkPath) -> float:
        return aggregate_rate_bps(path, self.streams, self.window_bytes)

    def transfer_seconds(self, path: NetworkPath, size_bytes: int) -> float:
        """Wall time to move ``size_bytes`` over ``path``."""
        if size_bytes < 0:
            raise ValueError("size must be >= 0")
        if self.max_bytes is not None and size_bytes > self.max_bytes:
            raise TransferTooLarge(
                f"{self.name}: {size_bytes} bytes exceeds the "
                f"{self.max_bytes}-byte limit"
            )
        t = self.overhead_s + slow_start_ramp_s(path, self.window_bytes)
        if size_bytes:
            t += size_bytes * 8.0 / self.steady_rate_bps(path)
            if self.chunk_bytes and self.seconds_per_chunk:
                n_chunks = math.ceil(size_bytes / self.chunk_bytes)
                t += n_chunks * self.seconds_per_chunk
        return t

    def effective_rate_mbps(self, path: NetworkPath, size_bytes: int) -> float:
        """Average achieved rate in Mbit/s, the quantity Fig. 11 plots."""
        seconds = self.transfer_seconds(path, size_bytes)
        if seconds == 0.0:
            return 0.0
        return size_bytes * 8.0 / seconds / 1e6


def globus_streams_for(size_bytes: int) -> int:
    """Globus Transfer's auto-tuning: more streams for bigger files."""
    mb = size_bytes / calibration.MB
    if mb < 32:
        return max(1, calibration.GO_AUTOTUNE_MIN_STREAMS)
    if mb < 128:
        return 2
    return calibration.GO_STREAMS


def globus_model(size_bytes: int) -> ProtocolModel:
    """The tuned GridFTP model Globus Transfer uses for one file."""
    return ProtocolModel(
        name="globus-transfer",
        streams=globus_streams_for(size_bytes),
        window_bytes=calibration.GO_WINDOW_BYTES,
        overhead_s=calibration.GO_OVERHEAD_S,
    )


def ftp_model() -> ProtocolModel:
    """Galaxy's FTP upload path (stock TCP + import-scan latency)."""
    return ProtocolModel(
        name="ftp",
        streams=1,
        window_bytes=calibration.FTP_WINDOW_BYTES,
        overhead_s=calibration.FTP_OVERHEAD_S,
    )


def http_model() -> ProtocolModel:
    """Galaxy's HTTP form upload (synchronous chunk handling, 2 GB cap)."""
    return ProtocolModel(
        name="http",
        streams=1,
        window_bytes=calibration.FTP_WINDOW_BYTES,
        overhead_s=calibration.HTTP_OVERHEAD_S,
        chunk_bytes=calibration.HTTP_CHUNK_BYTES,
        seconds_per_chunk=calibration.HTTP_SECONDS_PER_CHUNK,
        max_bytes=calibration.HTTP_MAX_BYTES,
    )
