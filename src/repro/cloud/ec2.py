"""A mock of the 2012 Amazon EC2 control plane.

Implements the slice of the EC2 API that Globus Provision drives:
AMIs, keypairs, run/stop/start/terminate/describe instances, and tags.
Instance state machines advance in simulated time (boot latency depends on
the instance type), and every running second is metered for billing.

The paper's public GP AMI ``ami-b12ee0d8`` (Fig. 3) is pre-registered,
with the Galaxy/Globus software marked pre-loaded so Chef converges fast.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..simcore import SimContext, SimEvent
from .instance_types import CATALOG, InstanceType, resolve
from .pricing import BillingMeter


class InstanceState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"
    SHUTTING_DOWN = "shutting-down"
    TERMINATED = "terminated"


#: Seconds for non-boot state transitions.
STOP_LATENCY_S = 25.0
TERMINATE_LATENCY_S = 8.0
#: Restarting a stopped instance skips image preparation.
RESTART_FRACTION_OF_BOOT = 0.6


@dataclass(frozen=True)
class AMI:
    """An Amazon Machine Image: a named root image with pre-loaded software.

    ``baked_markers`` and ``baked_checkouts`` capture Chef ``Execute``
    markers and source checkouts present on a snapshotted disk, so a
    custom AMI skips that converge work too (Fig. 1 step 8).
    """

    id: str
    name: str
    preloaded: frozenset[str] = frozenset()
    description: str = ""
    baked_markers: frozenset[str] = frozenset()
    baked_checkouts: tuple[tuple[str, tuple[str, str]], ...] = ()


@dataclass(frozen=True)
class KeyPair:
    name: str
    fingerprint: str


@dataclass
class EC2Instance:
    """One virtual machine.  Mutated only by :class:`MockEC2`."""

    id: str
    ami: AMI
    itype: InstanceType
    keypair: Optional[str]
    state: InstanceState = InstanceState.PENDING
    tags: dict[str, str] = field(default_factory=dict)
    launch_time: float = 0.0
    private_dns: str = ""
    public_dns: str = ""
    #: kernel event that fires each time the instance reaches RUNNING
    _running_event: Optional[SimEvent] = None

    @property
    def instance_type(self) -> str:
        return self.itype.name

    def is_usable(self) -> bool:
        return self.state == InstanceState.RUNNING


class EC2Error(Exception):
    """API-level error (bad id, invalid state transition, ...)."""


class InsufficientCapacity(EC2Error):
    """Transient launch failure; callers should retry (2012 EC2 reality)."""


#: GP's public AMI from the paper's topology file (Fig. 3).
GP_PUBLIC_AMI_SOFTWARE = frozenset(
    {"globus-toolkit", "condor", "nfs-utils", "nis", "python", "postgresql"}
)


class MockEC2:
    """The region-level control plane."""

    def __init__(
        self,
        ctx: SimContext,
        meter: Optional[BillingMeter] = None,
        boot_jitter: float = 0.05,
        capacity_error_rate: float = 0.0,
    ) -> None:
        if not (0.0 <= capacity_error_rate < 1.0):
            raise ValueError("capacity_error_rate must be in [0, 1)")
        self.ctx = ctx
        self.meter = meter if meter is not None else BillingMeter()
        self.boot_jitter = float(boot_jitter)
        self.capacity_error_rate = float(capacity_error_rate)
        self.instances: dict[str, EC2Instance] = {}
        self.images: dict[str, AMI] = {}
        self.keypairs: dict[str, KeyPair] = {}
        self._counter = 0
        #: open ``ec2.boot`` spans by instance id (only populated when the
        #: context's observability recorder is live)
        self._boot_spans: dict[str, object] = {}
        #: boot span *ids*, retained after the span closes so later
        #: phases (Chef converge via the deployer) can cite the boot
        #: that produced their node as a causal edge
        self._boot_span_ids: dict[str, int] = {}
        # Pre-register the paper's public GP AMI.
        self.images["ami-b12ee0d8"] = AMI(
            id="ami-b12ee0d8",
            name="globus-provision-public",
            preloaded=GP_PUBLIC_AMI_SOFTWARE,
            description="GP public AMI with most necessary software pre-installed",
        )

    # -- images / keypairs ---------------------------------------------------
    def register_image(
        self,
        name: str,
        preloaded: Iterable[str] = (),
        description: str = "",
        baked_markers: Iterable[str] = (),
        baked_checkouts: Iterable[tuple[str, tuple[str, str]]] = (),
    ) -> AMI:
        self._counter += 1
        ami = AMI(
            id=f"ami-{self._counter:08x}",
            name=name,
            preloaded=frozenset(preloaded),
            description=description,
            baked_markers=frozenset(baked_markers),
            baked_checkouts=tuple(baked_checkouts),
        )
        self.images[ami.id] = ami
        return ami

    def create_image(
        self,
        instance_id: str,
        name: str,
        markers: Iterable[str] = (),
        checkouts: Optional[dict[str, tuple[str, str]]] = None,
    ) -> AMI:
        """Snapshot an instance into a new AMI (Fig. 1 step 8).

        The new image is pre-loaded with everything the source AMI had plus
        whatever software tags were recorded on the instance; optional
        ``markers``/``checkouts`` bake the converged Chef state of the disk.
        """
        inst = self._get(instance_id)
        installed = set(inst.ami.preloaded)
        installed.update(
            s for s in inst.tags.get("software", "").split(",") if s
        )
        return self.register_image(
            name,
            preloaded=installed,
            description=f"snapshot of {instance_id}",
            baked_markers=markers,
            baked_checkouts=tuple((checkouts or {}).items()),
        )

    def create_keypair(self, name: str) -> KeyPair:
        if name in self.keypairs:
            raise EC2Error(f"keypair {name!r} already exists")
        kp = KeyPair(name=name, fingerprint=f"fp:{abs(hash(name)) % 10**12:012d}")
        self.keypairs[name] = kp
        return kp

    # -- instance lifecycle ----------------------------------------------------
    def run_instances(
        self,
        ami_id: str,
        instance_type: str,
        count: int = 1,
        keypair: Optional[str] = None,
        tags: Optional[dict[str, str]] = None,
    ) -> list[EC2Instance]:
        """Launch ``count`` instances; they boot asynchronously."""
        if ami_id not in self.images:
            raise EC2Error(f"unknown AMI {ami_id!r}")
        if keypair is not None and keypair not in self.keypairs:
            raise EC2Error(f"unknown keypair {keypair!r}")
        if count < 1:
            raise EC2Error("count must be >= 1")
        if (
            self.capacity_error_rate > 0.0
            and float(self.ctx.stream("ec2.capacity").random())
            < self.capacity_error_rate
        ):
            self.ctx.log("ec2", "capacity-error", type=instance_type)
            obs = self.ctx.obs
            obs.counter("ec2.capacity_errors").inc()
            obs.instant("ec2.capacity-error", track="ec2", type=instance_type)
            raise InsufficientCapacity(
                f"Insufficient capacity for {instance_type}; retry shortly"
            )
        itype = resolve(instance_type)
        out = []
        boot_times = []
        now = self.ctx.now
        for _ in range(count):
            self._counter += 1
            iid = f"i-{self._counter:08x}"
            inst = EC2Instance(
                id=iid,
                ami=self.images[ami_id],
                itype=itype,
                keypair=keypair,
                launch_time=now,
                tags=dict(tags or {}),
                private_dns=f"ip-10-0-{(self._counter >> 8) & 255}-{self._counter & 255}",
                public_dns=f"ec2-{self._counter}.compute-1.example.com",
            )
            self.instances[iid] = inst
            self.instances[iid]._running_event = self.ctx.sim.event()
            self.ctx.log("ec2", "launch", instance=iid, type=itype.name)
            obs = self.ctx.obs
            if obs.enabled:
                span = obs.start(
                    "ec2.boot", track=f"ec2/{iid}", instance=iid, type=itype.name
                )
                self._boot_spans[iid] = span
                self._boot_span_ids[iid] = span.id
                obs.counter("ec2.launches").inc()
            # jitter draws stay in creation order (one RNG draw per instance)
            boot_times.append(now + self._boot_delay(itype))
            out.append(inst)
        # One boot cohort per API call: with zero jitter a whole batch
        # shares a timestamp and enters RUNNING as a single slice.  With
        # obs on, the cohort carries each member's boot span id so the
        # causal edge survives the batched RUNNING transition.
        self.ctx.sim.schedule_cohort(
            boot_times,
            self._boot_apply,
            payload=list(out),
            layer="ec2.boot",
            cause=tuple(self._boot_span_ids.get(i.id) for i in out)
            if self.ctx.obs.enabled
            else None,
        )
        return out

    def _boot_apply(self, cohort, start: int, stop: int) -> None:
        payload = cohort.payload
        if stop - start > 1:
            # Whole same-instant slice: open the billing intervals as one
            # batch (they are all the same instance type by construction),
            # then finish each instance's state transition.
            batch = [
                i for i in payload[start:stop] if i.state is InstanceState.PENDING
            ]
            if batch:
                self.meter.start_batch(
                    (i.id for i in batch), batch[0].instance_type, self.ctx.now
                )
            for inst in batch:
                self._enter_running(inst, _metered=True)
            return
        for k in range(start, stop):
            self._enter_running(payload[k])

    def _boot_delay(self, itype: InstanceType, fraction: float = 1.0) -> float:
        base = itype.boot_latency_s * fraction
        if self.boot_jitter <= 0:
            return base
        jitter = self.ctx.stream("ec2.boot").normal(0.0, self.boot_jitter)
        return max(1.0, base * (1.0 + float(jitter)))

    def _enter_running(self, inst: EC2Instance, _metered: bool = False) -> None:
        if inst.state not in (InstanceState.PENDING,):
            return  # terminated while booting
        inst.state = InstanceState.RUNNING
        if not _metered:  # a batched boot slice already opened the interval
            self.meter.start(inst.id, inst.instance_type, self.ctx.now)
        self.ctx.log("ec2", "running", instance=inst.id)
        span = self._boot_spans.pop(inst.id, None)
        if span is not None:
            self.ctx.obs.finish(span)
        ev = inst._running_event
        inst._running_event = None
        if ev is not None and not ev.triggered:
            ev.succeed(inst)

    def boot_span_id(self, instance_id: str):
        """Obs span id of an instance's ec2.boot span (None when obs off).

        Resolvable for the instance's lifetime — downstream deployment
        phases cite it as the cause of their own spans.
        """
        return (
            self._boot_span_ids.get(instance_id) if self._boot_span_ids else None
        )

    def when_running(self, instance_id: str) -> SimEvent:
        """Event that fires when the instance reaches RUNNING."""
        inst = self._get(instance_id)
        if inst.state == InstanceState.RUNNING:
            ev = self.ctx.sim.event()
            ev.succeed(inst)
            return ev
        if inst.state in (InstanceState.PENDING, InstanceState.STOPPED,
                          InstanceState.STOPPING):
            if inst._running_event is None:
                inst._running_event = self.ctx.sim.event()
            return inst._running_event
        raise EC2Error(f"{inst.id} is {inst.state.value}; it will never run")

    def stop_instances(self, ids: Iterable[str]) -> None:
        for iid in ids:
            inst = self._get(iid)
            if inst.state == InstanceState.STOPPED:
                continue
            if inst.state != InstanceState.RUNNING:
                raise EC2Error(f"cannot stop {iid} in state {inst.state.value}")
            inst.state = InstanceState.STOPPING
            self.meter.stop(iid, self.ctx.now)
            self.ctx.log("ec2", "stopping", instance=iid)

            def _finish(i=inst):
                if i.state == InstanceState.STOPPING:
                    i.state = InstanceState.STOPPED
                    self.ctx.log("ec2", "stopped", instance=i.id)

            self.ctx.sim.call_in(STOP_LATENCY_S, _finish)

    def start_instances(self, ids: Iterable[str]) -> None:
        for iid in ids:
            inst = self._get(iid)
            if inst.state == InstanceState.RUNNING:
                continue
            if inst.state != InstanceState.STOPPED:
                raise EC2Error(f"cannot start {iid} in state {inst.state.value}")
            inst.state = InstanceState.PENDING
            if inst._running_event is None:
                inst._running_event = self.ctx.sim.event()
            self.ctx.log("ec2", "restart", instance=iid)
            obs = self.ctx.obs
            if obs.enabled:
                span = obs.start(
                    "ec2.boot",
                    track=f"ec2/{iid}",
                    instance=iid,
                    type=inst.itype.name,
                    restart=True,
                )
                self._boot_spans[iid] = span
                self._boot_span_ids[iid] = span.id
            delay = self._boot_delay(inst.itype, fraction=RESTART_FRACTION_OF_BOOT)
            self.ctx.sim.call_in(delay, lambda i=inst: self._enter_running(i))

    def terminate_instances(self, ids: Iterable[str]) -> None:
        for iid in ids:
            inst = self._get(iid)
            if inst.state in (InstanceState.TERMINATED, InstanceState.SHUTTING_DOWN):
                continue
            if self.meter.is_running(iid):
                self.meter.stop(iid, self.ctx.now)
            was_pending = inst.state == InstanceState.PENDING
            inst.state = InstanceState.SHUTTING_DOWN
            self.ctx.log("ec2", "terminating", instance=iid)
            span = self._boot_spans.pop(iid, None)
            if span is not None:
                self.ctx.obs.finish(span, status="cancelled", error="terminated while booting")
            ev = inst._running_event
            inst._running_event = None
            if ev is not None and not ev.triggered:
                ev.fail(EC2Error(f"{iid} terminated before running"))
                ev.defused = True

            def _finish(i=inst):
                i.state = InstanceState.TERMINATED
                self.ctx.log("ec2", "terminated", instance=i.id)

            self.ctx.sim.call_in(0.0 if was_pending else TERMINATE_LATENCY_S, _finish)

    # -- queries -------------------------------------------------------------
    def describe_instances(
        self,
        ids: Optional[Iterable[str]] = None,
        states: Optional[Iterable[InstanceState]] = None,
        tag_filters: Optional[dict[str, str]] = None,
    ) -> list[EC2Instance]:
        pool = (
            [self._get(i) for i in ids] if ids is not None else list(self.instances.values())
        )
        if states is not None:
            wanted = set(states)
            pool = [i for i in pool if i.state in wanted]
        if tag_filters:
            pool = [
                i
                for i in pool
                if all(i.tags.get(k) == v for k, v in tag_filters.items())
            ]
        return pool

    def _get(self, iid: str) -> EC2Instance:
        try:
            return self.instances[iid]
        except KeyError:
            raise EC2Error(f"unknown instance {iid!r}") from None


__all__ = [
    "AMI",
    "CATALOG",
    "EC2Error",
    "EC2Instance",
    "InstanceState",
    "KeyPair",
    "MockEC2",
]
