"""Simulated Amazon EC2: instance catalog, control plane, billing, network.

This is the substitution for the paper's real EC2 testbed — see DESIGN.md
section 2 for the calibration rationale.
"""

from .ec2 import (
    AMI,
    EC2Error,
    EC2Instance,
    InstanceState,
    InsufficientCapacity,
    KeyPair,
    MockEC2,
)
from .estimator import (
    DEFAULT_INSTANCE_TYPES,
    CostEstimate,
    estimate_batch,
    estimate_scalar_loop,
    estimate_usecase_steps34,
)
from .instance_types import ALIASES, CATALOG, InstanceType, resolve
from .network import (
    NetworkPath,
    ProtocolModel,
    TransferTooLarge,
    aggregate_rate_bps,
    ftp_model,
    globus_model,
    globus_streams_for,
    http_model,
    mathis_limit_bps,
    slow_start_ramp_s,
    stream_rate_bps,
)
from .pricing import BillingMeter, PriceBook, UsageInterval

__all__ = [
    "ALIASES",
    "AMI",
    "BillingMeter",
    "CATALOG",
    "CostEstimate",
    "DEFAULT_INSTANCE_TYPES",
    "EC2Error",
    "EC2Instance",
    "InstanceState",
    "InstanceType",
    "InsufficientCapacity",
    "KeyPair",
    "MockEC2",
    "NetworkPath",
    "PriceBook",
    "ProtocolModel",
    "TransferTooLarge",
    "UsageInterval",
    "aggregate_rate_bps",
    "estimate_batch",
    "estimate_scalar_loop",
    "estimate_usecase_steps34",
    "ftp_model",
    "globus_model",
    "globus_streams_for",
    "http_model",
    "mathis_limit_bps",
    "resolve",
    "slow_start_ramp_s",
    "stream_rate_bps",
]
