"""The 2012-era EC2 instance-type catalog used throughout the paper.

Each type carries the hardware description Amazon published at the time
(ECU, cores, memory) plus the two calibrated speed factors the simulation
uses: ``cpu_factor`` (how fast CPU-bound work runs relative to m1.small)
and ``io_factor`` (same for installation/staging I/O).  See
:mod:`repro.calibration` for how the factors were fit to Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import calibration


@dataclass(frozen=True)
class InstanceType:
    """Immutable description of one EC2 instance type."""

    name: str
    ecu: float            # total EC2 Compute Units
    cores: int
    memory_gb: float
    cpu_factor: float     # relative single-job compute speed (m1.small = 1)
    io_factor: float      # relative install/staging speed   (m1.small = 1)
    boot_latency_s: float

    @property
    def ecu_per_core(self) -> float:
        return self.ecu / self.cores

    def __str__(self) -> str:
        return self.name


def _mk(name: str, ecu: float, cores: int, memory_gb: float) -> InstanceType:
    return InstanceType(
        name=name,
        ecu=ecu,
        cores=cores,
        memory_gb=memory_gb,
        cpu_factor=calibration.CPU_FACTORS[name],
        io_factor=calibration.IO_FACTORS[name],
        boot_latency_s=calibration.BOOT_LATENCY_S[name],
    )


#: The catalog, keyed by API name.  These are the five types the paper
#: mentions: t1.micro "suitable for testing", c1.medium "good for demos",
#: m1.large "high performance", plus m1.small and m1.xlarge from Fig. 10.
CATALOG: dict[str, InstanceType] = {
    t.name: t
    for t in [
        _mk("t1.micro", ecu=0.5, cores=1, memory_gb=0.613),
        _mk("m1.small", ecu=1.0, cores=1, memory_gb=1.7),
        _mk("c1.medium", ecu=5.0, cores=2, memory_gb=1.7),
        _mk("m1.large", ecu=4.0, cores=2, memory_gb=7.5),
        _mk("m1.xlarge", ecu=8.0, cores=4, memory_gb=15.0),
    ]
}

#: Friendly aliases used in the paper's prose ("small", "extra-large", ...).
ALIASES = {
    "micro": "t1.micro",
    "small": "m1.small",
    "medium": "c1.medium",
    "large": "m1.large",
    "xlarge": "m1.xlarge",
    "extra-large": "m1.xlarge",
}


def resolve(name: str) -> InstanceType:
    """Look up an instance type by API name or prose alias."""
    key = ALIASES.get(name.lower(), name)
    try:
        return CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown instance type {name!r}; known: {known}") from None
