"""Billing: price books and usage metering for the mock EC2.

The meter records (instance, type, start, end) usage intervals; cost is
computed under either *proportional* (per-second, the model that matches
the paper's sub-cent figures) or *hourly* (classic 2012 EC2 round-up)
billing.  The billing ablation benchmark compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .. import calibration


class PriceBook:
    """Hourly USD prices per instance type."""

    def __init__(self, prices: dict[str, float], name: str = "custom") -> None:
        for t, p in prices.items():
            if p < 0:
                raise ValueError(f"negative price for {t}")
        self.name = name
        self._prices = dict(prices)

    def hourly(self, instance_type: str) -> float:
        try:
            return self._prices[instance_type]
        except KeyError:
            raise KeyError(f"no price for instance type {instance_type!r}") from None

    @classmethod
    def paper(cls) -> "PriceBook":
        """Prices calibrated to reproduce Fig. 10's cost series."""
        return cls(calibration.PAPER_PRICE_BOOK, name="paper-calibrated")

    @classmethod
    def ec2_2012(cls) -> "PriceBook":
        """Published 2012 us-east-1 on-demand prices."""
        return cls(calibration.EC2_2012_ONDEMAND_PRICE_BOOK, name="ec2-2012-ondemand")


@dataclass
class UsageInterval:
    """One contiguous running period of one instance."""

    instance_id: str
    instance_type: str
    start: float
    end: Optional[float] = None  # None while still running

    def duration(self, now: float) -> float:
        end = self.end if self.end is not None else now
        return max(0.0, end - self.start)


@dataclass
class BillingMeter:
    """Accumulates usage intervals and prices them on demand."""

    book: PriceBook = field(default_factory=PriceBook.paper)
    intervals: list[UsageInterval] = field(default_factory=list)
    _open: dict[str, UsageInterval] = field(default_factory=dict)

    def start(self, instance_id: str, instance_type: str, now: float) -> None:
        if instance_id in self._open:
            raise ValueError(f"{instance_id} is already metered as running")
        iv = UsageInterval(instance_id, instance_type, start=now)
        self._open[instance_id] = iv
        self.intervals.append(iv)

    def start_batch(
        self, instance_ids: Iterable[str], instance_type: str, now: float
    ) -> None:
        """Open one interval per id, all of the same type at one instant.

        The struct-of-arrays companion to :meth:`start`, used when a boot
        cohort enters a whole launch batch into RUNNING in one apply.
        """
        open_ = self._open
        intervals = self.intervals
        for instance_id in instance_ids:
            if instance_id in open_:
                raise ValueError(f"{instance_id} is already metered as running")
            iv = UsageInterval(instance_id, instance_type, start=now)
            open_[instance_id] = iv
            intervals.append(iv)

    def stop(self, instance_id: str, now: float) -> None:
        iv = self._open.pop(instance_id, None)
        if iv is None:
            raise ValueError(f"{instance_id} is not metered as running")
        if now < iv.start:
            raise ValueError("stop before start")
        iv.end = now

    def is_running(self, instance_id: str) -> bool:
        return instance_id in self._open

    # -- pricing ------------------------------------------------------------
    def cost(
        self,
        now: float,
        mode: str = "proportional",
        instance_ids: Optional[Iterable[str]] = None,
        window: Optional[tuple[float, float]] = None,
    ) -> float:
        """Total USD cost of recorded usage.

        ``mode`` is ``proportional`` (per-second) or ``hourly`` (each
        interval rounded up to whole instance-hours, as EC2 billed in
        2012 — so any started interval, even one launched and terminated
        at the same sim timestamp, bills a full hour).
        ``instance_ids`` restricts to a subset; ``window`` clips intervals
        to ``(t0, t1)`` — used to price only the span of one experiment.
        Intervals with no usage inside the window cost $0 in both modes.
        """
        if mode not in ("proportional", "hourly"):
            raise ValueError(f"unknown billing mode {mode!r}")
        ids = set(instance_ids) if instance_ids is not None else None
        total = 0.0
        for iv in self.intervals:
            if ids is not None and iv.instance_id not in ids:
                continue
            raw_start, raw_end = iv.start, iv.end if iv.end is not None else now
            start, end = raw_start, raw_end
            if window is not None:
                start, end = max(start, window[0]), min(end, window[1])
                if start > end:
                    continue  # interval entirely outside the window
            dur = max(0.0, end - start)
            if dur == 0.0 and raw_end > raw_start:
                # a positive-duration interval clipped down to the window
                # boundary instant: no usage inside the window
                continue
            rate = self.book.hourly(iv.instance_type)
            if mode == "proportional":
                total += rate * dur / 3600.0
            else:
                total += rate * max(1.0, math.ceil(dur / 3600.0))
        return total

    def instance_hours(self, now: float) -> float:
        """Raw instance-hours used so far (proportional)."""
        return sum(iv.duration(now) for iv in self.intervals) / 3600.0

    def cost_by_type(self, now: float, mode: str = "proportional") -> dict[str, float]:
        """Per-instance-type USD breakdown of :meth:`cost`.

        An elastic fleet mixes base workers with autoscaled additions of
        a different type; this is the view that says what the elasticity
        itself cost.  Keys are sorted so the dict is JSON-stable.
        """
        if mode not in ("proportional", "hourly"):
            raise ValueError(f"unknown billing mode {mode!r}")
        totals: dict[str, float] = {}
        for iv in self.intervals:
            dur = iv.duration(now)
            rate = self.book.hourly(iv.instance_type)
            if mode == "proportional":
                usd = rate * dur / 3600.0
            else:
                usd = rate * max(1.0, math.ceil(dur / 3600.0))
            totals[iv.instance_type] = totals.get(iv.instance_type, 0.0) + usd
        return {t: totals[t] for t in sorted(totals)}
