"""Shared-storage backends: the data-sharing axis of a deployment."""

from .backends import (
    STORAGE_BACKENDS,
    LocalStagingBackend,
    NFSBackend,
    ObjectStore,
    ObjectStoreBackend,
    SharedStorageBackend,
    StagingStats,
    StorageError,
    StripedFSBackend,
    make_backend,
)

__all__ = [
    "STORAGE_BACKENDS",
    "LocalStagingBackend",
    "NFSBackend",
    "ObjectStore",
    "ObjectStoreBackend",
    "SharedStorageBackend",
    "StagingStats",
    "StorageError",
    "StripedFSBackend",
    "make_backend",
]
