"""Pluggable shared-storage backends behind the NFS interface.

The paper's Fig. 2 topology hard-wires one data-sharing choice: an NFS
head node serving ``/home`` to every other node.  Juve et al. ("Data
Sharing Options for Scientific Workflows on Amazon EC2") showed the
backend choice dominates workflow runtime and cost, so the deployment
layer takes the backend as a ``storage=`` axis instead:

``nfs``
    Today's model, unchanged: the head server exports its filesystem and
    every node mounts it.  Job I/O is already priced inside the tool work
    models, so the stage-in/out surcharge is exactly zero — the default
    produces byte-identical simulations to the pre-refactor code.

``object_store``
    An S3-style keyed store (:class:`ObjectStore`): no POSIX namespace on
    the workers, GET/PUT per object with a per-request latency, requests
    issued in waves of a configurable parallelism.  Only the Galaxy head
    and the GridFTP gateway mount the shared namespace; each job pays an
    explicit stage-in of its inputs and stage-out of its outputs.

``striped_fs``
    A GlusterFS/PVFS-style parallel filesystem striping across N
    dedicated data nodes.  All nodes mount the namespace; reads/writes
    pay a per-file metadata operation plus the striped transfer at the
    aggregate of the per-stripe LAN paths (modelled with the existing
    :mod:`repro.cloud.network` path model), capped by the client NIC.

``local_staging``
    Node-local disk plus explicit GridFTP staging between steps: workers
    hold no shared mount, and each job pays a per-file GridFTP setup plus
    a single LAN stream for its input/output bytes.

Backends are pure timing/wiring policies: namespace contents always live
on the head server's :class:`~repro.cluster.nfs.SimFilesystem`, so tool
``execute`` bodies and Globus transfers see one consistent tree no matter
which backend priced the movement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .. import calibration
from ..cloud.network import NetworkPath, aggregate_rate_bps
from ..cluster.nfs import NFSServer

#: every recognised value of the topology ``storage=`` axis
STORAGE_BACKENDS = ("nfs", "object_store", "striped_fs", "local_staging")

#: (path, size_bytes) pairs — what the Galaxy job layer stages
FileSet = Sequence[tuple[str, int]]


class StorageError(Exception):
    pass


def _gated_lan_path(bottleneck_mbps: float) -> NetworkPath:
    """An intra-cluster path whose bottleneck is the given link rate."""
    lan = NetworkPath.lan()
    return NetworkPath(
        rtt_s=lan.rtt_s, loss=lan.loss, bottleneck_bps=bottleneck_mbps * 1e6
    )


class SharedStorageBackend:
    """Wiring + timing policy for one data-sharing choice.

    Subclasses override the class attributes and the two ``*_seconds``
    models; the deployer asks :meth:`should_mount` per node and the
    Galaxy job manager charges :meth:`stage_in_seconds` /
    :meth:`stage_out_seconds` around each work-model job.
    """

    name: str = "base"
    #: do compute (condor-worker) nodes mount the shared namespace?
    mounts_workers: bool = True

    def __init__(self) -> None:
        self.bytes_staged_in = 0
        self.bytes_staged_out = 0
        self.files_staged = 0

    # -- wiring ------------------------------------------------------------
    def build_server(self, server_node) -> NFSServer:
        """The namespace server exported from the head storage node."""
        return NFSServer(
            fs=server_node.local_fs,
            export="/export/home",
            hostname=server_node.hostname,
        )

    def should_mount(self, node) -> bool:
        """Whether ``node`` gets the shared namespace mounted at /home."""
        if node.has_role("stripe-data"):
            return False  # data servers hold stripes, not the namespace
        if self.mounts_workers:
            return True
        return node.has_role("galaxy") or node.has_role("gridftp")

    # -- timing ------------------------------------------------------------
    def stage_in_seconds(self, files: FileSet) -> float:
        return 0.0

    def stage_out_seconds(self, files: FileSet) -> float:
        return 0.0

    # -- bookkeeping -------------------------------------------------------
    def _account(self, files: FileSet, direction: str) -> int:
        total = sum(size for _path, size in files)
        self.files_staged += len(files)
        if direction == "in":
            self.bytes_staged_in += total
        else:
            self.bytes_staged_out += total
        return total

    def describe(self) -> dict:
        return {"name": self.name, "mounts_workers": self.mounts_workers}


class NFSBackend(SharedStorageBackend):
    """The paper's configuration: one NFS export mounted everywhere.

    Job I/O against the share is already inside the tool work models
    (calibrated to Fig. 10), so this backend adds no staging events at
    all — keeping the default byte-identical to the pre-backend code.
    """

    name = "nfs"
    mounts_workers = True


class ObjectStore:
    """S3-style keyed store: GET/PUT objects, no namespace, no rename."""

    def __init__(self, name: str = "objectstore") -> None:
        self.name = name
        self._objects: dict[str, int] = {}
        self.puts = 0
        self.gets = 0

    def put(self, key: str, size: int) -> None:
        if size < 0:
            raise StorageError("object size must be >= 0")
        self._objects[key] = size
        self.puts += 1

    def get(self, key: str) -> int:
        try:
            size = self._objects[key]
        except KeyError:
            raise StorageError(f"no such object: {key}") from None
        self.gets += 1
        return size

    def exists(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def transfer_seconds(self, n_files: int, total_bytes: int, parallel: int) -> float:
        """Wave model: requests issued ``parallel`` at a time, bandwidth
        aggregated across the concurrent connections."""
        if n_files <= 0:
            return 0.0
        waves = math.ceil(n_files / parallel)
        latency = waves * calibration.STORAGE_OBJECT_REQUEST_S
        conns = min(parallel, n_files)
        rate_bps = conns * calibration.STORAGE_OBJECT_CONN_MBPS * 1e6
        return latency + total_bytes * 8.0 / rate_bps


class ObjectStoreBackend(SharedStorageBackend):
    """Keyed GET/PUT staging against an :class:`ObjectStore`.

    Workers see no POSIX namespace — the store is reached through
    explicit per-job stage-in (GET every input) and stage-out (PUT every
    output), each request paying the per-round-trip latency.
    """

    name = "object_store"
    mounts_workers = False

    def __init__(self, parallel: int = calibration.STORAGE_OBJECT_PARALLEL) -> None:
        super().__init__()
        if parallel < 1:
            raise StorageError("object-store parallelism must be >= 1")
        self.parallel = parallel
        self.store = ObjectStore()

    def stage_in_seconds(self, files: FileSet) -> float:
        total = self._account(files, "in")
        for path, size in files:
            # inputs that arrived through the gateway (upload, Globus
            # transfer) were never PUT by a job; seed them on first GET
            if not self.store.exists(path):
                self.store.put(path, size)
            self.store.get(path)
        return self.store.transfer_seconds(len(files), total, self.parallel)

    def stage_out_seconds(self, files: FileSet) -> float:
        total = self._account(files, "out")
        for path, size in files:
            self.store.put(path, size)
        return self.store.transfer_seconds(len(files), total, self.parallel)

    def describe(self) -> dict:
        doc = super().describe()
        doc.update(parallel=self.parallel, objects=len(self.store.keys()))
        return doc


class StripedFSBackend(SharedStorageBackend):
    """GlusterFS/PVFS-style striping across dedicated data nodes.

    Every node mounts the namespace (like NFS), but reads and writes pay
    an explicit per-file metadata operation plus the striped transfer:
    one LAN path per data node, rates summed and capped by the client
    NIC — the ``cloud.network`` model doing the aggregation.
    """

    name = "striped_fs"
    mounts_workers = True

    def __init__(
        self, data_nodes: int = calibration.STORAGE_STRIPE_DEFAULT_NODES
    ) -> None:
        super().__init__()
        if data_nodes < 1:
            raise StorageError("striped_fs needs at least one data node")
        self.data_nodes = data_nodes

    def aggregate_bps(self) -> float:
        stripe_path = _gated_lan_path(calibration.STORAGE_STRIPE_NODE_MBPS)
        per_stripe = aggregate_rate_bps(
            stripe_path, 1, calibration.GO_WINDOW_BYTES
        )
        return min(
            self.data_nodes * per_stripe,
            calibration.STORAGE_STRIPE_CLIENT_MBPS * 1e6,
        )

    def _io_seconds(self, files: FileSet) -> float:
        if not files:
            return 0.0
        total = sum(size for _path, size in files)
        meta = len(files) * calibration.STORAGE_STRIPE_META_S
        return meta + total * 8.0 / self.aggregate_bps()

    def stage_in_seconds(self, files: FileSet) -> float:
        self._account(files, "in")
        return self._io_seconds(files)

    def stage_out_seconds(self, files: FileSet) -> float:
        self._account(files, "out")
        return self._io_seconds(files)

    def describe(self) -> dict:
        doc = super().describe()
        doc.update(
            data_nodes=self.data_nodes,
            aggregate_mbps=self.aggregate_bps() / 1e6,
        )
        return doc


class LocalStagingBackend(SharedStorageBackend):
    """Node-local disk plus explicit GridFTP staging between steps.

    Workers keep everything on local disk; each job's inputs are pulled
    from (and outputs pushed to) the gateway with one GridFTP transfer
    per file — a control-channel setup plus a single LAN stream.
    """

    name = "local_staging"
    mounts_workers = False

    def _io_seconds(self, files: FileSet) -> float:
        if not files:
            return 0.0
        total = sum(size for _path, size in files)
        stream_path = _gated_lan_path(calibration.STORAGE_LOCAL_STREAM_MBPS)
        rate = aggregate_rate_bps(stream_path, 1, calibration.GO_WINDOW_BYTES)
        return len(files) * calibration.STORAGE_LOCAL_SETUP_S + total * 8.0 / rate

    def stage_in_seconds(self, files: FileSet) -> float:
        self._account(files, "in")
        return self._io_seconds(files)

    def stage_out_seconds(self, files: FileSet) -> float:
        self._account(files, "out")
        return self._io_seconds(files)


def make_backend(
    name: str, data_nodes: int = 0, parallel: Optional[int] = None
) -> SharedStorageBackend:
    """Instantiate the backend for a topology's ``storage=`` value."""
    if name == "nfs":
        return NFSBackend()
    if name == "object_store":
        return ObjectStoreBackend(
            parallel=parallel if parallel is not None
            else calibration.STORAGE_OBJECT_PARALLEL
        )
    if name == "striped_fs":
        return StripedFSBackend(
            data_nodes=data_nodes or calibration.STORAGE_STRIPE_DEFAULT_NODES
        )
    if name == "local_staging":
        return LocalStagingBackend()
    raise StorageError(
        f"unknown storage backend {name!r}; known: {list(STORAGE_BACKENDS)}"
    )


@dataclass
class StagingStats:
    """Snapshot of a backend's movement counters (payload reporting)."""

    backend: str
    bytes_staged_in: int = 0
    bytes_staged_out: int = 0
    files_staged: int = 0
    extra: dict = field(default_factory=dict)

    @classmethod
    def of(cls, backend: SharedStorageBackend) -> "StagingStats":
        return cls(
            backend=backend.name,
            bytes_staged_in=backend.bytes_staged_in,
            bytes_staged_out=backend.bytes_staged_out,
            files_staged=backend.files_staged,
            extra=backend.describe(),
        )
