"""repro: Galaxy + Globus Provision on clouds, reproduced offline.

A complete implementation of the system described in Liu et al.,
"Deploying Bioinformatics Workflows on Clouds with Galaxy and Globus
Provision" (SC Companion 2012), built on a deterministic discrete-event
simulation substrate with real statistical compute.

Start here::

    from repro.core import CloudTestbed, run_usecase
    result = run_usecase()                 # the paper's Sec. V-A scenario
    print(result.steps34_minutes)          # ~10.7, as the paper reports

Subpackages (see DESIGN.md for the full inventory):

- :mod:`repro.simcore` -- event kernel, processes, resources, seeded RNG
- :mod:`repro.cloud` -- mock EC2, billing, TCP network models
- :mod:`repro.chef` -- recipes/cookbooks with idempotent converge
- :mod:`repro.cluster` -- Condor pool, NFS, NIS, nodes, SSH
- :mod:`repro.security` -- X.509 CA, MyProxy
- :mod:`repro.transfer` -- GridFTP, Globus Online, FTP/HTTP baselines
- :mod:`repro.galaxy` -- the workflow platform
- :mod:`repro.tools_globus` -- the three Globus Transfer Galaxy tools
- :mod:`repro.crdata` -- the 35-tool statistical suite
- :mod:`repro.provision` -- Globus Provision (topologies, deployer, CLI)
- :mod:`repro.core` -- the glue: cookbooks, testbed, use case, autoscaler
- :mod:`repro.workloads` -- synthetic datasets with planted signal
- :mod:`repro.bench` -- drivers regenerating every paper figure
"""

__version__ = "1.0.0"
__paper__ = (
    "Liu, Madduri, Chard, Sotomayor, Foster. Deploying Bioinformatics "
    "Workflows on Clouds with Galaxy and Globus Provision. SC Companion 2012."
)
