"""Span recording: hierarchical, sim-time-keyed, zero-overhead when off.

The observability model has three moving parts:

* :class:`Span` — one named interval of simulated time on a *track*
  (a Chrome-trace thread: one per node, transfer task, job, ...).  Spans
  on the same track nest; a span opened while another is open on the same
  track becomes its child.  Spans are context managers, so exception
  status is captured automatically.
* :class:`ObsRecorder` — collects spans, instant events, and a
  :class:`~repro.obs.metrics.MetricsRegistry` for one simulation context.
  Its clock is bound to the owning :class:`~repro.simcore.kernel.Simulator`,
  so every timestamp is deterministic simulated seconds.
* :data:`NULL_RECORDER` — the disabled singleton every context gets by
  default.  All of its methods are no-ops returning shared null objects,
  so an uninstrumented run pays one attribute load and a truthiness test
  per site, and the hot kernel loop pays nothing at all (the kernel
  checks ``obs.enabled`` once per ``run()``, not per event).

Recording never touches the RNG streams and never schedules events, so a
run's simulation output is byte-identical whether observability is on or
off — the property CI's obs-smoke step enforces.

Harness integration: :func:`capture` installs a process-wide default so
that every :class:`~repro.simcore.context.SimContext` built inside the
``with`` block records into a fresh recorder.  That is how ``gp-bench
--obs-out`` reaches simulations constructed deep inside benchmark tasks
without threading a parameter through every constructor.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .timeseries import NULL_SERIES, TimeSeries

__all__ = [
    "Span",
    "ObsRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "capture",
    "Capture",
    "recorder_for_context",
]


class Span:
    """One named interval of simulated time; also a context manager."""

    __slots__ = (
        "id",
        "name",
        "track",
        "start",
        "end",
        "parent_id",
        "cause_id",
        "status",
        "error",
        "attrs",
        "_recorder",
    )

    def __init__(
        self,
        id: int,
        name: str,
        track: str,
        start: float,
        parent_id: Optional[int],
        attrs: dict[str, Any],
        recorder: "ObsRecorder",
        cause_id: Optional[int] = None,
    ) -> None:
        self.id = id
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        #: causal predecessor across tracks (a span id): the operation
        #: whose completion released this one — an EC2 boot for a Chef
        #: converge, a Condor wait for its run.  ``parent_id`` is same-track
        #: nesting; ``cause_id`` is the cross-entity edge the critical-path
        #: walk follows.
        self.cause_id = cause_id
        self.status = "open"
        self.error: Optional[str] = None
        self.attrs = attrs
        self._recorder = recorder

    @property
    def duration_s(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on an open or closed span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc_type is None:
            self._recorder.finish(self)
        else:
            self._recorder.finish(self, status="error", error=repr(exc))
        return False

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "parent_id": self.parent_id,
            "cause_id": self.cause_id,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.name!r} [{self.track}] {self.start}"
            f"..{self.end if self.end is not None else '?'} {self.status}>"
        )


class ObsRecorder:
    """Span + instant + metrics sink for one simulation context."""

    enabled = True

    def __init__(self, label: str = "sim", clock: Optional[Callable[[], float]] = None) -> None:
        self.label = label
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.spans: list[Span] = []
        self.instants: list[dict] = []
        #: provenance annotations (see :meth:`annotate`): structured facts
        #: about *what* ran, not *when* — topology specs, deployment
        #: metadata — that bundle exporters lift out of the span log
        self.annotations: list[dict] = []
        self.metrics = MetricsRegistry()
        #: named gauge time series (see :mod:`repro.obs.timeseries`)
        self.series_registry: dict[str, TimeSeries] = {}
        self._next_id = 1
        #: per-track stacks of open spans (nesting: top of stack = parent)
        self._open: dict[str, list[Span]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the recorder at a simulation clock (``lambda: sim.now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- spans --------------------------------------------------------------
    def start(
        self,
        name: str,
        track: Optional[str] = None,
        cause: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span:
        """Open a span at the current sim time.

        ``track=None`` gives the span its own single-use track named after
        the span id — the choice for operations that may overlap arbitrarily
        (concurrent GridFTP transfers on one server) where false parent
        links would mislead.

        ``cause`` names the causal predecessor — a :class:`Span` or its
        id, typically on *another* track — whose completion released this
        operation (boot -> converge, condor wait -> run).  It is pure
        metadata: recording a cause schedules nothing and never alters
        nesting.
        """
        sid = self._next_id
        self._next_id += 1
        if track is None:
            track = f"{name}#{sid}"
        stack = self._open.get(track)
        parent_id = stack[-1].id if stack else None
        cause_id = cause.id if isinstance(cause, Span) else cause
        span = Span(
            sid, name, track, self._clock(), parent_id, attrs, self, cause_id
        )
        self.spans.append(span)
        if stack is None:
            self._open[track] = [span]
        else:
            stack.append(span)
        return span

    def span(
        self,
        name: str,
        track: Optional[str] = None,
        cause: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span:
        """Alias of :meth:`start`; reads naturally in ``with`` statements."""
        return self.start(name, track, cause, **attrs)

    def finish(self, span: Span, status: str = "ok", error: Optional[str] = None) -> Span:
        """Close a span at the current sim time."""
        if span.end is not None:
            return span  # idempotent: exporter-safe double close
        span.end = self._clock()
        span.status = status
        span.error = error
        stack = self._open.get(span.track)
        if stack:
            # usually LIFO; tolerate out-of-order closes (overlapping
            # operations that share a track by design)
            try:
                stack.remove(span)
            except ValueError:
                pass
            if not stack:
                del self._open[span.track]
        return span

    def finish_open(self, track: str, status: str = "ok", error: Optional[str] = None) -> int:
        """Close every open span on ``track``, innermost first."""
        stack = self._open.get(track)
        closed = 0
        while stack:
            self.finish(stack[-1], status=status, error=error)
            stack = self._open.get(track)
            closed += 1
        return closed

    def instant(self, name: str, track: Optional[str] = None, **attrs: Any) -> None:
        """Record a point event (faults, negotiation cycles, activations)."""
        self.instants.append(
            {
                "name": name,
                "track": track if track is not None else name,
                "time": self._clock(),
                "attrs": attrs,
            }
        )

    def annotate(self, kind: str, **attrs: Any) -> None:
        """Attach a provenance annotation to this recorder.

        Annotations carry reconstruction inputs — the deployed topology
        spec, deployment facts — rather than timing.  They ride in
        :meth:`to_dict` (and therefore through the harness pipe) but the
        trace exporters ignore them; ``repro.provenance`` collects them
        into the bundle's topology section via
        :func:`repro.obs.export.annotations`.
        """
        self.annotations.append({"kind": kind, "time": self._clock(), "attrs": attrs})

    # -- metrics ------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, bounds=None) -> Histogram:
        if bounds is None:
            return self.metrics.histogram(name)
        return self.metrics.histogram(name, tuple(bounds))

    def series(self, name: str) -> TimeSeries:
        """Named gauge time series, created on first use (sim-time samples)."""
        ts = self.series_registry.get(name)
        if ts is None:
            ts = self.series_registry[name] = TimeSeries(name, self._clock)
        return ts

    # -- export -------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe document: the unit the exporters and the harness move."""
        return {
            "label": self.label,
            "spans": [s.to_dict() for s in self.spans],
            "instants": [dict(i, attrs=dict(i["attrs"])) for i in self.instants],
            "annotations": [dict(a, attrs=dict(a["attrs"])) for a in self.annotations],
            "metrics": self.metrics.to_dict(),
            "series": {
                name: self.series_registry[name].to_list()
                for name in sorted(self.series_registry)
            },
        }


class _NullSpan:
    """Shared do-nothing span: every disabled ``span()`` returns this."""

    __slots__ = ()

    id = 0
    name = ""
    track = ""
    start = 0.0
    end = 0.0
    parent_id = None
    cause_id = None
    status = "ok"
    error = None
    duration_s = 0.0

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()

    name = ""
    value = 0
    max_value = 0
    count = 0
    total = 0.0

    def inc(self, _amount: int | float = 1) -> None:
        pass

    def set(self, _value: float) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullRecorder:
    """The disabled recorder: every method is a constant-cost no-op."""

    enabled = False
    label = "disabled"
    spans: list = []       # intentionally shared and always empty
    instants: list = []
    annotations: list = []
    now = 0.0

    __slots__ = ()

    def bind_clock(self, _clock) -> None:
        pass

    def start(
        self, _name: str, _track: Optional[str] = None, _cause=None, **_attrs: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def span(
        self, _name: str, _track: Optional[str] = None, _cause=None, **_attrs: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def finish(self, span, status: str = "ok", error: Optional[str] = None):
        return span

    def finish_open(self, _track: str, status: str = "ok", error: Optional[str] = None) -> int:
        return 0

    def instant(self, _name: str, _track: Optional[str] = None, **_attrs: Any) -> None:
        pass

    def annotate(self, _kind: str, **_attrs: Any) -> None:
        pass

    def counter(self, _name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, _name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, _name: str, bounds=None) -> _NullMetric:
        return _NULL_METRIC

    def series(self, _name: str):
        return NULL_SERIES

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "spans": [],
            "instants": [],
            "annotations": [],
            "metrics": {},
            "series": {},
        }


#: the process-wide disabled singleton
NULL_RECORDER = NullRecorder()


# ---------------------------------------------------------------------------
# Process-wide capture (the --obs-out plumbing)
# ---------------------------------------------------------------------------


class Capture:
    """Recorders created while a :func:`capture` block was active."""

    def __init__(self) -> None:
        self.recorders: list[ObsRecorder] = []

    def add(self, recorder: ObsRecorder) -> None:
        self.recorders.append(recorder)

    def to_docs(self) -> list[dict]:
        """One JSON-safe doc per simulation context, in creation order."""
        return [r.to_dict() for r in self.recorders]


_active_capture: Optional[Capture] = None


@contextmanager
def capture():
    """Record every simulation built inside the block.

    Contexts constructed while the block is active (and not given an
    explicit ``obs=``) each get a fresh :class:`ObsRecorder`, collected on
    the yielded :class:`Capture`.  Nesting restores the previous capture
    on exit, and worker processes can use this around a whole task.
    """
    global _active_capture
    previous = _active_capture
    cap = Capture()
    _active_capture = cap
    try:
        yield cap
    finally:
        _active_capture = previous


def capturing() -> bool:
    """True when a :func:`capture` block is currently active."""
    return _active_capture is not None


def recorder_for_context(obs, sim) -> "ObsRecorder | NullRecorder":
    """Resolve a context's ``obs=`` argument into a recorder.

    * an :class:`ObsRecorder` — used as-is (clock bound to ``sim``);
    * ``True`` — a fresh recorder;
    * ``None``/``False`` — a fresh recorder if a :func:`capture` block is
      active, else the shared :data:`NULL_RECORDER`.

    Fresh recorders are registered with the active capture, labelled by
    creation order so exports are deterministic.
    """
    if isinstance(obs, ObsRecorder):
        obs.bind_clock(lambda: sim.now)
        return obs
    cap = _active_capture
    if not obs and cap is None:
        return NULL_RECORDER
    recorder = ObsRecorder(
        label=f"sim-{len(cap.recorders)}" if cap is not None else "sim",
        clock=lambda: sim.now,
    )
    if cap is not None:
        cap.add(recorder)
    return recorder
