"""Schema checks for exported observability artefacts.

CI's obs-smoke step runs this over everything the harness wrote::

    python -m repro.obs.validate obs-out/*.trace.json \\
        critpath-out/*.critpath.json obs-out/*.timeseries.jsonl

The checker dispatches on filename suffix:

* ``*.critpath.json`` — critical-path documents (:func:`check_critpath`):
  version/suite/contexts present, per-context segments contiguous and
  non-negative, segment durations summing to the makespan, layer totals
  matching the segments;
* ``*.timeseries.jsonl`` — gauge sample logs (:func:`check_timeseries`):
  one JSON object per line with ``context``/``series``/``t``/``value``,
  finite non-negative times, per-series times monotone non-decreasing;
* anything else — Chrome ``trace_event`` JSON
  (:func:`check_chrome_trace`): object with a ``traceEvents`` list, known
  phases (``X``/``i``/``M``), integer ``pid``/``tid``, finite
  non-negative ``ts``/``dur``, per (pid, tid) track monotone ``ts`` — the
  ordering Perfetto relies on.

Regardless of flavour, an empty file and a truncated/malformed file are
reported as distinct named errors, and neither ever counts as valid.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys

__all__ = ["check_chrome_trace", "check_critpath", "check_timeseries", "main"]

#: tolerance for "segment durations sum to the makespan" (sim-seconds)
_SUM_TOL = 1e-6

_PHASES = {"X", "i", "M"}


def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def check_chrome_trace(doc) -> list[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
                errors.append(f"{where}: {key} must be an integer")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _is_num(ts) or ts < 0:
            errors.append(f"{where}: ts must be a finite number >= 0, got {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not _is_num(dur) or dur < 0:
                errors.append(f"{where}: dur must be a finite number >= 0, got {dur!r}")
        track = (ev.get("pid"), ev.get("tid"))
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            errors.append(
                f"{where}: ts went backwards on track pid={track[0]} "
                f"tid={track[1]} ({ts} < {prev})"
            )
        last_ts[track] = ts
    if not any(ev.get("ph") == "X" for ev in events if isinstance(ev, dict)):
        errors.append("trace contains no complete ('X') span events")
    return errors


def check_critpath(doc) -> list[str]:
    """Schema + invariant check for one ``.critpath.json`` document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("version") != 1:
        errors.append(f"unknown critpath version {doc.get('version')!r}")
    contexts = doc.get("contexts")
    if not isinstance(contexts, list):
        return errors + ["missing 'contexts' list"]
    if not isinstance(doc.get("layers"), dict):
        errors.append("missing 'layers' object")
    for i, ctx in enumerate(contexts):
        where = f"contexts[{i}]"
        if not isinstance(ctx, dict):
            errors.append(f"{where}: not an object")
            continue
        segments = ctx.get("segments")
        if not isinstance(segments, list):
            errors.append(f"{where}: missing 'segments' list")
            continue
        makespan = ctx.get("makespan_s")
        if not _is_num(makespan) or makespan < 0:
            errors.append(f"{where}: makespan_s must be a finite number >= 0")
            continue
        total = 0.0
        layer_sums: dict[str, float] = {}
        prev_end = None
        for k, seg in enumerate(segments):
            sw = f"{where}.segments[{k}]"
            if not isinstance(seg, dict):
                errors.append(f"{sw}: not an object")
                continue
            start, end = seg.get("start"), seg.get("end")
            dur = seg.get("duration_s")
            if not (_is_num(start) and _is_num(end) and _is_num(dur)):
                errors.append(f"{sw}: start/end/duration_s must be finite numbers")
                continue
            if end < start or dur < 0:
                errors.append(f"{sw}: negative interval ({start} .. {end})")
            if abs((end - start) - dur) > _SUM_TOL:
                errors.append(f"{sw}: duration_s {dur} != end - start {end - start}")
            if prev_end is not None and abs(start - prev_end) > _SUM_TOL:
                errors.append(
                    f"{sw}: gap in coverage (starts at {start}, previous ended {prev_end})"
                )
            prev_end = end
            total += dur
            layer = seg.get("layer")
            if not isinstance(layer, str) or not layer:
                errors.append(f"{sw}: missing 'layer'")
            else:
                layer_sums[layer] = layer_sums.get(layer, 0.0) + dur
        if segments and abs(total - makespan) > _SUM_TOL:
            errors.append(
                f"{where}: segment durations sum to {total}, makespan_s is {makespan}"
            )
        declared = ctx.get("layers")
        if isinstance(declared, dict):
            for layer, seconds in layer_sums.items():
                if abs(declared.get(layer, 0.0) - seconds) > _SUM_TOL:
                    errors.append(
                        f"{where}: layers[{layer!r}] is {declared.get(layer)}, "
                        f"segments sum to {seconds}"
                    )
    return errors


def check_timeseries(lines: list[tuple[int, dict]]) -> list[str]:
    """Schema check over parsed ``.timeseries.jsonl`` lines.

    ``lines`` pairs each 1-based line number with its parsed object; the
    caller handles file-level empty/truncated errors.
    """
    errors: list[str] = []
    last_t: dict[tuple, float] = {}
    for lineno, point in lines:
        where = f"line {lineno}"
        if not isinstance(point, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("context", "series"):
            if not isinstance(point.get(key), str) or not point[key]:
                errors.append(f"{where}: {key} must be a non-empty string")
        t = point.get("t")
        if not _is_num(t) or t < 0:
            errors.append(f"{where}: t must be a finite number >= 0, got {t!r}")
            continue
        if not _is_num(point.get("value")):
            errors.append(f"{where}: value must be a finite number")
        key = (point.get("context"), point.get("series"))
        prev = last_t.get(key)
        if prev is not None and t < prev:
            errors.append(
                f"{where}: t went backwards for series {key[1]!r} ({t} < {prev})"
            )
        last_t[key] = t
    return errors


def _check_file(path: pathlib.Path, text: str) -> tuple[list[str], str]:
    """Dispatch on filename flavour; return (errors, ok-message)."""
    name = path.name
    if name.endswith(".timeseries.jsonl"):
        parsed: list[tuple[int, dict]] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                parsed.append((lineno, json.loads(line)))
            except ValueError as exc:
                return [f"truncated or malformed JSON on line {lineno}: {exc}"], ""
        return check_timeseries(parsed), f"ok ({len(parsed)} samples)"
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return [f"truncated or malformed JSON: {exc}"], ""
    if name.endswith(".critpath.json"):
        errors = check_critpath(doc)
        n = len(doc.get("contexts", [])) if isinstance(doc, dict) else 0
        return errors, f"ok ({n} contexts)"
    errors = check_chrome_trace(doc)
    n = 0
    if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        n = sum(
            1
            for e in doc["traceEvents"]
            if isinstance(e, dict) and e.get("ph") == "X"
        )
    return errors, f"ok ({n} spans)"


def main(argv: list[str] | None = None) -> int:
    paths = [pathlib.Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print(
            "usage: python -m repro.obs.validate "
            "TRACE.json [X.critpath.json X.timeseries.jsonl ...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in paths:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        # An empty (or whitespace-only) file means the exporter never ran
        # or died before writing — name that case instead of letting it
        # surface as a generic JSON parse error, and never let any
        # no-content case count as valid.
        if not text.strip():
            print(f"{path}: empty trace file (no content to validate)", file=sys.stderr)
            failed = True
            continue
        errors, ok_msg = _check_file(path, text)
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: {ok_msg}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
