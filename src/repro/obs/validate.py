"""Schema check for exported Chrome ``trace_event`` files.

CI's obs-smoke step runs this over every ``*.trace.json`` the harness
wrote::

    python -m repro.obs.validate obs-out/*.trace.json

Checks (per file): the document is a JSON object with a ``traceEvents``
list; every event has a known phase (``X``/``i``/``M``) plus integer
``pid``/``tid``; timed events carry finite non-negative ``ts`` (and, for
``X``, ``dur``); and per (pid, tid) track the ``ts`` sequence is monotone
non-decreasing — the ordering Perfetto relies on.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys

__all__ = ["check_chrome_trace", "main"]

_PHASES = {"X", "i", "M"}


def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) and math.isfinite(v)


def check_chrome_trace(doc) -> list[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' list"]
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int) or isinstance(ev.get(key), bool):
                errors.append(f"{where}: {key} must be an integer")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _is_num(ts) or ts < 0:
            errors.append(f"{where}: ts must be a finite number >= 0, got {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not _is_num(dur) or dur < 0:
                errors.append(f"{where}: dur must be a finite number >= 0, got {dur!r}")
        track = (ev.get("pid"), ev.get("tid"))
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            errors.append(
                f"{where}: ts went backwards on track pid={track[0]} "
                f"tid={track[1]} ({ts} < {prev})"
            )
        last_ts[track] = ts
    if not any(ev.get("ph") == "X" for ev in events if isinstance(ev, dict)):
        errors.append("trace contains no complete ('X') span events")
    return errors


def main(argv: list[str] | None = None) -> int:
    paths = [pathlib.Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.json [...]", file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}", file=sys.stderr)
            failed = True
            continue
        # An empty (or whitespace-only) file means the exporter never ran
        # or died before writing — name that case instead of letting it
        # surface as a generic JSON parse error, and never let any
        # no-content case count as valid.
        if not text.strip():
            print(f"{path}: empty trace file (no content to validate)", file=sys.stderr)
            failed = True
            continue
        try:
            doc = json.loads(text)
        except ValueError as exc:
            print(f"{path}: truncated or malformed JSON: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = check_chrome_trace(doc)
        if errors:
            failed = True
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            n = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
            print(f"{path}: ok ({n} spans)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
