"""Deterministic metrics primitives: counters, gauges, fixed-bucket histograms.

Every layer of the simulation publishes into one :class:`MetricsRegistry`
(owned by the context's :class:`~repro.obs.recorder.ObsRecorder`).  All
state is plain Python numbers updated in event-processing order, so two
runs of the same seed produce byte-identical exports — there is no
wall-clock, no sampling, and no unseeded randomness anywhere in here.

Histograms use *fixed* bucket bounds chosen at creation time (default: a
1-2-5 decade ladder over sim-seconds).  Quantile estimates are therefore
deterministic too: :meth:`Histogram.quantile` returns the upper bound of
the bucket containing the requested rank, which is the conventional
Prometheus-style estimate.
"""

from __future__ import annotations

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]


def _decade_ladder(lo: float = 0.001, hi: float = 100_000.0) -> tuple[float, ...]:
    """A 1-2-5 ladder of bucket upper bounds spanning [lo, hi]."""
    bounds: list[float] = []
    scale = lo
    while scale <= hi:
        for mult in (1.0, 2.0, 5.0):
            bound = scale * mult
            if lo <= bound <= hi:
                bounds.append(bound)
        scale *= 10.0
    return tuple(bounds)


#: default histogram bucket upper bounds (sim-seconds): 1ms .. ~1 sim-day
DEFAULT_BUCKETS = _decade_ladder()


class Counter:
    """A monotonically increasing count (events, faults, retries, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways; tracks its high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """Fixed-bucket distribution of observed values (deterministic)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: one count per bound, plus a final overflow bucket (+inf)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # linear scan is fine: bucket ladders are a few dozen entries and
        # most observations land in the first decades
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank.

        Returns the overall max for ranks landing in the overflow bucket
        (and for q=1.0), and 0.0 when nothing was observed.  The rank is
        clamped to at least 1: ``q=0.0`` asks for the first observation's
        bucket, not rank 0 — an unclamped rank made every bucket (empty
        ones included) satisfy ``seen >= rank`` and q=0.0 wrongly
        returned the first bound even when nothing landed there.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self.bucket_counts[i]
            if seen >= rank:
                return bound
        return self.max

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """Named metrics, created on first use, exported in sorted-name order."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, *args)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self) -> dict:
        """JSON-safe snapshot, keys sorted for byte-stable exports."""
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}
