"""Unified observability: spans, metrics, and trace exporters.

The reproduction's answer to the paper's "where does deployment time go?"
question (Figs. 10–11): every layer of the stack — kernel, EC2 control
plane, Chef converges, GridFTP/Globus transfers, the Condor pool, and
Galaxy jobs — opens hierarchical :class:`Span` intervals keyed on
*simulated* time and publishes named metrics into a per-context registry.

Disabled (the default), the whole subsystem is a handful of shared no-op
singletons and simulation output is byte-identical to an uninstrumented
build — CI enforces this.  Enabled, a run exports:

* a Chrome ``trace_event`` JSON loadable in Perfetto / ``about://tracing``;
* a flat JSONL span log;
* a text summary table (count / total / p50 / p95 per span name).

Enable per context::

    ctx = SimContext(seed=0, obs=True)
    ...
    print(summary_table(ctx.obs))

or for everything built inside a block (how ``gp-bench --obs-out`` taps
simulations constructed deep inside benchmark tasks)::

    with capture() as cap:
        run_usecase()
    json.dump(chrome_trace(cap), open("usecase.trace.json", "w"))
"""

from .critpath import critical_path, critpath_doc, layer_of
from .export import (
    annotations,
    as_docs,
    chrome_trace,
    metrics_rows,
    spans_jsonl,
    summary_rows,
    summary_table,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .recorder import (
    NULL_RECORDER,
    Capture,
    NullRecorder,
    ObsRecorder,
    Span,
    capture,
    capturing,
    recorder_for_context,
)
from .timeseries import NULL_SERIES, TimeSeries, series_points, timeseries_jsonl
from .tracediff import SpanDivergence, first_span_divergence, render_span_divergence
from .validate import check_chrome_trace, check_critpath, check_timeseries

__all__ = [
    "Capture",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NULL_SERIES",
    "NullRecorder",
    "ObsRecorder",
    "Span",
    "SpanDivergence",
    "TimeSeries",
    "annotations",
    "as_docs",
    "capture",
    "capturing",
    "check_chrome_trace",
    "check_critpath",
    "check_timeseries",
    "chrome_trace",
    "critical_path",
    "critpath_doc",
    "first_span_divergence",
    "layer_of",
    "metrics_rows",
    "recorder_for_context",
    "render_span_divergence",
    "series_points",
    "spans_jsonl",
    "summary_rows",
    "summary_table",
    "timeseries_jsonl",
]
