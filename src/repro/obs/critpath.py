"""Critical-path extraction over the causal span DAG of a finished run.

The paper's headline figures are *attribution* claims — which layer
(boot, converge, transfer, queue wait, execute) dominates end-to-end
time.  The span recorder captures every interval; this module answers
"what chain of operations set the makespan?" by walking the span DAG of
one recorded context **backwards from the last operation to finish**:

1. start at the last-ending operational span (latest ``end``; ties break
   toward the latest ``start``, then the highest id — i.e. the most
   specific, most recently opened work);
2. repeatedly pick the current span's *predecessor* — in priority order,
   its explicit :attr:`~repro.obs.recorder.Span.cause_id` link, its
   same-track parent, the previous span on its track, or (fallback) the
   globally last span to finish before it started;
3. attribute each backward step's interval to the span that covered it;
   time no chosen span covers becomes an explicit ``idle`` segment.

The walk is contiguous backward coverage of ``[trace_start,
makespan_end]``, so the summed segment durations equal the makespan by
construction, every segment is non-negative, and the chain contains the
longest operational span's own interval whenever that span lies on it.
Container spans that merely *wrap* the run (``kernel.run``) are excluded
from the walk — they would swallow the whole makespan into one segment
and say nothing.

Everything here reads the JSON-safe doc form
(:meth:`~repro.obs.recorder.ObsRecorder.to_dict`), uses only span data
(never metrics, which legitimately differ across dispatch modes), and
breaks every tie on deterministic keys — so the critpath document for a
run is byte-identical across scheduler (heap/wheel) and dispatch
(scalar/cohort) choices, the property the equivalence tests pin.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

__all__ = [
    "PHASE_LAYERS",
    "CONTAINER_NAMES",
    "layer_of",
    "critical_path",
    "critpath_doc",
]

#: span-name prefix -> Fig. 10 phase layer.  Longest prefix wins; names
#: matching nothing fall back to their first dotted component.
PHASE_LAYERS: tuple[tuple[str, str], ...] = (
    ("ec2.", "boot"),
    ("chef.", "converge"),
    ("go.", "transfer"),
    ("gridftp.", "transfer"),
    ("galaxy.stage_in", "transfer"),
    ("galaxy.stage_out", "transfer"),
    ("condor.wait", "queue"),
    ("condor.run", "execute"),
    ("condor.", "execute"),
    ("galaxy.", "execute"),
    ("waas.", "service"),
)

#: spans that wrap a whole run rather than doing work; never chain nodes
CONTAINER_NAMES = frozenset({"kernel.run"})


def layer_of(name: str) -> str:
    """Map a span name to its Fig. 10 phase layer."""
    best = None
    best_len = -1
    for prefix, layer in PHASE_LAYERS:
        if name.startswith(prefix) and len(prefix) > best_len:
            best = layer
            best_len = len(prefix)
    if best is not None:
        return best
    return name.split(".", 1)[0]


def _closed_spans(doc: dict) -> list[dict]:
    return [
        s
        for s in doc.get("spans", ())
        if s.get("end") is not None
    ]


def _order_key(span: dict) -> tuple:
    """Deterministic 'finished last / most specific' ordering key."""
    return (span["end"], span["start"], span["id"])


def _pick_predecessor(
    cur: dict,
    by_id: dict[int, dict],
    by_track: dict[str, list[dict]],
    by_end: list[dict],
    end_keys: list[float],
) -> Optional[dict]:
    """The span to walk to from ``cur``; always starts strictly earlier.

    Priority: explicit cause link, same-track parent, previous span on
    the track (latest end <= cur.start), then the globally last span to
    finish at or before ``cur.start``.  Requiring ``start < cur.start``
    guarantees the walk terminates.
    """
    lo = cur["start"]
    cause = by_id.get(cur.get("cause_id"))
    if cause is not None and cause["start"] < lo:
        return cause
    parent = by_id.get(cur.get("parent_id"))
    if parent is not None and parent["start"] < lo:
        return parent
    best = None
    for s in by_track.get(cur["track"], ()):
        if s["id"] != cur["id"] and s["start"] < lo and s["end"] <= lo:
            if best is None or _order_key(s) > _order_key(best):
                best = s
    if best is not None:
        return best
    # global fallback: the last operation to finish at or before lo
    # (by_end ascends by (end, start, id), so scanning left from the
    # bisect point visits later finishers first)
    i = bisect_right(end_keys, lo) - 1
    while i >= 0:
        s = by_end[i]
        if s["start"] < lo:
            return s
        i -= 1
    return None


def critical_path(doc: dict) -> dict:
    """Extract one context's makespan-dominating chain with attribution.

    Returns a JSON-safe dict: ``makespan_s``, ``critical_path_s``, the
    ordered ``segments`` (earliest first, each with its span identity,
    interval, and phase ``layer``; gaps appear as ``layer="idle"``), and
    the per-layer second totals in ``layers``.
    """
    spans = _closed_spans(doc)
    label = doc.get("label") or "sim"
    if not spans:
        return {
            "label": label,
            "makespan_s": 0.0,
            "critical_path_s": 0.0,
            "chain_spans": 0,
            "layers": {},
            "segments": [],
        }
    trace_start = min(s["start"] for s in spans)
    makespan_end = max(s["end"] for s in spans)
    walkable = [s for s in spans if s["name"] not in CONTAINER_NAMES]
    segments: list[dict] = []

    def add_segment(span: Optional[dict], lo: float, hi: float) -> None:
        if hi <= lo:
            return
        if span is None:
            segments.append(
                {
                    "span_id": None,
                    "name": "(idle)",
                    "track": "",
                    "layer": "idle",
                    "start": lo,
                    "end": hi,
                    "duration_s": hi - lo,
                }
            )
        else:
            segments.append(
                {
                    "span_id": span["id"],
                    "name": span["name"],
                    "track": span["track"],
                    "layer": layer_of(span["name"]),
                    "start": lo,
                    "end": hi,
                    "duration_s": hi - lo,
                }
            )

    chain = 0
    if walkable:
        by_id = {s["id"]: s for s in walkable}
        by_track: dict[str, list[dict]] = {}
        for s in walkable:
            by_track.setdefault(s["track"], []).append(s)
        by_end = sorted(walkable, key=_order_key)
        end_keys = [s["end"] for s in by_end]
        cur = by_end[-1]
        # time above the last finisher's end (a container outlasting all
        # operational work) reads as trailing idle
        add_segment(None, cur["end"], makespan_end)
        boundary = cur["end"]
        while True:
            chain += 1
            lo = cur["start"]
            add_segment(cur, lo, boundary)
            pred = _pick_predecessor(cur, by_id, by_track, by_end, end_keys)
            if pred is None:
                add_segment(None, trace_start, lo)
                break
            # attribute pred only up to cur's start; anything between its
            # end and cur's start nobody covered — explicit idle
            pred_end = min(pred["end"], lo)
            add_segment(None, pred_end, lo)
            boundary = pred_end
            cur = pred
    else:
        add_segment(None, trace_start, makespan_end)
    segments.reverse()
    layers: dict[str, float] = {}
    for seg in segments:
        layers[seg["layer"]] = layers.get(seg["layer"], 0.0) + seg["duration_s"]
    return {
        "label": label,
        "makespan_s": makespan_end - trace_start,
        "critical_path_s": sum(seg["duration_s"] for seg in segments),
        "chain_spans": chain,
        "layers": {k: layers[k] for k in sorted(layers)},
        "segments": segments,
    }


def critpath_doc(source, suite: str = "") -> dict:
    """The ``.critpath.json`` artefact: per-context paths + layer totals.

    ``source`` is anything :func:`repro.obs.export.as_docs` accepts.
    Aggregate ``layers`` sums seconds across contexts; ``makespan_s`` is
    the largest single-context makespan.
    """
    from .export import as_docs

    contexts = [critical_path(doc) for doc in as_docs(source)]
    layers: dict[str, float] = {}
    for ctx in contexts:
        for layer, seconds in ctx["layers"].items():
            layers[layer] = layers.get(layer, 0.0) + seconds
    return {
        "version": 1,
        "suite": suite,
        "contexts": contexts,
        "layers": {k: layers[k] for k in sorted(layers)},
        "makespan_s": max((c["makespan_s"] for c in contexts), default=0.0),
        "critical_path_s": sum(c["critical_path_s"] for c in contexts),
    }
