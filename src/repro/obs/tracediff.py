"""Structural span-log diff: name the first *span* that moved.

``gp-replay``'s sim-JSON comparison says reproduction broke at some
numeric leaf; this module says it in execution terms — the first span
(track + name + sim time) whose recorded shape differs between two span
logs.  That is the ROADMAP's requested safety gate for kernel surgery:
a diverging replay points at the operation that moved, not just the
first differing number.

Both sides are lists of obs docs (the
:meth:`~repro.obs.recorder.ObsRecorder.to_dict` form, as stored in a
provenance bundle's ``spans`` section or returned by
``SuiteResult.obs_docs()``).  Only span structure is compared — never
metrics, whose counters legitimately differ across dispatch modes
(``cohort.events.<layer>.<mode>``), and never attrs, which may carry
host-dependent detail.  Spans are compared in recording order on the
deterministic fields ``(name, track, start, end, parent_id, cause_id,
status)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SpanDivergence", "first_span_divergence", "render_span_divergence"]

#: span fields compared, in reporting priority order
SPAN_FIELDS = ("name", "track", "start", "end", "parent_id", "cause_id", "status")


@dataclass(frozen=True)
class SpanDivergence:
    """The first span where two recorded traces disagree."""

    context: str            # doc label the span belongs to
    index: int              # span position within the doc (recording order)
    field: str              # differing span field, or "<missing>"/"<context>"
    expected: Any
    actual: Any
    name: str               # span identity from whichever side has it
    track: str
    time: float             # span start in sim-seconds

    def to_dict(self) -> dict:
        return {
            "context": self.context,
            "index": self.index,
            "field": self.field,
            "expected": self.expected,
            "actual": self.actual,
            "name": self.name,
            "track": self.track,
            "time": self.time,
        }


def _doc_label(doc: dict, i: int) -> str:
    return doc.get("label") or f"sim-{i}"


def _span_identity(span: Optional[dict]) -> tuple[str, str, float]:
    if not isinstance(span, dict):
        return ("?", "?", 0.0)
    return (
        str(span.get("name", "?")),
        str(span.get("track", "?")),
        float(span.get("start") or 0.0),
    )


def first_span_divergence(
    expected_docs: list[dict], actual_docs: list[dict]
) -> Optional[SpanDivergence]:
    """First differing span between two span logs, or ``None`` if equal.

    Docs pair up in order; a missing/extra doc or span reports as a
    ``<missing>`` divergence carrying the identity of whichever side has
    the span.  Field comparison treats int/float equal values as equal
    (JSON round-trips may rewrite ``1`` as ``1.0``).
    """
    for i in range(max(len(expected_docs), len(actual_docs))):
        if i >= len(expected_docs) or i >= len(actual_docs):
            present = actual_docs[i] if i < len(actual_docs) else expected_docs[i]
            return SpanDivergence(
                context=_doc_label(present, i),
                index=0,
                field="<context>",
                expected="<absent>" if i >= len(expected_docs) else "<present>",
                actual="<absent>" if i >= len(actual_docs) else "<present>",
                name="",
                track="",
                time=0.0,
            )
        exp_doc, act_doc = expected_docs[i], actual_docs[i]
        label = _doc_label(exp_doc, i)
        exp_spans = exp_doc.get("spans") or []
        act_spans = act_doc.get("spans") or []
        for k in range(max(len(exp_spans), len(act_spans))):
            exp = exp_spans[k] if k < len(exp_spans) else None
            act = act_spans[k] if k < len(act_spans) else None
            if exp is None or act is None:
                name, track, time = _span_identity(act if exp is None else exp)
                return SpanDivergence(
                    context=label,
                    index=k,
                    field="<missing>",
                    expected="<absent>" if exp is None else "<span>",
                    actual="<absent>" if act is None else "<span>",
                    name=name,
                    track=track,
                    time=time,
                )
            for field in SPAN_FIELDS:
                ev, av = exp.get(field), act.get(field)
                if ev == av:
                    continue
                name, track, time = _span_identity(exp)
                return SpanDivergence(
                    context=label,
                    index=k,
                    field=field,
                    expected=ev,
                    actual=av,
                    name=name,
                    track=track,
                    time=time,
                )
    return None


def render_span_divergence(
    div: SpanDivergence, title: str = "first diverging span"
) -> str:
    return "\n".join(
        [
            f"{title}:",
            f"  context:  {div.context} (span #{div.index})",
            f"  span:     {div.name} [{div.track}] at t={div.time:g}s",
            f"  field:    {div.field}",
            f"  expected: {div.expected!r}",
            f"  actual:   {div.actual!r}",
        ]
    )
