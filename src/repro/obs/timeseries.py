"""Sim-time gauge sampling: deterministic time series on the recorder.

A :class:`TimeSeries` is an append-only list of ``(sim_time, value)``
points owned by an :class:`~repro.obs.recorder.ObsRecorder`.  Producers
sample at *state transitions they already handle* — a negotiation cycle,
a workflow admission, a stage-in starting — never from timers of their
own, so recording a series schedules no events and the simulation output
stays byte-identical with observability on or off (the same contract
spans and metrics honour).

Points ride inside the recorder's doc form (``to_dict()["series"]``) and
export as a flat JSONL file via :func:`timeseries_jsonl`::

    {"context": "sim-0", "series": "condor.idle_jobs", "t": 12.5, "value": 3}

one object per line, series in sorted-name order per context, points in
recording order — the artefact ``gp-bench --obs-out`` writes as
``<suite>.timeseries.jsonl`` and the autoscaling policies' post-hoc
analysis consumes.
"""

from __future__ import annotations

import json
from typing import Callable

__all__ = ["TimeSeries", "NULL_SERIES", "timeseries_jsonl", "series_points"]


class TimeSeries:
    """One named gauge sampled at simulated timestamps."""

    __slots__ = ("name", "points", "_clock")

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self.points: list[tuple[float, float]] = []
        self._clock = clock

    def record(self, value: float) -> None:
        """Append one ``(now, value)`` sample at the recorder's clock."""
        self.points.append((self._clock(), float(value)))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def last(self) -> float | None:
        return self.points[-1][1] if self.points else None

    def to_list(self) -> list[list[float]]:
        """JSON-safe ``[[t, value], ...]`` in recording order."""
        return [[t, v] for t, v in self.points]


class _NullSeries:
    """Shared do-nothing series returned by the disabled recorder."""

    __slots__ = ()

    name = ""
    points: list = []
    last = None

    def record(self, _value: float) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def to_list(self) -> list:
        return []


#: the disabled singleton every ``NullRecorder.series()`` call returns
NULL_SERIES = _NullSeries()


def series_points(source) -> list[dict]:
    """Flatten all series across docs into point records.

    Each record is ``{"context", "series", "t", "value"}``; contexts keep
    doc order, series within a context sort by name, points keep
    recording order — fully deterministic for byte-stable exports.
    """
    # imported here: export.as_docs imports nothing from this module, but
    # keeping the dependency one-way at module load avoids a cycle if the
    # exporters ever grow series-aware summaries
    from .export import as_docs

    out: list[dict] = []
    for i, doc in enumerate(as_docs(source)):
        label = doc.get("label") or f"sim-{i}"
        series = doc.get("series") or {}
        for name in sorted(series):
            for t, v in series[name]:
                out.append({"context": label, "series": name, "t": t, "value": v})
    return out


def timeseries_jsonl(source) -> str:
    """The ``.timeseries.jsonl`` artefact: one JSON object per point."""
    lines = [json.dumps(p, sort_keys=True) for p in series_points(source)]
    return "\n".join(lines) + ("\n" if lines else "")
