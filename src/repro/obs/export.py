"""Exporters: Chrome ``trace_event`` JSON, flat JSONL, and a summary table.

All exporters consume the JSON-safe *doc* form produced by
:meth:`~repro.obs.recorder.ObsRecorder.to_dict` (or
:meth:`~repro.obs.recorder.Capture.to_docs`), so the same code path
serves in-process use, the benchmark harness (docs ride back from worker
processes over a pipe), and files re-read from disk.

The Chrome trace uses complete (``ph: "X"``) events — one per closed
span, timestamped in microseconds of *simulated* time — plus thread
(``i``) instants and ``M`` metadata naming each process (one simulation
context) and thread (one span track).  The output loads directly in
Perfetto / ``about://tracing``.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "annotations",
    "as_docs",
    "chrome_trace",
    "spans_jsonl",
    "summary_rows",
    "summary_table",
]

#: simulated seconds -> Chrome trace microseconds
_US = 1_000_000.0


def as_docs(source) -> list[dict]:
    """Normalize any obs source into a list of context docs.

    Accepts a Capture, an ObsRecorder, a single doc dict, or an iterable
    of docs/recorders.
    """
    if source is None:
        return []
    if hasattr(source, "to_docs"):
        return source.to_docs()
    if hasattr(source, "to_dict"):
        return [source.to_dict()]
    if isinstance(source, dict):
        return [source]
    out: list[dict] = []
    for item in source:
        out.extend(as_docs(item))
    return out


def annotations(source, kind: str | None = None) -> list[dict]:
    """Provenance annotations across contexts, in recording order.

    Each returned dict carries the annotation fields plus a ``context``
    key naming the doc it came from; ``kind`` filters (e.g.
    ``"topology"``).  This is the bundle exporter's view of what the
    recorders captured about the deployed world.
    """
    out: list[dict] = []
    for i, doc in enumerate(as_docs(source)):
        label = doc.get("label") or f"sim-{i}"
        for ann in doc.get("annotations", ()):
            if kind is None or ann.get("kind") == kind:
                out.append(dict(ann, context=label))
    return out


def _clamp_end(span: dict, fallback: float) -> float:
    """Open spans (a sim stopped mid-operation) export with zero width."""
    end = span.get("end")
    if end is None:
        return max(float(span["start"]), fallback)
    return float(end)


def chrome_trace(source) -> dict:
    """Build a Chrome ``trace_event`` document (the JSON-object form).

    Tracks map to thread ids in first-appearance order per context; each
    context is its own process.  Events are sorted by (pid, tid, ts) so
    per-track timestamps are monotone by construction — the property
    :mod:`repro.obs.validate` checks in CI.
    """
    docs = as_docs(source)
    events: list[dict] = []
    for pid, doc in enumerate(docs, start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": doc.get("label") or f"sim-{pid}"},
            }
        )
        tids: dict[str, int] = {}

        def tid_of(track: str, tids=tids, pid=pid) -> int:
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
            return tid

        for span in doc.get("spans", ()):
            start = float(span["start"])
            end = _clamp_end(span, start)
            args = dict(span.get("attrs") or {})
            args["status"] = span.get("status", "ok")
            if span.get("error"):
                args["error"] = span["error"]
            events.append(
                {
                    "name": span["name"],
                    "ph": "X",
                    "pid": pid,
                    "tid": tid_of(span["track"]),
                    "ts": start * _US,
                    "dur": (end - start) * _US,
                    "args": args,
                }
            )
        for inst in doc.get("instants", ()):
            events.append(
                {
                    "name": inst["name"],
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid_of(inst["track"]),
                    "ts": float(inst["time"]) * _US,
                    "args": dict(inst.get("attrs") or {}),
                }
            )
    metadata = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] != "M"]
    timed.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {"traceEvents": metadata + timed, "displayTimeUnit": "ms"}


def spans_jsonl(source) -> str:
    """Flat span log: one JSON object per line, in recording order."""
    docs = as_docs(source)
    lines = []
    for i, doc in enumerate(docs):
        label = doc.get("label") or f"sim-{i}"
        for span in doc.get("spans", ()):
            lines.append(json.dumps(dict(span, context=label), sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile over the closed span durations.

    Nearest-rank: the smallest value with at least ``q`` of the samples
    at or below it, i.e. ``sorted_values[ceil(q * n) - 1]`` clamped to a
    valid index (q=0.0 returns the minimum, q=1.0 the maximum).  The old
    ``round(q * n + 0.5)`` form hit banker's rounding on exact .5
    products — p95 of 20 samples picked rank 20 instead of 19.
    """
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def summary_rows(source) -> list[dict]:
    """Per-span-name aggregates in sim-seconds, sorted by total desc."""
    docs = as_docs(source)
    durations: dict[str, list[float]] = {}
    errors: dict[str, int] = {}
    for doc in docs:
        for span in doc.get("spans", ()):
            end = span.get("end")
            if end is None:
                continue
            durations.setdefault(span["name"], []).append(end - float(span["start"]))
            if span.get("status") not in ("ok", None):
                errors[span["name"]] = errors.get(span["name"], 0) + 1
    rows = []
    for name, values in durations.items():
        values.sort()
        rows.append(
            {
                "name": name,
                "count": len(values),
                "errors": errors.get(name, 0),
                "total_s": sum(values),
                "mean_s": sum(values) / len(values),
                "p50_s": _percentile(values, 0.50),
                "p95_s": _percentile(values, 0.95),
                "max_s": values[-1],
            }
        )
    rows.sort(key=lambda r: (-r["total_s"], r["name"]))
    return rows


def summary_table(source, title: str = "span summary (sim-seconds)") -> str:
    """The text artefact: where simulated time went, by span name."""
    # imported lazily: repro.reporting pulls in repro.simcore, which in
    # turn imports this package for the null recorder — a module-level
    # import here would close that cycle during interpreter start-up
    from ..reporting.tables import render_table

    rows = summary_rows(source)
    if not rows:
        return "(no spans recorded)"
    return render_table(
        ["span", "count", "err", "total (s)", "mean (s)", "p50 (s)", "p95 (s)", "max (s)"],
        [
            (
                r["name"],
                r["count"],
                r["errors"],
                f"{r['total_s']:.2f}",
                f"{r['mean_s']:.2f}",
                f"{r['p50_s']:.2f}",
                f"{r['p95_s']:.2f}",
                f"{r['max_s']:.2f}",
            )
            for r in rows
        ],
        title=title,
    )


def metrics_rows(source) -> list[tuple]:
    """Flattened metrics across contexts (context, name, type, value)."""
    rows: list[tuple] = []
    for i, doc in enumerate(as_docs(source)):
        label = doc.get("label") or f"sim-{i}"
        for name, metric in sorted((doc.get("metrics") or {}).items()):
            kind = metric.get("type")
            if kind == "histogram":
                value = f"n={metric['count']} total={metric['total']:.2f}"
            elif kind == "gauge":
                value = f"{metric['value']} (max {metric['max']})"
            else:
                value = str(metric.get("value"))
            rows.append((label, name, kind, value))
    return rows
