"""Simulated X.509 public-key infrastructure.

GP "generates user accounts and certificates to support secure access"
(Sec. III-A); the Galaxy/Globus integration requires the user to register
an X.509 certificate with Globus Online so that "the Galaxy server [can]
submit transfer requests on behalf of the user" (Sec. IV-A).  We model
certificates as signed, expiring, revocable assertions with real
validation logic (chain, lifetime, revocation) minus the actual crypto —
the *protocol* behaviour is what the paper exercises.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Optional


class CertificateError(Exception):
    pass


@dataclass(frozen=True)
class Certificate:
    """An issued certificate (possibly a delegated proxy)."""

    subject: str
    issuer: str
    serial: int
    not_before: float
    not_after: float
    is_proxy: bool = False
    #: fake key-binding token so impersonated certs do not verify
    signature: str = ""

    @property
    def lifetime_s(self) -> float:
        return self.not_after - self.not_before

    def expired(self, now: float) -> bool:
        return now >= self.not_after or now < self.not_before


@dataclass
class CertificateAuthority:
    """A CA issuing host, user and proxy certificates."""

    name: str
    default_lifetime_s: float = 365 * 24 * 3600.0
    _serials: itertools.count = field(default_factory=lambda: itertools.count(1))
    revoked: set[int] = field(default_factory=set)
    issued: dict[int, Certificate] = field(default_factory=dict)

    def _sign(self, subject: str, serial: int, not_after: float) -> str:
        blob = f"{self.name}|{subject}|{serial}|{not_after}".encode()
        return hashlib.sha256(blob).hexdigest()[:32]

    def issue(
        self,
        subject: str,
        now: float,
        lifetime_s: Optional[float] = None,
        is_proxy: bool = False,
    ) -> Certificate:
        serial = next(self._serials)
        not_after = now + (lifetime_s if lifetime_s is not None else self.default_lifetime_s)
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            serial=serial,
            not_before=now,
            not_after=not_after,
            is_proxy=is_proxy,
            signature=self._sign(subject, serial, not_after),
        )
        self.issued[serial] = cert
        return cert

    def issue_host_cert(self, hostname: str, now: float) -> Certificate:
        return self.issue(f"/CN=host/{hostname}", now)

    def issue_user_cert(self, username: str, now: float) -> Certificate:
        return self.issue(f"/CN={username}", now)

    def delegate_proxy(
        self, cert: Certificate, now: float, lifetime_s: float = 12 * 3600.0
    ) -> Certificate:
        """Issue a short-lived proxy derived from a valid end-entity cert."""
        self.verify(cert, now)
        proxy_life = min(lifetime_s, cert.not_after - now)
        return self.issue(f"{cert.subject}/proxy", now, proxy_life, is_proxy=True)

    def revoke(self, cert: Certificate) -> None:
        if cert.serial not in self.issued:
            raise CertificateError(f"{self.name} did not issue serial {cert.serial}")
        self.revoked.add(cert.serial)

    def verify(self, cert: Certificate, now: float) -> None:
        """Raise :class:`CertificateError` unless the certificate is valid."""
        if cert.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {cert.issuer!r}, not {self.name!r}"
            )
        expected = self._sign(cert.subject, cert.serial, cert.not_after)
        if cert.signature != expected or self.issued.get(cert.serial) != cert:
            raise CertificateError("signature check failed (forged certificate?)")
        if cert.serial in self.revoked:
            raise CertificateError(f"certificate {cert.serial} is revoked")
        if cert.expired(now):
            raise CertificateError(
                f"certificate for {cert.subject} expired "
                f"(valid {cert.not_before}..{cert.not_after}, now {now})"
            )

    def is_valid(self, cert: Certificate, now: float) -> bool:
        try:
            self.verify(cert, now)
            return True
        except CertificateError:
            return False
