"""Security substrate: simulated X.509 PKI and MyProxy credential store."""

from .myproxy import MyProxyError, MyProxyServer, StoredCredential
from .x509 import Certificate, CertificateAuthority, CertificateError

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "MyProxyError",
    "MyProxyServer",
    "StoredCredential",
]
