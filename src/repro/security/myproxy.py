"""Simulated MyProxy: an online credential repository.

Users store a long-lived credential protected by a passphrase; services
(Globus Transfer activating an endpoint on the user's behalf) retrieve a
short-lived delegated proxy.  Mirrors Basney et al.'s MyProxy, which GP
deploys as one of its standard packages (Sec. III-A).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .x509 import Certificate, CertificateAuthority, CertificateError


class MyProxyError(Exception):
    pass


def _hash_pass(passphrase: str) -> str:
    return hashlib.sha256(passphrase.encode()).hexdigest()


@dataclass
class StoredCredential:
    username: str
    certificate: Certificate
    passphrase_hash: str
    max_delegation_lifetime_s: float


@dataclass
class MyProxyServer:
    """The credential repository daemon."""

    ca: CertificateAuthority
    credentials: dict[str, StoredCredential] = field(default_factory=dict)
    #: delegation audit log: (time, username, proxy serial)
    delegations: list[tuple[float, str, int]] = field(default_factory=list)

    def store(
        self,
        username: str,
        certificate: Certificate,
        passphrase: str,
        now: float,
        max_delegation_lifetime_s: float = 12 * 3600.0,
    ) -> None:
        """Deposit a credential (``myproxy-init``)."""
        if len(passphrase) < 6:
            raise MyProxyError("passphrase too short (min 6 characters)")
        self.ca.verify(certificate, now)  # refuse to store junk
        self.credentials[username] = StoredCredential(
            username=username,
            certificate=certificate,
            passphrase_hash=_hash_pass(passphrase),
            max_delegation_lifetime_s=max_delegation_lifetime_s,
        )

    def retrieve(
        self,
        username: str,
        passphrase: str,
        now: float,
        lifetime_s: float = 12 * 3600.0,
    ) -> Certificate:
        """Fetch a delegated proxy (``myproxy-logon``)."""
        stored = self.credentials.get(username)
        if stored is None:
            raise MyProxyError(f"no credential stored for {username!r}")
        if _hash_pass(passphrase) != stored.passphrase_hash:
            raise MyProxyError("bad passphrase")
        try:
            proxy = self.ca.delegate_proxy(
                stored.certificate,
                now,
                min(lifetime_s, stored.max_delegation_lifetime_s),
            )
        except CertificateError as exc:
            raise MyProxyError(f"stored credential unusable: {exc}") from exc
        self.delegations.append((now, username, proxy.serial))
        return proxy

    def destroy(self, username: str) -> None:
        if username not in self.credentials:
            raise MyProxyError(f"no credential stored for {username!r}")
        del self.credentials[username]

    def __contains__(self, username: str) -> bool:
        return username in self.credentials
