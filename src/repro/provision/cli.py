"""The ``gp-instance`` command-line interface (Fig. 1 / Sec. V-A).

Mirrors the paper's commands::

    $ gp-instance create -c galaxy.conf
    Created new instance: gpi-02156189
    $ gp-instance start gpi-02156189
    Starting instance gpi-02156189... done!
    $ gp-instance describe gpi-02156189
    $ gp-instance update -t newtopology.json gpi-02156189
    $ gp-instance stop gpi-02156189
    $ gp-instance terminate gpi-02156189

Because the cluster is simulated, the CLI persists each instance's
topology and status in a small JSON registry (``$GP_SIM_HOME`` or
``~/.gp-sim``) and deterministically replays the simulation for commands
that need a running world (``start`` fresh-deploys; ``update`` re-deploys
the stored topology, then applies the update).  Timings printed are
simulated seconds — the same numbers the benchmarks report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

from ..core.testbed import CloudTestbed
from .instance import GlobusProvision
from .topology import Topology, TopologyError


def state_home() -> Path:
    return Path(os.environ.get("GP_SIM_HOME", "~/.gp-sim")).expanduser()


def _registry_path() -> Path:
    return state_home() / "instances.json"


def load_registry() -> dict:
    path = _registry_path()
    if not path.exists():
        return {"next_id": 0x2156189, "instances": {}}
    return json.loads(path.read_text())


def save_registry(reg: dict) -> None:
    path = _registry_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(reg, indent=2))


def _load_topology(path: str) -> Topology:
    text = Path(path).read_text()
    if path.endswith(".json"):
        return Topology.from_json(text)
    return Topology.from_conf(text)


def _replay_start(topology: Topology, seed: int) -> tuple[GlobusProvision, str]:
    """Fresh world + deployed instance for commands needing a running cluster."""
    bed = CloudTestbed(seed=seed)
    gp = GlobusProvision(bed)
    gpi = gp.create(topology)

    def scenario():
        yield from gp.start(gpi.id)

    proc = bed.ctx.sim.process(scenario())
    bed.ctx.sim.run(until=proc)
    return gp, gpi.id


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_create(args: argparse.Namespace) -> int:
    try:
        topology = _load_topology(args.conf)
    except (OSError, TopologyError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    reg = load_registry()
    reg["next_id"] += 1
    gpi_id = f"gpi-{reg['next_id']:08x}"
    reg["instances"][gpi_id] = {
        "topology": topology.to_json(),
        "status": "New",
        "seed": args.seed,
    }
    save_registry(reg)
    print(f"Created new instance: {gpi_id}")
    return 0


def _require(reg: dict, gpi_id: str) -> Optional[dict]:
    entry = reg["instances"].get(gpi_id)
    if entry is None:
        print(f"error: no such instance {gpi_id}", file=sys.stderr)
    return entry


def cmd_start(args: argparse.Namespace) -> int:
    reg = load_registry()
    entry = _require(reg, args.instance)
    if entry is None:
        return 1
    if entry["status"] == "Stopped":
        entry["status"] = "Running"
        save_registry(reg)
        print(f"Resuming instance {args.instance}... done!")
        return 0
    if entry["status"] != "New":
        print(f"error: {args.instance} is {entry['status']}", file=sys.stderr)
        return 1
    print(f"Starting instance {args.instance}...", end="", flush=True)
    topology = Topology.from_json(entry["topology"])
    gp, live_id = _replay_start(topology, entry.get("seed", 0))
    gpi = gp.get(live_id)
    entry["status"] = "Running"
    entry["start_seconds"] = gpi.start_seconds
    entry["describe"] = gpi.describe()
    entry["describe"]["id"] = args.instance
    save_registry(reg)
    print(" done!")
    print(f"(simulated deployment time: {gpi.start_seconds / 60.0:.1f} minutes)")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    reg = load_registry()
    entry = _require(reg, args.instance)
    if entry is None:
        return 1
    doc = entry.get("describe", {"id": args.instance, "hosts": []})
    doc["state"] = entry["status"]
    print(json.dumps(doc, indent=2))
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    reg = load_registry()
    entry = _require(reg, args.instance)
    if entry is None:
        return 1
    if entry["status"] != "Running":
        print(f"error: {args.instance} is {entry['status']}", file=sys.stderr)
        return 1
    try:
        new_topology = _load_topology(args.topology)
    except (OSError, TopologyError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    old_topology = Topology.from_json(entry["topology"])
    gp, live_id = _replay_start(old_topology, entry.get("seed", 0))
    bed = gp.bed
    holder = {}

    def scenario():
        holder["report"] = yield from gp.update(live_id, new_topology)

    proc = bed.ctx.sim.process(scenario())
    try:
        bed.ctx.sim.run(until=proc)
    except TopologyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = holder["report"]
    entry["topology"] = new_topology.to_json()
    entry["describe"] = gp.get(live_id).describe()
    entry["describe"]["id"] = args.instance
    save_registry(reg)
    print(f"Updating instance {args.instance}... done!")
    print(
        f"(added: {report.added or '-'}  removed: {report.removed or '-'}  "
        f"retyped: {report.retyped or '-'}  simulated time: {report.seconds:.0f}s)"
    )
    return 0


def _set_status(args: argparse.Namespace, allowed: tuple[str, ...], new_status: str,
                message: str) -> int:
    reg = load_registry()
    entry = _require(reg, args.instance)
    if entry is None:
        return 1
    if entry["status"] not in allowed:
        print(f"error: {args.instance} is {entry['status']}", file=sys.stderr)
        return 1
    entry["status"] = new_status
    save_registry(reg)
    print(message.format(args.instance))
    return 0


def cmd_stop(args: argparse.Namespace) -> int:
    return _set_status(args, ("Running",), "Stopped", "Stopping instance {}... done!")


def cmd_terminate(args: argparse.Namespace) -> int:
    return _set_status(
        args, ("New", "Running", "Stopped"), "Terminated",
        "Terminating instance {}... done!",
    )


def cmd_ssh(args: argparse.Namespace) -> int:
    """Replay the instance and run one command on a host (Fig. 1 step 5)."""
    reg = load_registry()
    entry = _require(reg, args.instance)
    if entry is None:
        return 1
    if entry["status"] != "Running":
        print(f"error: {args.instance} is {entry['status']}", file=sys.stderr)
        return 1
    topology = Topology.from_json(entry["topology"])
    gp, live_id = _replay_start(topology, entry.get("seed", 0))
    from ..cluster.shell import SSHError

    try:
        shell = gp.get(live_id).deployment.ssh(args.host, args.user)
    except (SSHError, Exception) as exc:  # DeploymentError for bad host
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = shell.run(args.command)
    if result.stdout:
        print(result.stdout)
    return result.exit_code


def cmd_list(args: argparse.Namespace) -> int:
    reg = load_registry()
    if not reg["instances"]:
        print("(no instances)")
        return 0
    for gpi_id, entry in sorted(reg["instances"].items()):
        print(f"{gpi_id}\t{entry['status']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gp-instance",
        description="Globus Provision (simulated) instance management",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("create", help="create an instance from a topology file")
    p.add_argument("-c", "--conf", required=True, help="galaxy.conf or topology JSON")
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.set_defaults(fn=cmd_create)

    p = sub.add_parser("start", help="start (deploy) an instance")
    p.add_argument("instance")
    p.set_defaults(fn=cmd_start)

    p = sub.add_parser("describe", help="show hosts and status")
    p.add_argument("instance")
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("update", help="apply a modified topology")
    p.add_argument("-t", "--topology", required=True, help="new topology file")
    p.add_argument("instance")
    p.set_defaults(fn=cmd_update)

    p = sub.add_parser("stop", help="suspend (stop paying for idle resources)")
    p.add_argument("instance")
    p.set_defaults(fn=cmd_stop)

    p = sub.add_parser("terminate", help="release all resources (final)")
    p.add_argument("instance")
    p.set_defaults(fn=cmd_terminate)

    p = sub.add_parser("ssh", help="run a command on a host via SSH")
    p.add_argument("instance")
    p.add_argument("host", help="node name, e.g. simple-galaxy-condor")
    p.add_argument("-u", "--user", default="user1")
    p.add_argument("-c", "--command", default="hostname")
    p.set_defaults(fn=cmd_ssh)

    p = sub.add_parser("list", help="list known instances")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
