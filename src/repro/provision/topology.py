"""GP topologies: the declarative deployment specification (Fig. 3).

A topology names one or more *domains*, each with users, services
(GridFTP, Condor, Galaxy, the CRData add-on), a worker count, and a
Globus Online endpoint name, plus EC2 credentials/AMI/instance-type and
Globus Online settings.  Both the paper's INI format (``galaxy.conf``)
and a JSON form (``gp-instance-update -t newtopology.json``) parse to the
same model; topologies diff structurally to drive runtime updates
(Sec. III-C).
"""

from __future__ import annotations

import configparser
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from ..cloud.instance_types import resolve


class TopologyError(Exception):
    pass


@dataclass(frozen=True)
class DomainSpec:
    """One domain of hosts and users."""

    name: str
    users: tuple[str, ...] = ()
    nfs: bool = True
    gridftp: bool = False
    condor: bool = False
    galaxy: bool = False
    crdata: bool = False
    cluster_nodes: int = 0
    go_endpoint: Optional[str] = None
    #: explicit per-worker instance types; pads with the EC2 default
    worker_instance_types: tuple[str, ...] = ()
    #: data-sharing backend: nfs | object_store | striped_fs | local_staging
    storage: str = "nfs"
    #: dedicated data nodes for striped_fs (0 = backend default)
    storage_nodes: int = 0

    def __post_init__(self) -> None:
        from ..storage import STORAGE_BACKENDS

        if self.cluster_nodes < 0:
            raise TopologyError("cluster-nodes must be >= 0")
        if self.cluster_nodes and not self.condor:
            raise TopologyError("cluster-nodes requires condor: yes")
        if self.crdata and not self.galaxy:
            raise TopologyError("crdata tools require galaxy: yes")
        if self.go_endpoint is not None and "#" not in self.go_endpoint:
            raise TopologyError(
                f"go-endpoint {self.go_endpoint!r} must be 'owner#name'"
            )
        if self.storage not in STORAGE_BACKENDS:
            raise TopologyError(
                f"unknown storage backend {self.storage!r}; "
                f"known: {list(STORAGE_BACKENDS)}"
            )
        if self.storage_nodes < 0:
            raise TopologyError("storage-nodes must be >= 0")
        if self.storage_nodes and self.storage != "striped_fs":
            raise TopologyError("storage-nodes requires storage: striped_fs")

    def stripe_data_nodes(self) -> int:
        """Concrete data-node count for striped_fs (0 for other backends)."""
        if self.storage != "striped_fs":
            return 0
        from .. import calibration

        return self.storage_nodes or calibration.STORAGE_STRIPE_DEFAULT_NODES

    def worker_types(self, default_type: str) -> tuple[str, ...]:
        explicit = tuple(self.worker_instance_types)
        if len(explicit) > self.cluster_nodes:
            raise TopologyError(
                "more worker-instance-types than cluster-nodes"
            )
        return explicit + (default_type,) * (self.cluster_nodes - len(explicit))


@dataclass(frozen=True)
class EC2Spec:
    keypair: str = "gp-key"
    keyfile: str = "~/.ec2/gp-key.pem"
    ami: str = "ami-b12ee0d8"
    instance_type: str = "t1.micro"

    def __post_init__(self) -> None:
        resolve(self.instance_type)  # raises KeyError for unknown types


@dataclass(frozen=True)
class GlobusOnlineSpec:
    ssh_key: str = "~/.ssh/id_rsa"


@dataclass(frozen=True)
class NodeSpec:
    """One host GP will create: name, roles, run-list, instance type."""

    name: str
    domain: str
    roles: frozenset[str]
    run_list: tuple[str, ...]
    instance_type: str


@dataclass(frozen=True)
class Topology:
    domains: tuple[DomainSpec, ...]
    ec2: EC2Spec = field(default_factory=EC2Spec)
    globusonline: Optional[GlobusOnlineSpec] = field(default_factory=GlobusOnlineSpec)

    def __post_init__(self) -> None:
        if not self.domains:
            raise TopologyError("a topology needs at least one domain")
        names = [d.name for d in self.domains]
        if len(names) != len(set(names)):
            raise TopologyError("duplicate domain names")

    def domain(self, name: str) -> DomainSpec:
        for d in self.domains:
            if d.name == name:
                return d
        raise TopologyError(f"no domain {name!r}")

    # -- node planning ----------------------------------------------------------
    def node_plan(self) -> list[NodeSpec]:
        """Derive the concrete hosts (paper Fig. 2's architecture)."""
        plan: list[NodeSpec] = []
        default_type = self.ec2.instance_type
        for dom in self.domains:
            if dom.nfs:
                run_list = ["globus::common", "globus::nfs-server", "globus::nis-server"]
                if dom.galaxy:
                    # the paper: galaxy-globus-common runs on the NFS/NIS
                    # server when the domain has one
                    run_list.append("galaxy::galaxy-globus-common")
                plan.append(
                    NodeSpec(
                        name=f"{dom.name}-server",
                        domain=dom.name,
                        roles=frozenset({"nfs", "nis"}),
                        run_list=tuple(run_list),
                        instance_type=default_type,
                    )
                )
            for i in range(1, dom.stripe_data_nodes() + 1):
                plan.append(
                    NodeSpec(
                        name=f"{dom.name}-stripe-d{i}",
                        domain=dom.name,
                        roles=frozenset({"stripe-data"}),
                        run_list=("globus::common", "globus::parallel-fs-data"),
                        instance_type=default_type,
                    )
                )
            if dom.gridftp:
                plan.append(
                    NodeSpec(
                        name=f"{dom.name}-gridftp",
                        domain=dom.name,
                        roles=frozenset({"gridftp"}),
                        run_list=("globus::common", "globus::gridftp", "globus::myproxy"),
                        instance_type=default_type,
                    )
                )
            if dom.galaxy:
                run_list = ["globus::common"]
                if not dom.nfs:
                    run_list.append("galaxy::galaxy-globus-common")
                if dom.condor:
                    run_list.append("globus::condor-head")
                run_list.append("galaxy::galaxy-globus")
                if dom.crdata:
                    run_list.append("galaxy::galaxy-globus-crdata")
                roles = {"galaxy"}
                if dom.condor:
                    roles.add("condor-head")
                plan.append(
                    NodeSpec(
                        name=f"{dom.name}-galaxy-condor",
                        domain=dom.name,
                        roles=frozenset(roles),
                        run_list=tuple(run_list),
                        instance_type=default_type,
                    )
                )
            for i, itype in enumerate(dom.worker_types(default_type), start=1):
                run_list = ["globus::common", "globus::condor-worker"]
                if dom.crdata:
                    run_list.append("galaxy::galaxy-globus-crdata")
                plan.append(
                    NodeSpec(
                        name=f"{dom.name}-condor-wn{i}",
                        domain=dom.name,
                        roles=frozenset({"condor-worker"}),
                        run_list=tuple(run_list),
                        instance_type=itype,
                    )
                )
        return plan

    def all_users(self) -> set[str]:
        return {u for d in self.domains for u in d.users}

    # -- serialisation --------------------------------------------------------------
    def to_doc(self) -> dict:
        """JSON-safe dict form (tuples become lists); feeds both
        :meth:`to_json` and the provenance bundle's topology section."""
        doc = {
            "domains": [asdict(d) for d in self.domains],
            "ec2": asdict(self.ec2),
            "globusonline": asdict(self.globusonline) if self.globusonline else None,
        }
        return json.loads(json.dumps(doc))

    def to_json(self) -> str:
        return json.dumps(self.to_doc(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopologyError(f"bad JSON topology: {exc}") from exc
        try:
            domains = tuple(
                DomainSpec(
                    **{
                        **d,
                        "users": tuple(d.get("users", ())),
                        "worker_instance_types": tuple(d.get("worker_instance_types", ())),
                    }
                )
                for d in doc["domains"]
            )
            ec2 = EC2Spec(**doc.get("ec2", {}))
            go_doc = doc.get("globusonline")
            go = GlobusOnlineSpec(**go_doc) if go_doc is not None else None
        except (KeyError, TypeError) as exc:
            raise TopologyError(f"bad JSON topology: {exc}") from exc
        return cls(domains=domains, ec2=ec2, globusonline=go)

    @classmethod
    def from_conf(cls, text: str) -> "Topology":
        """Parse the paper's INI format (Fig. 3)."""
        parser = configparser.ConfigParser()
        try:
            parser.read_string(text)
        except configparser.Error as exc:
            raise TopologyError(f"bad topology file: {exc}") from exc
        if "general" not in parser or "domains" not in parser["general"]:
            raise TopologyError("topology needs [general] with a 'domains' entry")
        domain_names = parser["general"]["domains"].split()
        domains = []
        for name in domain_names:
            section = f"domain-{name}"
            if section not in parser:
                raise TopologyError(f"missing section [{section}]")
            sec = parser[section]
            domains.append(
                DomainSpec(
                    name=name,
                    users=tuple(sec.get("users", "").split()),
                    nfs=sec.getboolean("nfs", fallback=True),
                    gridftp=sec.getboolean("gridftp", fallback=False),
                    condor=sec.getboolean("condor", fallback=False),
                    galaxy=sec.getboolean("galaxy", fallback=False),
                    crdata=sec.getboolean("crdata", fallback=False),
                    cluster_nodes=sec.getint("cluster-nodes", fallback=0),
                    go_endpoint=sec.get("go-endpoint", fallback=None),
                    worker_instance_types=tuple(
                        sec.get("worker-instance-types", "").split()
                    ),
                    storage=sec.get("storage", fallback="nfs"),
                    storage_nodes=sec.getint("storage-nodes", fallback=0),
                )
            )
        ec2_kwargs = {}
        if "ec2" in parser:
            sec = parser["ec2"]
            for key, attr in [
                ("keypair", "keypair"), ("keyfile", "keyfile"),
                ("ami", "ami"), ("instance-type", "instance_type"),
            ]:
                if key in sec:
                    ec2_kwargs[attr] = sec[key]
        go = None
        if "globusonline" in parser:
            go = GlobusOnlineSpec(
                ssh_key=parser["globusonline"].get("ssh-key", "~/.ssh/id_rsa")
            )
        return cls(domains=tuple(domains), ec2=EC2Spec(**ec2_kwargs), globusonline=go)


# ---------------------------------------------------------------------------
# Topology diffing (Sec. III-C: dynamic reconfiguration)
# ---------------------------------------------------------------------------


@dataclass
class TopologyDiff:
    """What must change to take a running instance to the new topology."""

    added_nodes: list[NodeSpec] = field(default_factory=list)
    removed_nodes: list[str] = field(default_factory=list)
    #: node name -> (old type, new type); realised as stop + relaunch
    type_changes: dict[str, tuple[str, str]] = field(default_factory=dict)
    added_users: list[str] = field(default_factory=list)
    removed_users: list[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (
            self.added_nodes or self.removed_nodes or self.type_changes
            or self.added_users or self.removed_users
        )


def diff_topologies(old: Topology, new: Topology) -> TopologyDiff:
    """Structural diff; raises for unsupported reshaping (service toggles)."""
    old_plan = {n.name: n for n in old.node_plan()}
    new_plan = {n.name: n for n in new.node_plan()}
    diff = TopologyDiff()
    for name, spec in new_plan.items():
        if name not in old_plan:
            diff.added_nodes.append(spec)
        else:
            old_spec = old_plan[name]
            if old_spec.roles != spec.roles or old_spec.run_list != spec.run_list:
                raise TopologyError(
                    f"changing roles/run-list of existing node {name!r} is not "
                    "supported at runtime; terminate and redeploy"
                )
            if old_spec.instance_type != spec.instance_type:
                diff.type_changes[name] = (old_spec.instance_type, spec.instance_type)
    for name in old_plan:
        if name not in new_plan:
            diff.removed_nodes.append(name)
    diff.added_users = sorted(new.all_users() - old.all_users())
    diff.removed_users = sorted(old.all_users() - new.all_users())
    return diff


def with_extra_worker(topology: Topology, domain: str, instance_type: str) -> Topology:
    """Convenience used by the use case: add one worker of a given type."""
    doms = []
    for d in topology.domains:
        if d.name == domain:
            types = d.worker_types(topology.ec2.instance_type)
            doms.append(
                replace(
                    d,
                    cluster_nodes=d.cluster_nodes + 1,
                    worker_instance_types=types + (instance_type,),
                )
            )
        else:
            doms.append(d)
    return replace(topology, domains=tuple(doms))


def with_worker_count(
    topology: Topology, domain: str, count: int, extra_type: str
) -> Topology:
    """Resize a domain's worker pool to ``count`` nodes.

    Growing appends workers of ``extra_type`` (the elastic-provisioner
    path: the paper's scale-up adds a c1.medium); shrinking drops the
    most recently added workers first, so the base pool survives.
    """
    if count < 0:
        raise TopologyError("worker count must be >= 0")
    doms = []
    for d in topology.domains:
        if d.name != domain:
            doms.append(d)
            continue
        types = d.worker_types(topology.ec2.instance_type)
        if count >= len(types):
            types = types + (extra_type,) * (count - len(types))
        else:
            types = types[:count]
        doms.append(
            replace(d, cluster_nodes=count, worker_instance_types=types)
        )
    return replace(topology, domains=tuple(doms))


#: the paper's Fig. 3 example, verbatim
PAPER_GALAXY_CONF = """\
[general]
domains: simple

[domain-simple]
users: user1 user2
gridftp: yes
condor: yes
cluster-nodes: 2
galaxy: yes
go-endpoint: cvrg#galaxy

[ec2]
keypair: gp-key
keyfile: ~/.ec2/gp-key.pem
ami: ami-b12ee0d8
instance-type: t1.micro

[globusonline]
ssh-key: ~/.ssh/id_rsa
"""
