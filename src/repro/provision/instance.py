"""GP instances: the lifecycle facade behind the ``gp-instance-*`` commands.

Mirrors Fig. 1's workflow: create (from a topology file) -> start ->
describe / SSH -> update (modify topology) -> stop/resume -> terminate.
A *GP instance* is the collection of EC2 hosts GP manages as one unit;
its id looks like the paper's ``gpi-02156188``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .deployer import Deployer, Deployment, UpdateReport
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from ..core.testbed import CloudTestbed


class GPError(Exception):
    pass


class GPInstanceState(str, enum.Enum):
    NEW = "New"
    STARTING = "Starting"
    RUNNING = "Running"
    UPDATING = "Updating"
    STOPPED = "Stopped"
    TERMINATED = "Terminated"


@dataclass
class GPInstance:
    id: str
    topology: Topology
    state: GPInstanceState = GPInstanceState.NEW
    deployment: Optional[Deployment] = None
    start_seconds: Optional[float] = None
    updates: list[UpdateReport] = field(default_factory=list)

    def describe(self) -> dict:
        """The document ``gp-instance-describe`` prints."""
        hosts = []
        if self.deployment is not None:
            for node in self.deployment.nodes.values():
                hosts.append(
                    {
                        "name": node.name,
                        "instance_type": node.instance_type,
                        "hostname": node.hostname,
                        "state": node.instance.state.value,
                        "roles": sorted(node.roles),
                    }
                )
        doc = {
            "id": self.id,
            "state": self.state.value,
            "hosts": sorted(hosts, key=lambda h: h["name"]),
        }
        if self.deployment is not None and self.state == GPInstanceState.RUNNING:
            galaxy_host = next(
                (h for h in doc["hosts"] if "galaxy" in h["roles"]), None
            )
            if galaxy_host is not None:
                doc["galaxy_url"] = f"http://{galaxy_host['hostname']}:8080"
        return doc


class GlobusProvision:
    """The gp command set, bound to one testbed."""

    def __init__(self, testbed: "CloudTestbed") -> None:
        self.bed = testbed
        self.deployer = Deployer(testbed)
        self.instances: dict[str, GPInstance] = {}
        self._counter = 0x2156188  # homage to the paper's gpi-02156188

    # -- commands -------------------------------------------------------------
    def create(self, topology: Topology) -> GPInstance:
        """``gp-instance-create -c galaxy.conf``"""
        self._counter += 1
        gpi = GPInstance(id=f"gpi-{self._counter:08x}", topology=topology)
        self.instances[gpi.id] = gpi
        return gpi

    def start(self, instance_id: str):
        """``gp-instance-start`` — a simulation process."""
        gpi = self.get(instance_id)
        if gpi.state == GPInstanceState.STOPPED:
            yield from self._resume(gpi)
            return gpi
        if gpi.state != GPInstanceState.NEW:
            raise GPError(f"{gpi.id} is {gpi.state.value}; cannot start")
        gpi.state = GPInstanceState.STARTING
        t0 = self.bed.ctx.now
        try:
            gpi.deployment = yield from self.deployer.deploy(gpi.topology)
        except Exception:
            gpi.state = GPInstanceState.NEW
            raise
        gpi.start_seconds = self.bed.ctx.now - t0
        gpi.state = GPInstanceState.RUNNING
        return gpi

    def _resume(self, gpi: GPInstance):
        gpi.state = GPInstanceState.STARTING
        yield from self.deployer.resume(gpi.deployment)
        gpi.state = GPInstanceState.RUNNING

    def describe(self, instance_id: str) -> dict:
        return self.get(instance_id).describe()

    def update(self, instance_id: str, new_topology: Topology):
        """``gp-instance-update -t newtopology.json`` — a simulation process."""
        gpi = self.get(instance_id)
        if gpi.state != GPInstanceState.RUNNING:
            raise GPError(f"{gpi.id} is {gpi.state.value}; cannot update")
        gpi.state = GPInstanceState.UPDATING
        try:
            report = yield from self.deployer.update(gpi.deployment, new_topology)
        finally:
            gpi.state = GPInstanceState.RUNNING
        gpi.topology = new_topology
        gpi.updates.append(report)
        return report

    def stop(self, instance_id: str) -> None:
        """``gp-instance-stop`` — suspend to avoid paying for idle resources."""
        gpi = self.get(instance_id)
        if gpi.state != GPInstanceState.RUNNING:
            raise GPError(f"{gpi.id} is {gpi.state.value}; cannot stop")
        self.deployer.stop(gpi.deployment)
        gpi.state = GPInstanceState.STOPPED

    def terminate(self, instance_id: str) -> None:
        """``gp-instance-terminate`` — releases everything; not resumable."""
        gpi = self.get(instance_id)
        if gpi.state == GPInstanceState.TERMINATED:
            return
        if gpi.deployment is not None:
            self.deployer.terminate(gpi.deployment)
        gpi.state = GPInstanceState.TERMINATED

    def get(self, instance_id: str) -> GPInstance:
        try:
            return self.instances[instance_id]
        except KeyError:
            raise GPError(f"no such instance {instance_id!r}") from None

    def list_instances(self) -> list[GPInstance]:
        return sorted(self.instances.values(), key=lambda g: g.id)
