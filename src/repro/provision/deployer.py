"""The GP deployment engine: topology -> running cluster, plus updates.

``Deployer.deploy`` is a simulation process that launches EC2 instances
for every planned node, converges each node's Chef run-list in parallel,
then wires the services together: NFS mounts, NIS users + certificates,
the Condor pool, GridFTP servers with a Globus Online endpoint, and the
Galaxy application with the Globus Transfer and CRData tools installed.

``Deployer.update`` applies a topology diff to a *running* deployment —
adding/removing workers and users and changing worker instance types
within minutes, the capability Sec. III-C contrasts with CloudMan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..cluster import ClusterNode, CondorPool, NFSServer, NISDomain
from ..galaxy import CondorJobRunner, GalaxyApp, GalaxyConfig, LocalJobRunner
from ..galaxy.upload_tools import install_upload_tools
from ..storage import SharedStorageBackend, make_backend

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from ..core.testbed import CloudTestbed
from ..crdata import install_crdata_tools
from ..tools_globus import install_globus_tools
from ..transfer import GridFTPServer, TransferClient
from ..transfer.api import GlobusAPIError
from .topology import (
    DomainSpec,
    NodeSpec,
    Topology,
    TopologyDiff,
    TopologyError,
    diff_topologies,
)


class DeploymentError(Exception):
    pass


@dataclass
class DomainRuntime:
    """Live services of one deployed domain."""

    spec: DomainSpec
    nfs: Optional[NFSServer] = None
    storage: Optional[SharedStorageBackend] = None
    nis: Optional[NISDomain] = None
    pool: Optional[CondorPool] = None
    galaxy: Optional[GalaxyApp] = None
    endpoint_name: Optional[str] = None
    gridftp: Optional[GridFTPServer] = None


@dataclass
class Deployment:
    """Runtime state of one GP instance."""

    topology: Topology
    nodes: dict[str, ClusterNode] = field(default_factory=dict)
    domains: dict[str, DomainRuntime] = field(default_factory=dict)
    deploy_seconds: float = 0.0
    state: str = "running"          # running | stopped | terminated

    # -- single-domain conveniences (the paper's topologies have one) -------
    def _single(self) -> DomainRuntime:
        if len(self.domains) != 1:
            raise DeploymentError("deployment has multiple domains; address one")
        return next(iter(self.domains.values()))

    @property
    def galaxy(self) -> GalaxyApp:
        app = self._single().galaxy
        if app is None:
            raise DeploymentError("no Galaxy in this deployment")
        return app

    @property
    def pool(self) -> CondorPool:
        pool = self._single().pool
        if pool is None:
            raise DeploymentError("no Condor pool in this deployment")
        return pool

    @property
    def endpoint_name(self) -> str:
        name = self._single().endpoint_name
        if name is None:
            raise DeploymentError("no Globus endpoint in this deployment")
        return name

    def node(self, name: str) -> ClusterNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise DeploymentError(f"no node {name!r}") from None

    def worker_nodes(self, domain: Optional[str] = None) -> list[ClusterNode]:
        return [
            n for n in self.nodes.values()
            if n.has_role("condor-worker")
            and (domain is None or n.instance.tags.get("gp-domain") == domain)
        ]

    def instance_ids(self) -> list[str]:
        return [n.instance.id for n in self.nodes.values()]

    def ssh(self, node_name: str, username: str, keypair: Optional[str] = None):
        """Open a shell on a host (Fig. 1 step 5).

        ``keypair`` must match the keypair the instance was launched with
        (pass ``None`` to use it implicitly, as gp's wrapper does).
        """
        from ..cluster.shell import RemoteShell, SSHError

        node = self.node(node_name)
        if not node.instance.is_usable():
            raise SSHError(f"{node_name} is {node.instance.state.value}")
        if keypair is not None and keypair != node.instance.keypair:
            raise SSHError(f"Permission denied (publickey) for keypair {keypair!r}")
        domain = node.instance.tags.get("gp-domain")
        runtime = self.domains.get(domain)
        pool = runtime.pool if runtime is not None else None
        return RemoteShell(node, username, pool=pool)


@dataclass
class UpdateReport:
    diff: TopologyDiff
    seconds: float
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    retyped: list[str] = field(default_factory=list)


class Deployer:
    """Executes deployments against a :class:`CloudTestbed`."""

    def __init__(self, testbed: "CloudTestbed") -> None:
        self.bed = testbed
        self.ctx = testbed.ctx

    # ------------------------------------------------------------------ deploy
    def deploy(self, topology: Topology):
        """Simulation process; returns a :class:`Deployment`."""
        start = self.ctx.now
        if topology.ec2.keypair not in self.bed.ec2.keypairs:
            self.bed.ec2.create_keypair(topology.ec2.keypair)
        deployment = Deployment(topology=topology)
        plan = topology.node_plan()
        if not plan:
            raise DeploymentError("topology plans no nodes")
        # provenance: the full deployment spec rides in the span log so a
        # bundle can reconstruct what was deployed, not just when
        self.ctx.obs.annotate(
            "topology", topology=topology.to_doc(), nodes=len(plan)
        )
        procs = [
            self.ctx.sim.process(
                self._provision_node(deployment, spec), name=f"provision-{spec.name}"
            )
            for spec in plan
        ]
        yield self.ctx.sim.all_of(procs)
        self._wire(deployment)
        deployment.deploy_seconds = self.ctx.now - start
        self.ctx.log(
            "gp", "deployed",
            nodes=len(deployment.nodes), seconds=deployment.deploy_seconds,
        )
        return deployment

    #: launch retries on transient EC2 capacity errors
    LAUNCH_ATTEMPTS = 4
    LAUNCH_RETRY_BACKOFF_S = 15.0

    def _provision_node(self, deployment: Deployment, spec: NodeSpec):
        from ..cloud import InsufficientCapacity

        instance = None
        for attempt in range(1, self.LAUNCH_ATTEMPTS + 1):
            try:
                (instance,) = self.bed.ec2.run_instances(
                    deployment.topology.ec2.ami,
                    spec.instance_type,
                    keypair=deployment.topology.ec2.keypair,
                    tags={"gp-node": spec.name, "gp-domain": spec.domain},
                )
                break
            except InsufficientCapacity:
                if attempt == self.LAUNCH_ATTEMPTS:
                    raise DeploymentError(
                        f"could not launch {spec.name}: EC2 capacity errors "
                        f"persisted across {attempt} attempts"
                    )
                yield self.ctx.sim.timeout(self.LAUNCH_RETRY_BACKOFF_S * attempt)
        yield self.bed.ec2.when_running(instance.id)
        node = ClusterNode.create(spec.name, instance, roles=set(spec.roles))
        dom = deployment.topology.domain(spec.domain)
        node.chef.attributes.set(
            "normal", {"go_endpoint": dom.go_endpoint or ""}
        )
        yield from self.bed.chef.converge(
            node.chef,
            spec.run_list,
            cause=self.bed.ec2.boot_span_id(instance.id),
        )
        deployment.nodes[spec.name] = node
        return node

    # ------------------------------------------------------------------ wiring
    def _wire(self, deployment: Deployment) -> None:
        for dom in deployment.topology.domains:
            runtime = DomainRuntime(spec=dom)
            deployment.domains[dom.name] = runtime
            nodes = [
                n for n in deployment.nodes.values()
                if n.instance.tags.get("gp-domain") == dom.name
            ]
            self._wire_nfs_nis(dom, runtime, nodes)
            self._wire_condor(dom, runtime, nodes)
            self._wire_gridftp(dom, runtime, nodes)
            self._wire_galaxy(dom, runtime, nodes)

    def _wire_nfs_nis(self, dom: DomainSpec, runtime: DomainRuntime, nodes) -> None:
        server_node = next((n for n in nodes if n.has_role("nfs")), None)
        if dom.nfs and server_node is not None:
            backend = make_backend(dom.storage, data_nodes=dom.stripe_data_nodes())
            runtime.storage = backend
            runtime.nfs = backend.build_server(server_node)
            for node in nodes:
                if node is not server_node and backend.should_mount(node):
                    node.vfs.mount(runtime.nfs, at="/home")
        runtime.nis = NISDomain(dom.name)
        for username in dom.users:
            runtime.nis.add_user(username)
            self._provision_user_credentials(username)
        for node in nodes:
            node.nis.bind(runtime.nis)

    def _provision_user_credentials(self, username: str) -> None:
        """GP 'provisions the EC2 cluster with each user's GO credentials'."""
        self.bed.ensure_go_user(username)
        if username not in self.bed.myproxy:
            cert = self.bed.ca.issue_user_cert(username, now=self.ctx.now)
            self.bed.myproxy.store(
                username, cert, f"{username}-gp-pass", now=self.ctx.now
            )

    def _wire_condor(self, dom: DomainSpec, runtime: DomainRuntime, nodes) -> None:
        if not dom.condor:
            return
        runtime.pool = CondorPool(self.ctx)
        for node in nodes:
            if node.has_role("condor-worker"):
                startd = runtime.pool.add_node(node)
                node.services["condor-startd"] = startd

    def _wire_gridftp(self, dom: DomainSpec, runtime: DomainRuntime, nodes) -> None:
        if not dom.gridftp:
            return
        gridftp_node = next((n for n in nodes if n.has_role("gridftp")), None)
        if gridftp_node is None:
            raise DeploymentError(f"domain {dom.name}: gridftp requested but no node")
        host_cert = self.bed.ca.issue_host_cert(gridftp_node.hostname, self.ctx.now)
        server = GridFTPServer(
            ctx=self.ctx,
            hostname=gridftp_node.hostname,
            site="ec2",
            fs=gridftp_node.vfs,
            host_cert=host_cert,
        )
        runtime.gridftp = server
        gridftp_node.services["gridftp"] = server
        if dom.go_endpoint:
            owner = dom.go_endpoint.split("#", 1)[0]
            self.bed.ensure_go_user(owner)
            if dom.go_endpoint not in self.bed.go.endpoints:
                self.bed.go.create_endpoint(dom.go_endpoint, [server], public=True)
            else:
                self.bed.go.endpoints[dom.go_endpoint].servers.insert(0, server)
            runtime.endpoint_name = dom.go_endpoint

    def _wire_galaxy(self, dom: DomainSpec, runtime: DomainRuntime, nodes) -> None:
        if not dom.galaxy:
            return
        head = next((n for n in nodes if n.has_role("galaxy")), None)
        if head is None:
            raise DeploymentError(f"domain {dom.name}: galaxy requested but no node")
        if dom.condor and runtime.pool is not None and runtime.pool.total_slots:
            runner = CondorJobRunner(self.ctx, runtime.pool)
        else:
            runner = LocalJobRunner(
                self.ctx,
                cpu_factor=head.cpu_factor,
                io_factor=head.io_factor,
                cores=head.cores,
                name=head.name,
            )
        app = GalaxyApp(
            self.ctx,
            fs=head.vfs,
            config=GalaxyConfig(file_path="/home/galaxy/database/files"),
            runner=runner,
            services={"galaxy_endpoint": runtime.endpoint_name},
        )
        app.jobs.services["transfer_client_factory"] = self._make_client_factory(app)
        app.jobs.services["galaxy_fs"] = app.fs
        app.jobs.services["galaxy_config"] = app.config
        # non-NFS backends charge explicit stage-in/out around each job
        app.jobs.storage = runtime.storage
        app.jobs.services["storage"] = runtime.storage
        # the researcher's workstation, reachable by the stock upload tools
        app.jobs.services["user_workstation_fs"] = getattr(
            self.bed, "laptop_fs", None
        )
        head.services["galaxy"] = app
        runtime.galaxy = app
        install_upload_tools(app.toolbox)
        install_globus_tools(app.toolbox)
        if dom.crdata:
            install_crdata_tools(app.toolbox)
        # Galaxy accounts mirror the topology users; the paper requires the
        # Galaxy username to match the Globus Online username.
        for username in dom.users:
            user = app.create_user(username)
            user.globus_username = username

    def _make_client_factory(self, app: GalaxyApp):
        def factory(galaxy_username: str) -> TransferClient:
            user = app.users.get(galaxy_username)
            go_name = (
                user.globus_username if user and user.globus_username else galaxy_username
            )
            try:
                return TransferClient(self.bed.go, go_name)
            except GlobusAPIError:
                raise
        return factory

    # ------------------------------------------------------------------ update
    def update(self, deployment: Deployment, new_topology: Topology):
        """Simulation process applying a topology update (Sec. III-C)."""
        if deployment.state != "running":
            raise DeploymentError(f"cannot update a {deployment.state} deployment")
        start = self.ctx.now
        diff = diff_topologies(deployment.topology, new_topology)
        report = UpdateReport(diff=diff, seconds=0.0)
        self.ctx.obs.annotate(
            "topology-update",
            topology=new_topology.to_doc(),
            added=[n.name for n in diff.added_nodes],
            removed=list(diff.removed_nodes),
            retyped=sorted(diff.type_changes),
        )
        for name in list(diff.type_changes) + list(diff.removed_nodes):
            node = deployment.nodes.get(name)
            if node is not None and (node.has_role("galaxy") or node.has_role("nfs")):
                raise TopologyError(
                    f"runtime changes to the {name!r} node are not supported; "
                    "stop the instance or redeploy"
                )
        procs = []
        for spec in diff.added_nodes:
            procs.append(
                self.ctx.sim.process(
                    self._add_node(deployment, spec), name=f"add-{spec.name}"
                )
            )
        for name in diff.removed_nodes:
            procs.append(
                self.ctx.sim.process(
                    self._remove_node(deployment, name), name=f"remove-{name}"
                )
            )
        for name, (_old, new_type) in diff.type_changes.items():
            procs.append(
                self.ctx.sim.process(
                    self._retype_node(deployment, name, new_type),
                    name=f"retype-{name}",
                )
            )
        if procs:
            yield self.ctx.sim.all_of(procs)
        self._apply_user_changes(deployment, diff)
        deployment.topology = new_topology
        report.added = [s.name for s in diff.added_nodes]
        report.removed = list(diff.removed_nodes)
        report.retyped = list(diff.type_changes)
        report.seconds = self.ctx.now - start
        self.ctx.log("gp", "updated", seconds=report.seconds,
                     added=report.added, removed=report.removed,
                     retyped=report.retyped)
        return report

    def _runtime_for(self, deployment: Deployment, domain: str) -> DomainRuntime:
        try:
            return deployment.domains[domain]
        except KeyError:
            raise DeploymentError(f"no such domain {domain!r}") from None

    def _join_domain(self, deployment: Deployment, node: ClusterNode, domain: str) -> None:
        runtime = self._runtime_for(deployment, domain)
        if (
            runtime.nfs is not None
            and not node.has_role("nfs")
            and (runtime.storage is None or runtime.storage.should_mount(node))
        ):
            node.vfs.mount(runtime.nfs, at="/home")
        if runtime.nis is not None:
            node.nis.bind(runtime.nis)
        if runtime.pool is not None and node.has_role("condor-worker"):
            node.services["condor-startd"] = runtime.pool.add_node(node)

    def _add_node(self, deployment: Deployment, spec: NodeSpec):
        node = yield from self._provision_node(deployment, spec)
        self._join_domain(deployment, node, spec.domain)
        return node

    def _remove_node(self, deployment: Deployment, name: str, drain: bool = True):
        node = deployment.node(name)
        domain = node.instance.tags.get("gp-domain", node.name.split("-")[0])
        runtime = self._runtime_for(deployment, domain)
        if runtime.pool is not None and name in runtime.pool.startds:
            yield runtime.pool.remove_machine(name, drain=drain)
        self.bed.ec2.terminate_instances([node.instance.id])
        del deployment.nodes[name]
        return name

    def _retype_node(self, deployment: Deployment, name: str, new_type: str):
        """Replace a node with one of a different instance type."""
        old = deployment.node(name)
        domain = old.instance.tags.get("gp-domain", old.name.split("-")[0])
        spec = NodeSpec(
            name=name,
            domain=domain,
            roles=frozenset(old.roles),
            run_list=tuple(old.chef.run_list),
            instance_type=new_type,
        )
        yield from self._remove_node(deployment, name)
        node = yield from self._provision_node(deployment, spec)
        self._join_domain(deployment, node, domain)
        return node

    def _apply_user_changes(self, deployment: Deployment, diff: TopologyDiff) -> None:
        for runtime in deployment.domains.values():
            for username in diff.added_users:
                if runtime.nis is not None and username not in runtime.nis:
                    runtime.nis.add_user(username)
                self._provision_user_credentials(username)
                if runtime.galaxy is not None and username not in runtime.galaxy.users:
                    user = runtime.galaxy.create_user(username)
                    user.globus_username = username
            for username in diff.removed_users:
                if runtime.nis is not None and username in runtime.nis:
                    runtime.nis.remove_user(username)

    def create_custom_ami(
        self, deployment: Deployment, node_name: str, name: str
    ):
        """Snapshot a converged node into a pre-loaded AMI (Fig. 1 step 8)."""
        node = deployment.node(node_name)
        node.instance.tags["software"] = ",".join(
            sorted(node.chef.installed_software)
        )
        return self.bed.ec2.create_image(
            node.instance.id,
            name,
            markers=node.chef.markers,
            checkouts=node.chef.checkouts,
        )

    # ------------------------------------------------------------------ lifecycle
    def stop(self, deployment: Deployment) -> None:
        """Suspend: stop all instances; billing pauses (Fig. 1 step 6)."""
        if deployment.state != "running":
            raise DeploymentError(f"cannot stop a {deployment.state} deployment")
        self.bed.ec2.stop_instances(deployment.instance_ids())
        deployment.state = "stopped"

    def resume(self, deployment: Deployment):
        """Simulation process restarting a stopped deployment."""
        if deployment.state != "stopped":
            raise DeploymentError(f"cannot resume a {deployment.state} deployment")
        ids = deployment.instance_ids()
        # instances may still be in 'stopping'; wait for them to settle
        from ..cloud import InstanceState

        while any(
            self.bed.ec2.instances[i].state == InstanceState.STOPPING for i in ids
        ):
            yield self.ctx.sim.timeout(5.0)
        self.bed.ec2.start_instances(ids)
        yield self.ctx.sim.all_of([self.bed.ec2.when_running(i) for i in ids])
        deployment.state = "running"
        return deployment

    def terminate(self, deployment: Deployment) -> None:
        if deployment.state == "terminated":
            return
        for runtime in deployment.domains.values():
            if runtime.pool is not None:
                runtime.pool.shutdown()
        self.bed.ec2.terminate_instances(deployment.instance_ids())
        deployment.state = "terminated"
