"""Globus Provision: topologies, the deployment engine, instance lifecycle."""

from .deployer import (
    Deployer,
    Deployment,
    DeploymentError,
    DomainRuntime,
    UpdateReport,
)
from .instance import GlobusProvision, GPError, GPInstance, GPInstanceState
from .topology import (
    PAPER_GALAXY_CONF,
    DomainSpec,
    EC2Spec,
    GlobusOnlineSpec,
    NodeSpec,
    Topology,
    TopologyDiff,
    TopologyError,
    diff_topologies,
    with_extra_worker,
    with_worker_count,
)

__all__ = [
    "Deployer",
    "Deployment",
    "DeploymentError",
    "DomainRuntime",
    "DomainSpec",
    "EC2Spec",
    "GPError",
    "GPInstance",
    "GPInstanceState",
    "GlobusOnlineSpec",
    "GlobusProvision",
    "NodeSpec",
    "PAPER_GALAXY_CONF",
    "Topology",
    "TopologyDiff",
    "TopologyError",
    "UpdateReport",
    "diff_topologies",
    "with_extra_worker",
    "with_worker_count",
]
