"""Event primitives for the discrete-event kernel.

The model follows the classic SimPy design: an :class:`SimEvent` is a
one-shot occurrence with a value (or an exception).  Callbacks attached to
the event run when the kernel processes it.  :class:`Timeout` is an event
scheduled a fixed delay in the future; :class:`AnyOf`/:class:`AllOf`
combine events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import SimulationError, UntriggeredEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class SimEvent:
    """A one-shot event that may succeed with a value or fail with an error.

    Lifecycle: *pending* -> *triggered* (scheduled on the event queue) ->
    *processed* (callbacks have run).  An event can only be triggered once.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["SimEvent"], None]]] = []
        self._value: object = _PENDING
        self._ok: Optional[bool] = None

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed by the kernel."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise UntriggeredEvent(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise UntriggeredEvent(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None) -> "SimEvent":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown into
        them.  Failed events must be waited on (or marked ``defused``) or
        the kernel re-raises the error at processing time.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._defused = False
        self.sim._schedule(self, delay=0.0)
        return self

    @property
    def defused(self) -> bool:
        return getattr(self, "_defused", True)

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(SimEvent):
    """Event that fires after a fixed simulated delay."""

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class _Condition(SimEvent):
    """Base for events composed of several sub-events."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._unprocessed = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_subevent(ev)
            else:
                ev.callbacks.append(self._on_subevent)

    def _collect(self) -> dict:
        return {
            ev: ev.value for ev in self.events if ev.processed and ev.ok
        }

    def _on_subevent(self, ev: SimEvent) -> None:
        if not ev.ok:
            # Waiting on the condition counts as handling the failure, even
            # when the condition has already fired (e.g. two sub-processes
            # failing at the same timestamp).
            ev.defused = True
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)  # type: ignore[arg-type]
            return
        self._unprocessed -= 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every sub-event has triggered successfully."""

    def _check(self) -> bool:
        return self._unprocessed == 0


class AnyOf(_Condition):
    """Triggers when at least one sub-event has triggered successfully."""

    def _check(self) -> bool:
        return self._unprocessed < len(self.events)
