"""Event primitives for the discrete-event kernel.

The model follows the classic SimPy design: an :class:`SimEvent` is a
one-shot occurrence with a value (or an exception).  Callbacks attached to
the event run when the kernel processes it.  :class:`Timeout` is an event
scheduled a fixed delay in the future; :class:`AnyOf`/:class:`AllOf`
combine events.

All event classes declare ``__slots__``: simulations at scale allocate
millions of events, and slotted instances are both smaller and faster to
construct than dict-backed ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import SimulationError, UntriggeredEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()

#: Priority used for "urgent" bookkeeping events (process initialization).
URGENT = -1
#: Default priority for ordinary events.
NORMAL = 0
#: Priority for deferred bookkeeping that should run only after every
#: ordinary event at the same timestamp has been processed (used to
#: coalesce e.g. Condor negotiator wake-ups).
LAZY = 1


class SimEvent:
    """A one-shot event that may succeed with a value or fail with an error.

    Lifecycle: *pending* -> *triggered* (scheduled on the event queue) ->
    *processed* (callbacks have run).  An event can only be triggered once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["SimEvent"], None]]] = []
        self._value: object = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value and scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed by the kernel."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise UntriggeredEvent(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise UntriggeredEvent(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None, priority: int = NORMAL) -> "SimEvent":
        """Trigger the event successfully with ``value``.

        ``priority`` orders the event against others at the same timestamp
        (lower runs first); :data:`LAZY` defers processing until every
        ordinary same-timestamp event has drained.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined Simulator._schedule(self, 0.0, priority): triggers are
        # the hottest schedule in any run.
        sim = self.sim
        if priority == NORMAL:
            sim._immediate.append((next(sim._eid), self))
        else:
            sim._pending.append(
                (sim._now, (priority << 53) + next(sim._eid), self)
            )
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown into
        them.  Failed events must be waited on (or marked ``defused``) or
        the kernel re-raises the error at processing time.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._immediate.append((next(sim._eid), self))
        return self

    @property
    def defused(self) -> bool:
        """True once some waiter has taken responsibility for a failure."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(SimEvent):
    """Event that fires after a fixed simulated delay.

    The constructor bypasses :meth:`SimEvent.__init__` and writes every
    slot directly: timeouts are the single most-allocated object in a
    simulation, and the flat initializer keeps them cheap.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        # Inlined Simulator._schedule(self, delay, NORMAL); a NORMAL
        # priority packs to the bare insertion id.
        if delay == 0.0:
            sim._immediate.append((next(sim._eid), self))
        else:
            sim._pending.append((sim._now + delay, next(sim._eid), self))


class _Condition(SimEvent):
    """Base for events composed of several sub-events."""

    __slots__ = ("events", "_unprocessed")

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._unprocessed = len(self.events)
        if not self.events:
            self.succeed({})
            return
        on_sub = self._on_subevent  # bind once, not per sub-event
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                on_sub(ev)
            else:
                ev.callbacks.append(on_sub)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.callbacks is None and ev._ok
        }

    def _on_subevent(self, ev: SimEvent) -> None:
        # Slot accesses instead of the public properties: ``ev`` has been
        # processed by the kernel, so the untriggered guards cannot fire.
        if not ev._ok:
            # Waiting on the condition counts as handling the failure, even
            # when the condition has already fired (e.g. two sub-processes
            # failing at the same timestamp).
            ev._defused = True
            if self._value is _PENDING:
                self.fail(ev._value)  # type: ignore[arg-type]
            return
        if self._value is not _PENDING:
            return
        self._unprocessed -= 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every sub-event has triggered successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._unprocessed == 0


class AnyOf(_Condition):
    """Triggers when at least one sub-event has triggered successfully."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._unprocessed < len(self.events)
