"""Shared-resource primitives: capacity-limited resources and object stores.

These mirror the SimPy resource model but are trimmed to what this
reproduction needs: FIFO resources with integer capacity (CPU slots,
GridFTP connection limits), priority resources (Condor negotiation), stores
(job queues, mailboxes) and containers (byte pools, token buckets).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .errors import SimulationError
from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class Request(SimEvent):
    """Pending claim on a :class:`Resource`; succeeds when capacity frees."""

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        resource._request(self)

    def release(self) -> None:
        """Give back the claimed unit (or cancel a pending request)."""
        self.resource._release(self)

    # Support "with resource.request() as req: yield req".
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A resource with ``capacity`` identical units and FIFO queueing."""

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Units currently claimed."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    # -- internals ---------------------------------------------------------
    def _request(self, req: Request) -> None:
        self.queue.append(req)
        self._trigger()

    def _release(self, req: Request) -> None:
        if req in self.users:
            self.users.remove(req)
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                return
        self._trigger()

    def _next_waiter(self) -> Optional[Request]:
        return self.queue[0] if self.queue else None

    def _trigger(self) -> None:
        while len(self.users) < self.capacity:
            req = self._next_waiter()
            if req is None:
                return
            self.queue.remove(req)
            self.users.append(req)
            req.succeed(req)


class PriorityResource(Resource):
    """Resource whose waiters are served lowest ``priority`` value first."""

    def _next_waiter(self) -> Optional[Request]:
        if not self.queue:
            return None
        return min(self.queue, key=lambda r: r.priority)


class StorePut(SimEvent):
    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.sim)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(SimEvent):
    def __init__(self, store: "Store", filter_fn: Optional[Callable[[object], bool]] = None) -> None:
        super().__init__(store.sim)
        self.filter_fn = filter_fn
        store._get_queue.append(self)
        store._trigger()


class Store:
    """An unbounded-or-bounded buffer of arbitrary items (FIFO).

    ``get`` may pass a filter predicate, in which case the first matching
    item is returned (used by the Condor negotiator to pick jobs whose
    requirements match an available slot).
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: list[object] = []
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def put(self, item: object) -> StorePut:
        return StorePut(self, item)

    def get(self, filter_fn: Optional[Callable[[object], bool]] = None) -> StoreGet:
        return StoreGet(self, filter_fn)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets whose filter matches something.
            for get in list(self._get_queue):
                match_idx = None
                for i, item in enumerate(self.items):
                    if get.filter_fn is None or get.filter_fn(item):
                        match_idx = i
                        break
                if match_idx is not None:
                    self._get_queue.remove(get)
                    get.succeed(self.items.pop(match_idx))
                    progressed = True


class Container:
    """A homogeneous quantity pool (e.g. bytes, tokens).

    Only synchronous operations are needed by this project, so ``put`` and
    ``take`` act immediately and raise when they cannot be satisfied.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), init: float = 0.0) -> None:
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if self.level + amount > self.capacity:
            raise SimulationError("container overflow")
        self.level += amount

    def take(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.level:
            raise SimulationError("container underflow")
        self.level -= amount
