"""Shared-resource primitives: capacity-limited resources and object stores.

These mirror the SimPy resource model but are trimmed to what this
reproduction needs: FIFO resources with integer capacity (CPU slots,
GridFTP connection limits), priority resources (Condor negotiation), stores
(job queues, mailboxes) and containers (byte pools, token buckets).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .errors import SimulationError
from .events import _PENDING, SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator


class Request(SimEvent):
    """Pending claim on a :class:`Resource`; succeeds when capacity frees."""

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        # Flat initializer (see Timeout): grants happen once per task slot
        # handoff, which makes this a per-event allocation at scale.
        self.sim = resource.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self.resource = resource
        self.priority = priority
        resource._request(self)

    def release(self) -> None:
        """Give back the claimed unit (or cancel a pending request)."""
        self.resource._release(self)

    # Support "with resource.request() as req: yield req".
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A resource with ``capacity`` identical units and FIFO queueing."""

    __slots__ = ("sim", "capacity", "users", "queue")

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Units currently claimed."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    # -- internals ---------------------------------------------------------
    # Invariant (restored after every mutation): the wait queue is only
    # non-empty when every unit is claimed.  It lets ``_request`` grant
    # immediately whenever capacity is free — the queue must be empty, so
    # waiter-selection order (FIFO or priority) cannot matter.
    def _request(self, req: Request) -> None:
        users = self.users
        if len(users) < self.capacity:
            users.append(req)
            req.succeed(req)
        else:
            self.queue.append(req)

    def _release(self, req: Request) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            # Cancelling a pending request frees no capacity.
            try:
                self.queue.remove(req)
            except ValueError:
                pass
            return
        self._trigger()

    def _trigger(self) -> None:
        users = self.users
        queue = self.queue
        while queue and len(users) < self.capacity:
            req = queue.popleft()
            users.append(req)
            req.succeed(req)


class PriorityResource(Resource):
    """Resource whose waiters are served lowest ``priority`` value first."""

    __slots__ = ()

    def _pop_next_waiter(self) -> Optional[Request]:
        if not self.queue:
            return None
        # min() keeps the first minimal element, preserving FIFO ties.
        req = min(self.queue, key=lambda r: r.priority)
        self.queue.remove(req)
        return req

    def _trigger(self) -> None:
        while len(self.users) < self.capacity:
            req = self._pop_next_waiter()
            if req is None:
                return
            self.users.append(req)
            req.succeed(req)


class StorePut(SimEvent):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.sim)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(SimEvent):
    __slots__ = ("filter_fn",)

    def __init__(
        self, store: "Store", filter_fn: Optional[Callable[[object], bool]] = None
    ) -> None:
        super().__init__(store.sim)
        self.filter_fn = filter_fn
        store._get_queue.append(self)
        store._trigger()


class Store:
    """An unbounded-or-bounded buffer of arbitrary items (FIFO).

    ``get`` may pass a filter predicate, in which case the first matching
    item is returned (used by the Condor negotiator to pick jobs whose
    requirements match an available slot).
    """

    __slots__ = ("sim", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: list[object] = []
        self._put_queue: deque[StorePut] = deque()
        self._get_queue: deque[StoreGet] = deque()

    def put(self, item: object) -> StorePut:
        return StorePut(self, item)

    def get(self, filter_fn: Optional[Callable[[object], bool]] = None) -> StoreGet:
        return StoreGet(self, filter_fn)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets whose filter matches something.
            if not self._get_queue or not self.items:
                continue
            for get in list(self._get_queue):
                match_idx = None
                for i, item in enumerate(self.items):
                    if get.filter_fn is None or get.filter_fn(item):
                        match_idx = i
                        break
                if match_idx is not None:
                    self._get_queue.remove(get)
                    get.succeed(self.items.pop(match_idx))
                    progressed = True


class Container:
    """A homogeneous quantity pool (e.g. bytes, tokens).

    Only synchronous operations are needed by this project, so ``put`` and
    ``take`` act immediately and raise when they cannot be satisfied.
    """

    __slots__ = ("sim", "capacity", "level")

    def __init__(self, sim: "Simulator", capacity: float = float("inf"), init: float = 0.0) -> None:
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if self.level + amount > self.capacity:
            raise SimulationError("container overflow")
        self.level += amount

    def take(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("amount must be >= 0")
        if amount > self.level:
            raise SimulationError("container underflow")
        self.level -= amount
