"""A calendar-queue timer wheel: the kernel's O(1)-amortized scheduler.

:class:`CalendarQueue` is the classic discrete-event alternative to a
binary heap (R. Brown, "Calendar Queues: A Fast O(1) Priority Queue
Implementation for the Simulation Event Set Problem", CACM 1988): timers
are hashed into *buckets* by ``floor(time / width)`` and popped by
walking the bucket ring in day order, so a pop costs O(1) amortized
instead of the heap's O(log n) sift.  ``timeout_churn``-style workloads
— provisioning delays, Condor negotiation cycles, GridFTP chunk
completions — are dominated by exactly that sift cost.

Determinism contract
--------------------
Entries are the kernel's ``(time, key, event)`` tuples, where ``key``
packs ``(priority << 53) + insertion-id`` into one integer and is unique
per entry.  The queue pops in strictly ascending ``(time, key)`` order —
byte-identical to the binary heap — regardless of bucket geometry,
resizes, or overflow migrations.  Tuple comparisons never reach the
event object because keys are unique (the same guarantee the heap
relies on).

Design
------
* **Power-of-two bucket width.**  ``width`` is always ``2**k``, so
  ``time * (1/width)`` is an exact float scaling (only the exponent
  changes) and day numbers are exact integer truncations — no
  accumulating rounding drift at bucket boundaries.
* **Prepared run.**  Instead of popping one entry at a time out of the
  ring, the queue *prepares* a short sorted run (the next ~128 due
  entries, whole days at a time) into ``_run``, stored descending so the
  minimum is ``_run[-1]`` and a pop is ``list.pop()``.  The kernel's
  drain loop aliases ``_run`` directly; the list object is **never
  rebound**, only mutated in place.
* **Sorted segment tier for bulk loads.**  A per-entry Python placement
  loop costs more than one C-speed ``list.sort`` over the whole batch,
  so large ``extend`` batches (the kernel's pending flush) are sorted
  once into ``_segment`` — a descending list of not-yet-due entries —
  and refills slice whole-day chunks off its tail with a binary search.
  The ring only carries entries from incremental ``push``es, which is
  what it is good at.  This is the ladder-queue refinement of the
  calendar queue (Tang & Goh, 2005): sort in bulk, bucket the trickle.
* **Window invariant.**  Every bucketed entry satisfies
  ``limit_tick <= day(entry) < limit_tick + nbuckets`` where
  ``limit_tick`` is the first unprepared day.  Within such a window each
  bucket holds at most one distinct day, so a refill takes whole buckets
  in ring order and sorts once.  Late arrivals due *before* the window
  (same-timestamp LAZY/URGENT triggers) are bisected into the prepared
  run; arrivals *beyond* it go to the overflow list.
* **Overflow far-future list.**  Pushed entries more than one ring
  revolution ahead sit unsorted in ``_overflow`` (with the minimum time
  tracked) until the window reaches them, then are *repatriated* into
  the ring in one pass.
* **Lazy resize on load-factor thresholds.**  When the bucketed (or
  overflowed) population exceeds ``2 * nbuckets`` the ring grows 4x and
  the width is retuned to the observed mean event spacing (rounded to a
  power of two); when it falls below ``nbuckets / 8`` the ring shrinks.
  Resizes rebuild the ring but never touch the prepared run or the
  sorted segment, so they cannot reorder anything.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from math import floor, inf, isinf, log2

__all__ = ["CalendarQueue"]

#: ring-size bounds; both powers of two.  The floor keeps shrink cheap,
#: the cap bounds rebuild cost for degenerate width estimates.
MIN_BUCKETS = 8
MAX_BUCKETS = 1 << 20

#: bucket-width bounds as exponents of two (2**-30 s .. 2**30 s).
MIN_WIDTH_EXP = -30
MAX_WIDTH_EXP = 30

#: how many due entries a refill tries to prepare at once.  Larger runs
#: amortize the refill bookkeeping over more C-speed ``list.pop``s;
#: smaller runs keep late same-window insertions cheap.
RUN_TARGET = 128

#: ``extend`` batches at least this large take the sort-into-segment
#: path instead of the per-entry ring placement loop.
BULK_MIN = 128

#: times at or beyond 2**990 cannot anchor a window: ``time * inv_width``
#: (inv_width up to 2**30) would overflow a float.  Treated like +inf.
_TIME_CEILING = 2.0**990


def _desc_key(entry):
    """Sort key mapping descending (time, key) onto ascending order.

    ``bisect.insort`` only understands ascending sequences; the prepared
    run is stored descending so pops come off the tail.
    """
    return (-entry[0], -entry[1])


def _time_key(entry):
    return entry[0]


class CalendarQueue:
    """Bucketed timer wheel over ``(time, key, event)`` entries."""

    __slots__ = (
        "_run",
        "_segment",
        "_buckets",
        "_overflow",
        "_overflow_min",
        "_nbuckets",
        "_mask",
        "_width",
        "_inv_width",
        "_limit_tick",
        "_limit_time",
        "_horizon_time",
        "_bucket_count",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        bucket_width: float = 1.0,
        buckets: int = MIN_BUCKETS,
    ) -> None:
        if buckets < MIN_BUCKETS or buckets & (buckets - 1):
            raise ValueError(f"buckets must be a power of two >= {MIN_BUCKETS}")
        exp = log2(bucket_width) if bucket_width > 0 else None
        if exp is None or exp != floor(exp) or not (
            MIN_WIDTH_EXP <= exp <= MAX_WIDTH_EXP
        ):
            raise ValueError(
                f"bucket_width must be a power of two in "
                f"[2**{MIN_WIDTH_EXP}, 2**{MAX_WIDTH_EXP}], got {bucket_width}"
            )
        #: prepared due entries, descending (time, key); min is ``_run[-1]``.
        #: NEVER rebound — the kernel drain loop holds a direct alias.
        self._run: list = []
        #: bulk-loaded entries, descending (time, key), all >= _limit_time.
        #: May extend past the horizon; refills slice chunks off the tail.
        self._segment: list = []
        self._buckets: list[list] = [[] for _ in range(buckets)]
        self._overflow: list = []
        self._overflow_min = inf
        self._nbuckets = buckets
        self._mask = buckets - 1
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        #: first day not yet prepared into the run
        self._limit_tick = int(start_time * self._inv_width)
        self._limit_time = self._limit_tick * bucket_width
        self._horizon_time = (self._limit_tick + buckets) * bucket_width
        #: entries currently held in the bucket ring (run/segment/overflow
        #: excluded)
        self._bucket_count = 0

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return (
            len(self._run)
            + len(self._segment)
            + self._bucket_count
            + len(self._overflow)
        )

    def __bool__(self) -> bool:
        return bool(
            self._run or self._segment or self._bucket_count or self._overflow
        )

    @property
    def stats(self) -> dict:
        """Geometry snapshot (tests and debugging; not a hot path)."""
        return {
            "buckets": self._nbuckets,
            "bucket_width": self._width,
            "bucketed": self._bucket_count,
            "prepared": len(self._run),
            "segment": len(self._segment),
            "overflow": len(self._overflow),
        }

    # -- insertion ---------------------------------------------------------
    def push(self, entry) -> None:
        """Insert one ``(time, key, event)`` entry."""
        t = entry[0]
        if t >= self._horizon_time:
            self._overflow.append(entry)
            if t < self._overflow_min:
                self._overflow_min = t
            if (
                len(self._overflow) > (self._nbuckets << 1)
                and self._nbuckets < MAX_BUCKETS
            ):
                self._resize(grow=True)
        elif t < self._limit_time:
            # Due before the first unprepared day: the day was already
            # swept into the run, so the entry must join it in order.
            insort(self._run, entry, key=_desc_key)
        else:
            self._buckets[int(t * self._inv_width) & self._mask].append(entry)
            self._bucket_count += 1
            if (
                self._bucket_count > (self._nbuckets << 1)
                and self._nbuckets < MAX_BUCKETS
            ):
                self._resize(grow=True)

    def extend(self, entries) -> None:
        """Bulk ``push``; the kernel's pending-flush path.

        Large batches are sorted once (C speed) and merged into the
        segment tier — cheaper than any per-entry placement loop, and
        the reason the wheel beats the heap on bulk timer churn.  Small
        batches take the ring placement loop with the geometry cached in
        locals; a resize invalidates the cache, so the loop restarts its
        window from the current index.
        """
        n = len(entries)
        if n == 1:
            self.push(entries[0])
            return
        if n >= BULK_MIN and n >= (len(self._segment) >> 3):
            self._extend_bulk(entries)
            return
        i = 0
        overflow = self._overflow
        run = self._run  # never rebound; safe to cache across resizes
        while i < n:
            buckets = self._buckets
            mask = self._mask
            inv = self._inv_width
            limit_t = self._limit_time
            horizon_t = self._horizon_time
            count = self._bucket_count
            ovf_min = self._overflow_min
            cap = (
                (self._nbuckets << 1)
                if self._nbuckets < MAX_BUCKETS
                else inf
            )
            resize = False
            late = None
            while i < n:
                entry = entries[i]
                t = entry[0]
                i += 1
                if limit_t <= t < horizon_t:
                    buckets[int(t * inv) & mask].append(entry)
                    count += 1
                    if count > cap:
                        resize = True
                        break
                elif t >= horizon_t:
                    overflow.append(entry)
                    if t < ovf_min:
                        ovf_min = t
                    if len(overflow) > cap:
                        resize = True
                        break
                elif late is None:
                    late = [entry]
                else:
                    late.append(entry)
            self._bucket_count = count
            self._overflow_min = ovf_min
            if late is not None:
                # One timsort merge beats per-entry insort when a flush
                # carries several same-window late arrivals.
                run.extend(late)
                run.sort(reverse=True)
            if resize:
                self._resize(grow=True)
                overflow = self._overflow

    def _extend_bulk(self, entries) -> None:
        """Sort a large batch once and merge it into the segment tier."""
        batch = sorted(entries)  # ascending (time, key); keys are unique
        limit_t = self._limit_time
        run = self._run
        if isinf(limit_t):
            # Endgame (see _migrate): the run is the only tier left.
            batch.reverse()
            run.extend(batch)
            run.sort(reverse=True)  # merges the two descending runs
            return
        i = 0
        if batch[0][0] < limit_t:
            # Late arrivals due before the window join the prepared run.
            i = bisect_left(batch, limit_t, key=_time_key)
            if i > 8 or len(run) <= 8:
                run.extend(batch[i - 1 :: -1])
                run.sort(reverse=True)
            else:
                for entry in batch[:i]:
                    insort(run, entry, key=_desc_key)
        rest = batch[i:]
        rest.reverse()  # descending; tail is the earliest entry
        segment = self._segment
        if segment:
            segment.extend(rest)
            segment.sort(reverse=True)  # merges the two descending runs
        else:
            self._segment = rest

    # -- removal -----------------------------------------------------------
    def pop(self):
        """Remove and return the minimum ``(time, key, event)`` entry."""
        run = self._run
        if not run and not self._refill():
            raise IndexError("pop from an empty CalendarQueue")
        return run.pop()

    def peek(self):
        """The minimum entry without removing it, or ``None`` if empty."""
        run = self._run
        if not run and not self._refill():
            return None
        return run[-1]

    def _refill(self) -> bool:
        """Prepare the next sorted run of due entries.

        Only called when ``_run`` is empty (so extending it in place
        keeps descending order).  Returns False when the queue is empty.
        """
        run = self._run
        if self._overflow and self._overflow_min < self._horizon_time:
            # The window has caught up with formerly far-future entries;
            # fold them back into the ring before choosing a cut.
            self._repatriate()
        segment = self._segment
        count = self._bucket_count
        if count == 0 and (
            not segment or segment[-1][0] >= self._horizon_time
        ):
            if not segment and not self._overflow:
                return bool(run)
            self._migrate()
            segment = self._segment
            count = self._bucket_count
            if count == 0 and not segment:
                # endgame: _migrate dumped the remaining tail into the run
                return bool(run)
        if (
            0 < count < (self._nbuckets >> 3)
            and self._nbuckets > MIN_BUCKETS
        ):
            self._resize(grow=False)
            if self._bucket_count != count:
                # the shrink pushed ring entries past the new horizon;
                # restart so the window/overflow checks see fresh state
                return self._refill()
            count = self._bucket_count
        width = self._width
        nbuckets = self._nbuckets
        tick = self._limit_tick
        if count:
            buckets = self._buckets
            mask = self._mask
            collected = 0
            scanned = 0
            # The window invariant guarantees a non-empty bucket within
            # one revolution while _bucket_count > 0.
            while collected < RUN_TARGET and scanned < nbuckets:
                bucket = buckets[tick & mask]
                if bucket:
                    run.extend(bucket)
                    collected += len(bucket)
                    bucket.clear()
                tick += 1
                scanned += 1
            self._bucket_count = count - collected
            if segment and segment[-1][0] < tick * width:
                m = self._seg_cut(tick * width)
                run.extend(segment[m:])
                del segment[m:]
            run.sort(reverse=True)
        else:
            # Pure segment refill: slice a whole-day chunk off the tail.
            # The chunk is already descending and the run is empty, so
            # no sort is needed at all.
            j = len(segment) - RUN_TARGET
            t_j = segment[0 if j < 0 else j][0]
            cut = int(t_j * self._inv_width) + 1
            horizon_tick = tick + nbuckets
            if cut > horizon_tick:
                cut = horizon_tick
            m = self._seg_cut(cut * width)
            if run:
                # a shrink-resize just prepared late entries early; the
                # merge restores descending order
                run.extend(segment[m:])
                run.sort(reverse=True)
            else:
                run.extend(segment[m:])
            del segment[m:]
            tick = cut
        self._limit_tick = tick
        self._limit_time = tick * width
        self._horizon_time = (tick + nbuckets) * width
        return True

    def _seg_cut(self, cut_time: float) -> int:
        """First index of the segment whose time is below ``cut_time``.

        The segment is descending, so ``segment[m:]`` is exactly the
        sub-run due before ``cut_time``.
        """
        segment = self._segment
        lo, hi = 0, len(segment)
        while lo < hi:
            mid = (lo + hi) >> 1
            if segment[mid][0] < cut_time:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # -- reorganisation ----------------------------------------------------
    def _repatriate(self) -> None:
        """Fold overflow entries the window has reached back into the ring."""
        buckets = self._buckets
        mask = self._mask
        inv = self._inv_width
        limit_t = self._limit_time
        horizon_t = self._horizon_time
        run = self._run
        keep = []
        new_min = inf
        count = self._bucket_count
        for entry in self._overflow:
            t = entry[0]
            if t >= horizon_t:
                keep.append(entry)
                if t < new_min:
                    new_min = t
            elif t >= limit_t:
                buckets[int(t * inv) & mask].append(entry)
                count += 1
            else:
                insort(run, entry, key=_desc_key)
        self._bucket_count = count
        self._overflow = keep
        self._overflow_min = new_min
        if count > (self._nbuckets << 1) and self._nbuckets < MAX_BUCKETS:
            self._resize(grow=True)

    def _migrate(self) -> None:
        """Advance the window to the earliest far-future day.

        Runs only when the ring and the prepared run are both empty and
        the segment holds nothing before the horizon, so jumping
        ``limit_tick`` forward cannot skip a due entry.  The anchor is
        the minimum over the overflow and the segment tail.
        """
        segment = self._segment
        best = self._overflow_min
        if segment and segment[-1][0] < best:
            best = segment[-1][0]
        if best < _TIME_CEILING:
            tick = int(best * self._inv_width)
            horizon_t = (tick + self._nbuckets) * self._width
            if horizon_t > best:
                self._limit_tick = tick
                self._limit_time = tick * self._width
                self._horizon_time = horizon_t
                if self._overflow and self._overflow_min < horizon_t:
                    self._repatriate()
                return
            # fall through: ``best`` is so large that one ring revolution
            # rounds to zero days (``tick * width + nbuckets * width ==
            # tick * width`` in floats) — no window can ever cover it.
        # No representable day can anchor the window (t=inf, the tick
        # computation would overflow a float, or the window width rounds
        # away at this magnitude).  Endgame mode: the remaining entries
        # become the run and the window moves to infinity, so any later
        # push bisects into the run and ordering still holds — O(run)
        # inserts, but this tail is astronomically far from any simulated
        # workload.
        tail = self._overflow
        tail.extend(segment)
        tail.sort(reverse=True)
        self._run.extend(tail)
        self._overflow = []
        self._overflow_min = inf
        segment.clear()
        self._limit_time = inf
        self._horizon_time = inf

    def _resize(self, grow: bool) -> None:
        """Rebuild the ring at a new size/width (load-factor thresholds).

        Collects ring + overflow, retunes the bucket width to the
        observed mean spacing (rounded down to a power of two), and
        re-places everything.  The prepared run and the segment are
        untouched, so resizes can never reorder pops.
        """
        if isinf(self._limit_time):
            return  # endgame mode (see _migrate): no finite window to rebuild
        entries = self._overflow
        for bucket in self._buckets:
            if bucket:
                entries.extend(bucket)
        if grow:
            nbuckets = min(self._nbuckets << 2, MAX_BUCKETS)
        else:
            nbuckets = max(self._nbuckets >> 2, MIN_BUCKETS)
        width = self._tuned_width(entries)
        inv = 1.0 / width
        self._width = width
        self._inv_width = inv
        self._nbuckets = nbuckets
        mask = nbuckets - 1
        self._mask = mask
        # Re-anchor the consumed-day boundary at the same *time*, rounding
        # UP to the new day grid.  Rounding down would re-open days the
        # prepared run may already cover — a later push could then land in
        # the ring at a time before an entry already prepared, popping out
        # of order.  Rounding up instead *prepares early*: collected or
        # segment entries now below the boundary join the run, which is
        # always order-safe.
        limit_tick = int(self._limit_time * inv)
        if limit_tick * width < self._limit_time:
            limit_tick += 1
        self._limit_tick = limit_tick
        limit_t = limit_tick * width
        self._limit_time = limit_t
        horizon_t = (limit_tick + nbuckets) * width
        self._horizon_time = horizon_t
        buckets = [[] for _ in range(nbuckets)]
        self._buckets = buckets
        run = self._run
        overflow = []
        late = None
        new_min = inf
        count = 0
        for entry in entries:
            t = entry[0]
            if t >= horizon_t:
                overflow.append(entry)
                if t < new_min:
                    new_min = t
            elif t >= limit_t:
                buckets[int(t * inv) & mask].append(entry)
                count += 1
            elif late is None:
                late = [entry]
            else:
                late.append(entry)
        self._overflow = overflow
        self._overflow_min = new_min
        self._bucket_count = count
        segment = self._segment
        if segment and segment[-1][0] < limit_t:
            m = self._seg_cut(limit_t)
            if late is None:
                late = segment[m:]
            else:
                late.extend(segment[m:])
            del segment[m:]
        if late is not None:
            run.extend(late)
            run.sort(reverse=True)

    def _tuned_width(self, entries) -> float:
        """A power-of-two width targeting ~one entry per occupied day.

        The spacing estimate samples at most ~1k entries and drops the
        farthest eighth: a handful of far-future outliers (retry
        backstops, idle heartbeats) would otherwise blow the span — and
        the width — up by orders of magnitude, collapsing the near-term
        mass into a single bucket.
        """
        n = len(entries)
        if n < 2:
            return self._width
        stride = 1 + (n >> 10)
        times = sorted(
            t for t in (e[0] for e in entries[::stride]) if not isinf(t)
        )
        if len(times) < 2:
            return self._width
        bulk = len(times) - (len(times) >> 3)
        lo, hi = times[0], times[bulk - 1]
        if hi <= lo:
            hi = times[-1]  # the bulk is one cluster; fall back to full span
            if hi <= lo:
                return self._width
        exp = floor(log2((hi - lo) / (bulk * stride)))
        if exp < MIN_WIDTH_EXP:
            exp = MIN_WIDTH_EXP
        elif exp > MAX_WIDTH_EXP:
            exp = MAX_WIDTH_EXP
        return 2.0**exp
