"""Deterministic named random streams.

Every stochastic component draws from its own named stream so that adding
a new source of randomness never perturbs the draws of existing components
(the "common random numbers" discipline used in simulation studies).
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """Factory of independent, reproducible :class:`numpy.random.Generator`.

    Streams are keyed by name; the same (seed, name) pair always yields the
    same sequence.  Child stream seeds are derived by hashing the name, so
    stream identity is stable across runs and process boundaries.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            child_seed = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode("utf-8"))]
            )
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Forget all streams; subsequent draws restart from scratch."""
        self._streams.clear()

    def spawn(self, name: str) -> "RandomStreams":
        """A whole sub-namespace of streams, for nested components."""
        return RandomStreams(self.seed ^ zlib.crc32(name.encode("utf-8")))
