"""Exception types used by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Simulator.run` early."""


class EmptySchedule(SimulationError):
    """Raised when :meth:`Simulator.step` is called with no pending events."""


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter passed,
    typically a short human-readable reason.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class UntriggeredEvent(SimulationError):
    """Raised when the value of an event is read before it triggered."""
