"""Simulation context: the bundle every component receives.

A :class:`SimContext` owns the kernel, the named RNG streams, and a simple
structured trace log.  Passing one object keeps constructor signatures flat
and makes whole-system determinism a single-seed affair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..obs.recorder import recorder_for_context
from .kernel import Simulator
from .rng import RandomStreams


@dataclass
class TraceRecord:
    """One structured trace event emitted by a component."""

    time: float
    source: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """In-memory structured log with optional live subscribers.

    Storage is struct-of-arrays style: ``emit`` appends a plain tuple
    (simulations log tens of thousands of records on hot paths, and a
    tuple append is several times cheaper than a dataclass construction);
    :class:`TraceRecord` objects are materialized lazily — and cached —
    the first time :attr:`records` is read.  Live subscribers force the
    record into existence at emit time, so they see the same objects.
    """

    def __init__(self) -> None:
        self._rows: list[tuple[float, str, str, dict[str, Any]]] = []
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    @property
    def records(self) -> list[TraceRecord]:
        recs = self._records
        rows = self._rows
        if len(recs) < len(rows):
            recs.extend(
                TraceRecord(time=t, source=s, kind=k, detail=d)
                for t, s, k, d in rows[len(recs):]
            )
        return recs

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> None:
        self._rows.append((time, source, kind, detail))
        if self._subscribers:
            rec = self.records[-1]
            for sub in self._subscribers:
                sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(fn)

    def filter(self, kind: str | None = None, source: str | None = None) -> list[TraceRecord]:
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)


class SimContext:
    """Kernel + RNG + trace, the spine threaded through every subsystem."""

    def __init__(
        self,
        seed: int = 0,
        initial_time: float = 0.0,
        scheduler: str | None = None,
        dispatch: str | None = None,
        obs: object = None,
    ) -> None:
        self.seed = seed
        self.sim = Simulator(
            initial_time=initial_time, scheduler=scheduler, dispatch=dispatch
        )
        self.rng = RandomStreams(seed)
        self.trace = TraceLog()
        #: observability recorder (see :mod:`repro.obs`): pass an
        #: :class:`~repro.obs.ObsRecorder` or ``True`` to record spans and
        #: metrics; the default is the shared null recorder unless an
        #: ``obs.capture()`` block is active, in which case a fresh
        #: recorder is created and registered with it.
        self.obs = recorder_for_context(obs, self.sim)
        self.sim.obs = self.obs

    @property
    def now(self) -> float:
        return self.sim.now

    def stream(self, name: str) -> np.random.Generator:
        return self.rng.stream(name)

    def log(self, source: str, kind: str, **detail: Any) -> None:
        self.trace.emit(self.sim.now, source, kind, **detail)

    def provenance(self) -> dict:
        """Everything a replay needs to rebuild an equivalent context:
        the seed plus the kernel's scheduler/dispatch and counters."""
        return {"seed": self.seed, **self.sim.provenance()}
