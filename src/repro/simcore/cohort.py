"""Cohort events: struct-of-arrays batch scheduling for homogeneous timers.

Large simulations are dominated by *populations* of identical timers —
GridFTP chunk completions, Condor job completions, EC2 boot delays.  The
scalar path allocates one :class:`~repro.simcore.events.SimEvent` (often
a whole generator resume) per timer.  An :class:`EventCohort` registers N
such timers as one record: NumPy arrays of fire times, optional entity
ids and payload scalars, and a single ``apply(cohort, start, stop)``
callback that the kernel invokes for whole runs of members.

Dispatch modes (see ``Simulator(dispatch=...)``):

* ``"scalar"`` — the reference implementation: one queue entry and one
  kernel pop per member, each calling ``apply(cohort, k, k + 1)``.
* ``"cohort"`` — maximal runs of *consecutive-index, equal-time* members
  collapse into one queue entry (:class:`_CohortSlice`); the kernel pops
  the run once and calls ``apply(cohort, i, j)`` for the whole slice.

Ordering contract
-----------------
Both modes stage members into the kernel's pending list at registration
time with freshly drawn insertion ids, in member-index order.  Insertion
ids are globally monotonic, so members keep their position relative to
every other event in the simulation, and members of one run execute in
ascending index order in both modes.  Absolute ids differ between modes
(a run consumes one id instead of n); only relative order is observable.

``apply`` must be mode-agnostic: processing members ``[start, stop)`` in
index order has to produce byte-identical effects whether it is called
per member or per run.  Two patterns keep the kernel's
``peak_queue_depth`` accounting exact for same-timestamp runs (sizes-1
runs are trivially exact): either **every** member's apply schedules at
least one event, or **no** member except possibly the last schedules
any.  Mixed populations should register separate cohorts.

``events_processed`` counts members, not queue entries: a fired slice
adds its extra ``n - 1`` members to the counter, so both dispatch modes
report identical totals (the number is part of the pinned sim JSON).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

__all__ = ["EventCohort", "COHORT_SIZE_BUCKETS"]

#: power-of-two buckets for the ``cohort.size`` obs histogram
COHORT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

ApplyFn = Callable[["EventCohort", int, int], None]


class _CohortMember(SimEvent):
    """Scalar-dispatch carrier: one queue entry for member ``index``.

    Allocated inline by :class:`EventCohort` via ``__new__`` (members
    are created in bulk; even a flat ``__init__`` call is measurable at
    cohort scale) with only the attributes the drain loop reads:
    ``callbacks`` (one list shared by every member of the cohort —
    popping clears the event's *attribute*, never the list), ``_ok``,
    ``_defused``, and ``index``.
    """

    __slots__ = ("index",)


class _CohortSlice(SimEvent):
    """Cohort-dispatch carrier: one queue entry for members ``[start, stop)``.

    Allocated inline like :class:`_CohortMember`, with ``start``/``stop``
    in place of ``index``.
    """

    __slots__ = ("start", "stop")


class EventCohort:
    """N homogeneous timers registered as one struct-of-arrays record.

    Created via :meth:`Simulator.schedule_cohort`; producers keep a
    reference for its :attr:`done` event (fires once every member has
    been applied) and for the arrays ``apply`` indexes into.
    """

    __slots__ = (
        "sim",
        "layer",
        "_times",
        "entity_ids",
        "payload",
        "apply",
        "size",
        "done",
        "_remaining",
        "cause",
    )

    def __init__(
        self,
        sim: "Simulator",
        times: Sequence[float],
        apply: ApplyFn,
        payload: object = None,
        entity_ids: object = None,
        layer: str = "cohort",
        cause: object = None,
    ) -> None:
        self.sim = sim
        self.layer = layer
        # Opaque causal baggage for observability: producers stash the obs
        # span id(s) that provoked this cohort (one id, or a per-member
        # sequence) so `apply` can thread cause links onto spans it opens
        # even though dispatch batches the members.  The kernel never
        # reads it; None (the obs-off default) costs one slot write.
        self.cause = cause
        # Kept as handed in; normalized to float64 lazily (see `times`).
        # Producers registering thousands of small cohorts (negotiator
        # ticks, per-file chunk plans) would otherwise pay an ndarray
        # round-trip per registration.
        self._times = times
        self.entity_ids = entity_ids
        self.payload = payload
        self.apply = apply
        self.size = n = len(times)
        self.done = SimEvent(sim)
        self._remaining = n
        if n == 0:
            self.done.succeed(self)
            return
        tl = times.tolist() if isinstance(times, np.ndarray) else times
        now = sim._now
        pending = sim._pending
        eid = sim._eid
        if sim._dispatch == "scalar":
            cbs = [self._fire_member]
            new = _CohortMember.__new__
            for k in range(n):
                t = tl[k]
                if t < now:
                    raise ValueError(f"cohort fire time in the past ({t} < {now})")
                ev = new(_CohortMember)
                ev.callbacks = cbs
                ev._ok = True
                ev._defused = False
                ev.index = k
                pending.append((t, next(eid), ev))
            return
        # Cohort dispatch: collapse maximal runs of consecutive members
        # sharing a timestamp into one slice entry.  One insertion id per
        # run keeps relative order against all other events identical to
        # the scalar staging above.
        cbs = [self._fire_slice]
        new = _CohortSlice.__new__
        extra = 0
        i = 0
        while i < n:
            t = tl[i]
            if t < now:
                raise ValueError(f"cohort fire time in the past ({t} < {now})")
            j = i + 1
            while j < n and tl[j] == t:
                j += 1
            ev = new(_CohortSlice)
            ev.callbacks = cbs
            ev._ok = True
            ev._defused = False
            ev.start = i
            ev.stop = j
            pending.append((t, next(eid), ev))
            extra += j - i - 1
            i = j
        sim._cohort_extra += extra

    @property
    def times(self) -> np.ndarray:
        """Member fire times as a float64 array (normalized on first read)."""
        t = self._times
        if not isinstance(t, np.ndarray):
            t = self._times = np.asarray(t, dtype=np.float64)
        return t

    # -- kernel callbacks --------------------------------------------------
    def _fire_member(self, ev: SimEvent) -> None:
        """Scalar path: apply exactly one member."""
        k = ev.index  # type: ignore[attr-defined]
        self.apply(self, k, k + 1)
        obs = self.sim.obs
        if obs.enabled:
            obs.counter(f"cohort.events.{self.layer}.scalar").inc()
        self._remaining -= 1
        if self._remaining == 0:
            self.done.succeed(self)

    def _fire_slice(self, ev: SimEvent) -> None:
        """Cohort path: apply a whole same-timestamp run in one call."""
        start = ev.start  # type: ignore[attr-defined]
        stop = ev.stop  # type: ignore[attr-defined]
        n = stop - start
        sim = self.sim
        if n > 1:
            # The kernel counted one pop; credit the collapsed members so
            # events_processed (pinned in sim JSON) matches scalar mode,
            # and retire their share of the depth compensation.
            sim.events_processed += n - 1
            sim._cohort_extra -= n - 1
        self.apply(self, start, stop)
        obs = sim.obs
        if obs.enabled:
            obs.histogram("cohort.size", bounds=COHORT_SIZE_BUCKETS).observe(n)
            obs.counter(f"cohort.events.{self.layer}.cohort").inc(n)
        self._remaining -= n
        if self._remaining == 0:
            self.done.succeed(self)


def schedule_cohort(
    sim: "Simulator",
    times: Sequence[float],
    apply: ApplyFn,
    payload: object = None,
    entity_ids: object = None,
    layer: str = "cohort",
    cause: object = None,
) -> EventCohort:
    """Register ``times`` as one cohort (see :class:`EventCohort`)."""
    return EventCohort(sim, times, apply, payload, entity_ids, layer, cause)
