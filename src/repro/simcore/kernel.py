"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the event queue.  Components schedule
:class:`~repro.simcore.events.SimEvent` objects; processes (generators) are
driven by :class:`~repro.simcore.process.Process`.  Determinism: events at
equal times are processed in (priority, insertion order).

Performance notes
-----------------
The queue is split in two.  Timed events live on a binary heap keyed by
``(time, (priority << 53) + insertion-order)`` — the priority/insertion
tiebreak packed into a single integer so heap sifts compare one field,
not two.  New timed entries are staged in a pending list and merged
lazily — bulk loads heapify in O(n) instead of paying n O(log n)
pushes.  Zero-delay NORMAL-priority events —
``succeed()``/``fail()`` triggers, resource grants, store handoffs, by far
the most common schedule — go to a FIFO deque instead, skipping the
``O(log n)`` heap push/pop entirely.  Because insertion order is globally
monotonic, the deque is always sorted by insertion order, and the drain
loop merges deque and heap by comparing ``(priority, insertion-order)``
whenever the heap's head shares the current timestamp, so observable
ordering is bit-identical to a single heap.  The run loop is deliberately
inlined (no per-event ``step()`` call) and drains all events of one
timestamp before re-checking the stop conditions.

Schedulers
----------
Two timer stores implement the same ``(time, priority, insertion-order)``
contract and are selected per simulator via ``Simulator(scheduler=...)``:

* ``"heap"`` (default) — the binary heap described above; O(log n) pops
  through C ``heapq``.
* ``"wheel"`` — a :class:`~repro.simcore.calendar.CalendarQueue` bucketed
  time wheel; O(1) amortized pops, which wins on timer-churn-heavy
  workloads (provisioning delays, negotiation cycles, chunked transfers).

Both share the staging structures (``_pending``, ``_immediate``), so the
inlined hot constructors in :mod:`~repro.simcore.events` are
scheduler-agnostic, and each scheduler gets its own inlined drain loop so
neither pays for the other's dispatch.  Observable event order is
identical by construction and pinned by the differential equivalence
suite (``tests/simcore/test_scheduler_equivalence.py``).

The process-wide default is ``"heap"``; override it with
:func:`set_default_scheduler` or the ``REPRO_SIM_SCHEDULER`` environment
variable (how the bench harness fans the choice out to worker processes).

Per-simulator counters (:attr:`Simulator.events_processed`,
:attr:`Simulator.peak_queue_depth`) feed the scale benchmarks.
"""

from __future__ import annotations

import gc
import os
from collections import deque
from heapq import heapify, heappop, heappush
from itertools import count
from typing import Callable, Optional

from ..obs.recorder import NULL_RECORDER
from .calendar import CalendarQueue
from .cohort import EventCohort
from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import LAZY, NORMAL, URGENT, AllOf, AnyOf, SimEvent, Timeout
from .process import Process, ProcessGenerator

__all__ = [
    "Simulator",
    "URGENT",
    "NORMAL",
    "LAZY",
    "SCHEDULERS",
    "DISPATCH_MODES",
    "default_scheduler",
    "set_default_scheduler",
    "default_dispatch",
    "set_default_dispatch",
]

#: timer-store implementations selectable via ``Simulator(scheduler=...)``
SCHEDULERS = ("heap", "wheel")

_default_scheduler = os.environ.get("REPRO_SIM_SCHEDULER") or "heap"

#: cohort-execution modes selectable via ``Simulator(dispatch=...)``:
#: ``"cohort"`` (default) collapses same-timestamp cohort runs into one
#: queue entry; ``"scalar"`` is the one-event-per-member reference path.
DISPATCH_MODES = ("scalar", "cohort")

_default_dispatch = os.environ.get("REPRO_SIM_DISPATCH") or "cohort"


def default_scheduler() -> str:
    """The scheduler used when ``Simulator(scheduler=None)``."""
    return _default_scheduler


def set_default_scheduler(name: str) -> str:
    """Set the process-wide default scheduler; returns the previous one."""
    global _default_scheduler
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; choose from {SCHEDULERS}")
    previous = _default_scheduler
    _default_scheduler = name
    return previous


def default_dispatch() -> str:
    """The cohort-dispatch mode used when ``Simulator(dispatch=None)``."""
    return _default_dispatch


def set_default_dispatch(name: str) -> str:
    """Set the process-wide default dispatch mode; returns the previous one."""
    global _default_dispatch
    if name not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {name!r}; choose from {DISPATCH_MODES}"
        )
    previous = _default_dispatch
    _default_dispatch = name
    return previous


class _FnCallback:
    """Adapter invoking a zero-argument function as an event callback.

    ``call_in`` runs on hot paths (EC2 state machines, retry timers); a
    slotted adapter avoids allocating a fresh closure cell per call the
    way ``lambda _ev: fn()`` would.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def __call__(self, _event: SimEvent) -> None:
        self.fn()


class Simulator:
    """Event loop with a virtual clock measured in seconds."""

    __slots__ = (
        "_now",
        "_queue",
        "_pending",
        "_immediate",
        "_wheel",
        "_scheduler",
        "_dispatch",
        "_cohort_extra",
        "_eid",
        "_active_process",
        "events_processed",
        "peak_queue_depth",
        "obs",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: str | None = None,
        dispatch: str | None = None,
    ) -> None:
        self._now = float(initial_time)
        if scheduler is None:
            scheduler = _default_scheduler
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self._scheduler = scheduler
        if dispatch is None:
            dispatch = _default_dispatch
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {dispatch!r}; choose from {DISPATCH_MODES}"
            )
        self._dispatch = dispatch
        #: cohort members collapsed into pending slice entries but not yet
        #: fired: added to every queue-depth sample so both dispatch modes
        #: report identical depths for the same logical state.
        self._cohort_extra = 0
        #: calendar-queue timer store when ``scheduler="wheel"``; ``None``
        #: selects the binary-heap fast path below.
        self._wheel: Optional[CalendarQueue] = (
            CalendarQueue(start_time=self._now) if scheduler == "wheel" else None
        )
        #: timed/prioritised events as ``(time, key, event)`` where
        #: ``key = (priority << 53) + insertion-id`` packs the tiebreak
        #: into one integer: URGENT keys are negative, NORMAL keys are the
        #: bare insertion id, LAZY keys exceed 2**53.  One comparison
        #: level instead of two, and a smaller tuple per entry.
        self._queue: list[tuple[float, int, SimEvent]] = []
        #: timed entries scheduled but not yet sifted into the heap.  Bulk
        #: loads (staging thousands of timers before the first pop) flush
        #: with one O(n) ``heapify`` instead of n O(log n) pushes; trickle
        #: inserts fall back to ``heappush``.  Pop order depends only on
        #: the (unique) sort keys, so the internal arrangement produced by
        #: either flush path yields identical event ordering.
        self._pending: list[tuple[float, int, SimEvent]] = []
        #: zero-delay NORMAL events at the current time: (insertion id, event)
        self._immediate: deque[tuple[int, SimEvent]] = deque()
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: events popped and executed since construction
        self.events_processed: int = 0
        #: high-water mark of pending events (heap + immediate deque)
        self.peak_queue_depth: int = 0
        #: observability recorder; the shared null singleton unless a
        #: :class:`~repro.simcore.context.SimContext` installs a live one.
        #: The hot drain loops never consult it — :meth:`run` checks
        #: ``obs.enabled`` once per call, so instrumentation off costs
        #: nothing per event.
        self.obs = NULL_RECORDER

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduler(self) -> str:
        """The timer-store implementation this simulator runs on."""
        return self._scheduler

    @property
    def dispatch(self) -> str:
        """The cohort-execution mode this simulator runs with."""
        return self._dispatch

    def provenance(self) -> dict:
        """The kernel facts a provenance bundle needs to reconstruct and
        cross-check this simulator: which scheduler/dispatch it ran under
        and the deterministic end-of-run counters a replay must match."""
        return {
            "scheduler": self._scheduler,
            "dispatch": self._dispatch,
            "now": self._now,
            "events_processed": self.events_processed,
            "peak_queue_depth": self.peak_queue_depth,
        }

    @property
    def queue_depth(self) -> int:
        """Number of scheduled-but-unprocessed events.

        Counts the zero-delay FIFO, the unflushed staging list, and every
        timer the active store holds — including the wheel's prepared run
        and far-future overflow entries — so both schedulers report the
        same depth for the same logical state.  Cohort members collapsed
        into pending slices count individually (``_cohort_extra``), so
        both dispatch modes report the same depth too.
        """
        wheel = self._wheel
        timers = len(wheel) if wheel is not None else len(self._queue)
        return (
            timers + len(self._pending) + len(self._immediate) + self._cohort_extra
        )

    # -- factories ---------------------------------------------------------
    def event(self) -> SimEvent:
        """Create a fresh, untriggered event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        return self.call_in(when - self._now, fn)

    def call_in(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        ev = Timeout(self, delay)
        ev.callbacks.append(_FnCallback(fn))
        return ev

    def schedule_cohort(
        self,
        times,
        apply,
        payload: object = None,
        entity_ids: object = None,
        layer: str = "cohort",
        cause: object = None,
    ) -> EventCohort:
        """Register N homogeneous timers as one struct-of-arrays cohort.

        ``times`` are absolute fire times (each >= now); ``apply(cohort,
        start, stop)`` is invoked by the kernel for member runs — per
        member under ``dispatch="scalar"``, per maximal consecutive
        equal-time run under ``dispatch="cohort"``.  See
        :class:`~repro.simcore.cohort.EventCohort` for the ordering and
        accounting contract.  ``cause`` is opaque causal baggage for
        observability (obs span id(s) readable by ``apply`` as
        ``cohort.cause``); the kernel ignores it.  Returns the cohort;
        its ``done`` event fires after the last member is applied.
        """
        return EventCohort(self, times, apply, payload, entity_ids, layer, cause)

    # -- scheduling --------------------------------------------------------
    # NOTE: the hot constructors (Timeout.__init__, SimEvent.succeed/fail)
    # inline this push to save a call per event; keep them in sync.
    def _schedule(self, event: SimEvent, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay == 0.0 and priority == NORMAL:
            self._immediate.append((next(self._eid), event))
        else:
            self._pending.append(
                (self._now + delay, (priority << 53) + next(self._eid), event)
            )

    def _flush_pending(self) -> None:
        """Merge deferred timed entries into the timer store (see ``_pending``)."""
        pending = self._pending
        wheel = self._wheel
        if wheel is not None:
            wheel.extend(pending)
            pending.clear()
            return
        queue = self._queue
        if len(pending) << 3 >= len(queue):
            queue.extend(pending)
            heapify(queue)
        else:
            for entry in pending:
                heappush(queue, entry)
        pending.clear()

    def _pop_next(self) -> tuple[float, SimEvent]:
        """Remove and return the next ``(time, event)`` in processing order."""
        if self._pending:
            self._flush_pending()
        immediate = self._immediate
        wheel = self._wheel
        if wheel is not None:
            if immediate:
                head = wheel.peek()
                if (
                    head is not None
                    and head[0] == self._now
                    and head[1] < immediate[0][0]
                ):
                    return wheel.pop()[0], head[2]
                return self._now, immediate.popleft()[1]
            try:
                when, _key, event = wheel.pop()
            except IndexError:
                raise EmptySchedule("no scheduled events") from None
            return when, event
        queue = self._queue
        if immediate:
            if queue:
                head = queue[0]
                # A heap entry beats the deque head only at the same
                # timestamp with a smaller packed (priority, insertion id)
                # key; deque entries are NORMAL, so bare-id comparison
                # suffices (URGENT keys are negative, LAZY keys > 2**53).
                if head[0] == self._now and head[1] < immediate[0][0]:
                    return heappop(queue)[0], head[2]
            return self._now, immediate.popleft()[1]
        if queue:
            when, _key, event = heappop(queue)
            return when, event
        raise EmptySchedule("no scheduled events")

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._immediate:
            return self._now
        if self._pending:
            self._flush_pending()
        wheel = self._wheel
        if wheel is not None:
            head = wheel.peek()
            return head[0] if head is not None else float("inf")
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        depth = self.queue_depth
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        when, event = self._pop_next()
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue time went backwards")
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if event._ok is False and not event._defused:
            # Nobody waited on a failed event: surface the error loudly.
            raise event.value  # type: ignore[misc]

    def _drain(self, until_f: Optional[float]) -> None:
        """The hot loop: run events until the queue empties or ``until_f``.

        Equivalent to ``while _queue: step()`` but with the scheduling
        structures bound to locals and all events of the current timestamp
        drained in one inner pass.  Ordering is identical to repeated
        ``step()`` calls; only the interpreter overhead differs.

        The queue-depth high-water mark is sampled where depth can peak:
        once on entry, then after each callback batch (only callbacks
        schedule new events; between batches depth strictly falls), plus
        once at exit for events left unprocessed by ``until_f``.  The
        maximum over those samples is the exact peak, and callback-less
        events (bare timers) pay nothing.

        ``scheduler="wheel"`` dispatches to :meth:`_drain_wheel`, the same
        loop inlined against the calendar queue, so the heap fast path
        below carries no per-event dispatch for the other store.
        """
        if self._wheel is not None:
            return self._drain_wheel(until_f)
        queue = self._queue
        pending = self._pending
        immediate = self._immediate
        pop_immediate = immediate.popleft
        flush = self._flush_pending
        now = self._now
        processed = 0
        peak = self.peak_queue_depth
        depth = len(queue) + len(pending) + len(immediate) + self._cohort_extra
        if depth > peak:
            peak = depth
        try:
            while True:
                if pending:
                    flush()
                if immediate:
                    event = None
                    if queue:
                        head = queue[0]
                        if head[0] == now and head[1] < immediate[0][0]:
                            event = heappop(queue)[2]
                    if event is None:
                        event = pop_immediate()[1]
                elif queue:
                    entry = heappop(queue)
                    when = entry[0]
                    if when > now:
                        if until_f is not None and when > until_f:
                            heappush(queue, entry)
                            now = until_f
                            return
                        now = when
                    event = entry[2]
                else:
                    if until_f is not None:
                        now = until_f
                    return
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    # Publish the clock only when user code is about to run;
                    # callback-less events (bare timers) skip the store.
                    self._now = now
                    for cb in callbacks:
                        cb(event)
                    depth = (
                        len(queue)
                        + len(pending)
                        + len(immediate)
                        + self._cohort_extra
                    )
                    if depth > peak:
                        peak = depth
                if event._ok is False and not event._defused:
                    raise event.value  # type: ignore[misc]
        finally:
            depth = len(queue) + len(pending) + len(immediate) + self._cohort_extra
            if depth > peak:
                peak = depth
            self._now = now
            self.events_processed += processed
            self.peak_queue_depth = peak

    def _drain_wheel(self, until_f: Optional[float]) -> None:
        """:meth:`_drain`, inlined against the calendar-queue timer store.

        The wheel's prepared run (``wheel._run``, a descending list whose
        minimum is the tail — never rebound, only mutated in place) is
        aliased as a local, so the common pop is a bare ``list.pop()``
        with no method dispatch; refills and staging flushes go through
        the wheel's bound methods.  Ordering and the depth high-water
        samples mirror the heap loop exactly.
        """
        wheel = self._wheel
        run = wheel._run
        pending = self._pending
        immediate = self._immediate
        pop_immediate = immediate.popleft
        flush = wheel.extend
        refill = wheel._refill
        now = self._now
        processed = 0
        peak = self.peak_queue_depth
        depth = len(wheel) + len(pending) + len(immediate) + self._cohort_extra
        if depth > peak:
            peak = depth
        # Timers only ever enter the wheel through the pending flush below
        # (callbacks schedule via _pending/_immediate), so an `idle` local
        # spares the drained wheel a refill() call per immediate event —
        # the heap loop's cheap `if queue:` equivalent.
        idle = not wheel
        try:
            while True:
                if pending:
                    flush(pending)
                    pending.clear()
                    idle = False
                if immediate:
                    event = None
                    if not run and not idle and not refill():
                        idle = True
                    if run:
                        head = run[-1]
                        if head[0] == now and head[1] < immediate[0][0]:
                            event = run.pop()[2]
                    if event is None:
                        event = pop_immediate()[1]
                elif run or (not idle and refill()):
                    entry = run.pop()
                    when = entry[0]
                    if when > now:
                        if until_f is not None and when > until_f:
                            # entry was the minimum: appending restores
                            # the run's descending order
                            run.append(entry)
                            now = until_f
                            return
                        now = when
                    event = entry[2]
                else:
                    if until_f is not None:
                        now = until_f
                    return
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    # Publish the clock only when user code is about to run;
                    # callback-less events (bare timers) skip the store.
                    self._now = now
                    for cb in callbacks:
                        cb(event)
                    # len(wheel) spelled out (tiers are rebindable, the
                    # run is not): a Python-level __len__ call per batch
                    # would dominate same-timestamp cascades.
                    depth = (
                        len(run)
                        + wheel._bucket_count
                        + len(wheel._segment)
                        + len(wheel._overflow)
                        + len(pending)
                        + len(immediate)
                        + self._cohort_extra
                    )
                    if depth > peak:
                        peak = depth
                if event._ok is False and not event._defused:
                    raise event.value  # type: ignore[misc]
        finally:
            depth = len(wheel) + len(pending) + len(immediate) + self._cohort_extra
            if depth > peak:
                peak = depth
            self._now = now
            self.events_processed += processed
            self.peak_queue_depth = peak

    def run(self, until: float | SimEvent | None = None) -> object:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute time), or an
        event (stop when it is processed, returning its value — or raising
        it, if the event failed).

        The per-simulator counters (:attr:`events_processed`,
        :attr:`peak_queue_depth`) **persist across calls**: each ``run()``
        accumulates onto the totals rather than resetting them, so a
        scenario staged as several ``run(until=...)`` phases reports the
        same counts as one uninterrupted drain.  Sample before/after a
        call to attribute counts to one phase.

        With a live observability recorder installed (see
        :mod:`repro.obs`), every call records a ``kernel.run`` span on the
        ``kernel`` track carrying the scheduler name and the number of
        events the call processed, and updates the ``kernel.events`` /
        ``kernel.runs`` counters and the ``kernel.peak_queue_depth``
        gauge.  The disabled recorder skips all of it after one flag test.
        """
        obs = self.obs
        if not obs.enabled:
            return self._run(until)
        span = obs.start("kernel.run", track="kernel", scheduler=self._scheduler)
        before = self.events_processed
        try:
            result = self._run(until)
        except BaseException as exc:
            span.set(events=self.events_processed - before)
            obs.finish(span, status="error", error=repr(exc))
            raise
        delta = self.events_processed - before
        span.set(events=delta)
        obs.finish(span)
        obs.counter("kernel.runs").inc()
        obs.counter("kernel.events").inc(delta)
        obs.gauge("kernel.peak_queue_depth").set(self.peak_queue_depth)
        return result

    def _run(self, until: float | SimEvent | None) -> object:
        stop_value: dict = {}
        until_f: Optional[float] = None
        if isinstance(until, SimEvent):
            if until.processed:
                if not until.ok:
                    raise until.value  # type: ignore[misc]
                return until.value
            def _stop(ev: SimEvent) -> None:
                stop_value["value"] = ev.value
                stop_value["ok"] = ev.ok
                raise StopSimulation()
            until.callbacks.append(_stop)
        elif until is not None:
            until_f = float(until)
            if until_f < self._now:
                raise ValueError(f"until ({until_f}) is in the past (now={self._now})")

        # Pause the cyclic garbage collector for the drain: the hot loop
        # allocates thousands of short-lived events/tuples per run, which
        # trips gen-0 collections constantly (measured ~35% of kernel
        # wall on the scale grid) while the kernel itself creates no
        # reference cycles that need collecting mid-run.  Re-enabled (and
        # nesting-safe) on exit; a deferred collection then reclaims any
        # cycles model code made.
        paused_gc = gc.isenabled()
        if paused_gc:
            gc.disable()
        try:
            self._drain(until_f)
        except StopSimulation:
            if not stop_value.get("ok", True):
                raise stop_value["value"]  # type: ignore[misc]
            return stop_value.get("value")
        finally:
            if paused_gc:
                gc.enable()
        if until_f is None and isinstance(until, SimEvent):
            raise SimulationError(
                "event queue drained before the awaited event triggered"
            )
        return None
