"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the event queue.  Components schedule
:class:`~repro.simcore.events.SimEvent` objects; processes (generators) are
driven by :class:`~repro.simcore.process.Process`.  Determinism: events at
equal times are processed in (priority, insertion order).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Optional

from .errors import EmptySchedule, SimulationError, StopSimulation
from .events import AllOf, AnyOf, SimEvent, Timeout
from .process import Process, ProcessGenerator

#: Priority used for "urgent" bookkeeping events (process initialization).
URGENT = -1
#: Default priority for ordinary events.
NORMAL = 0


class Simulator:
    """Event loop with a virtual clock measured in seconds."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, SimEvent]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- factories ---------------------------------------------------------
    def event(self) -> SimEvent:
        """Create a fresh, untriggered event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule in the past ({when} < {self._now})")
        return self.call_in(when - self._now, fn)

    def call_in(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _prio, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if not event.ok and not event.defused:
            # Nobody waited on a failed event: surface the error loudly.
            raise event.value  # type: ignore[misc]

    def run(self, until: float | SimEvent | None = None) -> object:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute time), or an
        event (stop when it is processed, returning its value).
        """
        stop_value: dict = {}
        if isinstance(until, SimEvent):
            if until.processed:
                return until.value
            def _stop(ev: SimEvent) -> None:
                stop_value["value"] = ev.value
                stop_value["ok"] = ev.ok
                raise StopSimulation()
            until.callbacks.append(_stop)
        elif until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(f"until ({until}) is in the past (now={self._now})")

        try:
            while self._queue:
                if isinstance(until, float) and self.peek() > until:
                    self._now = until
                    return None
                self.step()
        except StopSimulation:
            if not stop_value.get("ok", True):
                raise stop_value["value"]  # type: ignore[misc]
            return stop_value.get("value")
        if isinstance(until, float):
            self._now = until
        elif isinstance(until, SimEvent):
            raise SimulationError(
                "event queue drained before the awaited event triggered"
            )
        return None
