"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`SimEvent` objects.
When a yielded event triggers, the process resumes with the event's value
(or the event's exception is thrown into the generator).  A process is
itself an event that triggers when the generator returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from .errors import Interrupt, SimulationError
from .events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

ProcessGenerator = Generator[SimEvent, object, object]


class _Initialize(SimEvent):
    """Immediate event that starts a process on the next kernel step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, delay=0.0, priority=-1)


class Process(SimEvent):
    """A running process; also an event that fires when the process ends."""

    __slots__ = ("name", "_generator", "_target")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Event the process is currently waiting on (None once finished).
        self._target: SimEvent | None = _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process, or a process from within itself, is an
        error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever the process was waiting on, then resume it
        # with the interrupt via an immediate event.
        target = self._target
        if target is not None and not target.processed and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_ev = SimEvent(self.sim)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev.fail(Interrupt(cause))
        interrupt_ev.defused = True

    def _resume(self, event: SimEvent) -> None:
        """Advance the generator with ``event``'s outcome.

        ``event`` is always processed here, so the raw ``_ok``/``_value``
        slots are read directly — this loop runs once per context switch.
        """
        self.sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        event._defused = True
                        next_event = self._generator.throw(event._value)  # type: ignore[arg-type]
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except Interrupt:
                    # The generator let an interrupt escape: treat it as an
                    # ordinary failure of the process.
                    self._target = None
                    exc = SimulationError(f"{self.name} died of unhandled Interrupt")
                    self.fail(exc)
                    return
                except Exception as exc:
                    # The process raised: fail the process event.  Waiters
                    # receive the exception; with no waiters the kernel
                    # surfaces it at the next step.
                    self._target = None
                    self.fail(exc)
                    return
                if not isinstance(next_event, SimEvent):
                    exc = SimulationError(
                        f"{self.name} yielded a non-event: {next_event!r}"
                    )
                    self._target = None
                    self._generator.close()
                    self.fail(exc)
                    return
                if next_event.sim is not self.sim:
                    raise SimulationError("yielded event belongs to another simulator")
                self._target = next_event
                if next_event.callbacks is None:  # processed
                    # Already happened: loop and feed it straight back in.
                    event = next_event
                    continue
                next_event.callbacks.append(self._resume)
                return
        finally:
            self.sim._active_process = None
