"""Discrete-event simulation kernel underpinning the whole reproduction.

Public API::

    from repro.simcore import SimContext, Simulator

    ctx = SimContext(seed=42)

    def proc(ctx):
        yield ctx.sim.timeout(5.0)
        return "done"

    p = ctx.sim.process(proc(ctx))
    ctx.sim.run(until=p)   # -> "done", ctx.now == 5.0
"""

from .calendar import CalendarQueue
from .cohort import COHORT_SIZE_BUCKETS, EventCohort
from .context import SimContext, TraceLog, TraceRecord
from .errors import (
    EmptySchedule,
    Interrupt,
    SimulationError,
    StopSimulation,
    UntriggeredEvent,
)
from .events import LAZY, NORMAL, URGENT, AllOf, AnyOf, SimEvent, Timeout
from .kernel import (
    DISPATCH_MODES,
    SCHEDULERS,
    Simulator,
    default_dispatch,
    default_scheduler,
    set_default_dispatch,
    set_default_scheduler,
)
from .process import Process
from .resources import Container, PriorityResource, Request, Resource, Store
from .rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "COHORT_SIZE_BUCKETS",
    "CalendarQueue",
    "Container",
    "DISPATCH_MODES",
    "EmptySchedule",
    "EventCohort",
    "Interrupt",
    "LAZY",
    "NORMAL",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "SCHEDULERS",
    "SimContext",
    "SimEvent",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "URGENT",
    "UntriggeredEvent",
    "default_dispatch",
    "default_scheduler",
    "set_default_dispatch",
    "set_default_scheduler",
]
