"""The Sec. V-A use case as a benchmark: baseline vs elastic scale-up."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import CloudTestbed
from ..core.usecase import UseCaseResult, run_usecase
from ..reporting import Comparison, render_table

PAPER_BASELINE_MIN = 10.7
PAPER_SCALED_MIN = 6.9


@dataclass
class UseCaseBench:
    baseline: UseCaseResult
    scaled: UseCaseResult

    def check_shape(self) -> None:
        assert self.scaled.steps34_minutes < self.baseline.steps34_minutes * 0.8
        assert self.scaled.step4_job.machine == "simple-condor-wn2"
        assert self.scaled.update_seconds < 600

    def render(self) -> str:
        table = render_table(
            ["scenario", "steps 3+4 (min)", "step-4 machine", "update (s)"],
            [
                (
                    "small cluster",
                    f"{self.baseline.steps34_minutes:.1f}",
                    self.baseline.step4_job.machine,
                    "-",
                ),
                (
                    "after adding c1.medium",
                    f"{self.scaled.steps34_minutes:.1f}",
                    self.scaled.step4_job.machine,
                    f"{self.scaled.update_seconds:.0f}",
                ),
            ],
            title="Use case (Sec. V-A): dynamic cluster expansion",
        )
        cmp = Comparison("Use case paper-vs-measured")
        cmp.add("steps 3+4 small (min)", PAPER_BASELINE_MIN,
                round(self.baseline.steps34_minutes, 2))
        cmp.add("steps 3+4 scaled (min)", PAPER_SCALED_MIN,
                round(self.scaled.steps34_minutes, 2))
        return table + "\n\n" + cmp.render()


def run(seed: int = 0) -> UseCaseBench:
    baseline = run_usecase(
        bed=CloudTestbed(seed=seed), scale_up_with=None
    )
    scaled = run_usecase(
        bed=CloudTestbed(seed=seed), scale_up_with="c1.medium"
    )
    return UseCaseBench(baseline=baseline, scaled=scaled)
