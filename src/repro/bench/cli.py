"""``gp-bench`` / ``python -m repro.bench``: run benchmark suites.

Examples::

    gp-bench --list                         # what would run
    gp-bench --smoke --workers 4            # CI smoke sweep, fanned out
    gp-bench scale --workers 4 --json-out suite.json --trajectory
    gp-bench fig10 fig11 --workers 2        # a subset of suites
    gp-bench usecase --smoke --obs-out obs/ # spans: Chrome trace + summary

Exit status is non-zero if any task failed or timed out — or if an
otherwise-ok task's payload reports ``tasks_failed > 0`` — so CI can
gate on the sweep directly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..obs import chrome_trace, critpath_doc, spans_jsonl, summary_table, timeseries_jsonl
from ..simcore import DISPATCH_MODES, SCHEDULERS, default_dispatch, default_scheduler
from . import suites, trajectory
from .harness import run_suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gp-bench",
        description="Fan the benchmark suites out across worker processes.",
    )
    parser.add_argument(
        "suites",
        nargs="*",
        metavar="SUITE",
        help=f"suites to run (default: all of {', '.join(suites.names())})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the smoke shapes (same code paths, seconds not minutes)",
    )
    parser.add_argument(
        "-w", "--workers",
        type=int,
        default=1,
        help="worker processes; 1 = sequential in-process (default)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-task timeout in seconds when workers > 1 (default 600)",
    )
    parser.add_argument(
        "--scheduler",
        choices=list(SCHEDULERS),
        default=None,
        help=(
            "kernel event queue for every task: 'heap' (binary heap) or"
            " 'wheel' (calendar queue); sim JSON is byte-identical under"
            f" either (default: {default_scheduler()!r}, settable via"
            " REPRO_SIM_SCHEDULER)"
        ),
    )
    parser.add_argument(
        "--dispatch",
        choices=list(DISPATCH_MODES),
        default=None,
        help=(
            "cohort dispatch mode for every task: 'cohort' (struct-of-"
            "arrays batch pops) or 'scalar' (one event per member, the"
            " reference path); sim JSON is byte-identical under either"
            f" (default: {default_dispatch()!r}, settable via"
            " REPRO_SIM_DISPATCH; see --list for which suites schedule"
            " cohorts)"
        ),
    )
    parser.add_argument(
        "--json-out",
        type=pathlib.Path,
        help="write the merged suite result (JSON) here",
    )
    parser.add_argument(
        "--sim-json-out",
        type=pathlib.Path,
        help="write the host-independent simulation metrics (JSON) here",
    )
    parser.add_argument(
        "--obs-out",
        type=pathlib.Path,
        metavar="DIR",
        help=(
            "record spans/metrics in every task and write, per suite, a"
            " Chrome trace_event JSON (Perfetto-loadable), a JSONL span"
            " log, and a text summary into DIR; simulation results are"
            " unaffected (see --list for which suites record spans)"
        ),
    )
    parser.add_argument(
        "--critpath-out",
        type=pathlib.Path,
        metavar="DIR",
        help=(
            "record spans in every task and write, per suite, the causal"
            " critical-path document (<suite>.critpath.json: makespan-"
            "dominating chain + per-layer attribution) into DIR, plus a"
            " rendered attribution table on stdout; implies span capture"
        ),
    )
    parser.add_argument(
        "--bundle-out",
        type=pathlib.Path,
        metavar="DIR",
        help=(
            "export a provenance bundle (topology + calibration digest +"
            " scenario/seeds + span log + sim JSON) into DIR as"
            " <suite>.bundle.json; implies span capture; replay/verify it"
            " with gp-replay"
        ),
    )
    parser.add_argument(
        "--trajectory",
        nargs="?",
        type=pathlib.Path,
        const=trajectory.DEFAULT_PATH,
        default=None,
        metavar="PATH",
        help=f"append a perf-trajectory record (default path: {trajectory.DEFAULT_PATH})",
    )
    parser.add_argument(
        "--commit", help="override the commit stamped into the trajectory record"
    )
    parser.add_argument(
        "--date", help="override the date stamped into the trajectory record"
    )
    parser.add_argument(
        "--list", action="store_true", help="list suites and specs, then exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-task progress lines"
    )
    return parser


def _list_suites(smoke: bool) -> None:
    for name in suites.names():
        suite = suites.get(name, smoke=smoke)
        obs = "obs-out: yes" if suite.supports_obs else "obs-out: no"
        cohort = "cohorts: yes" if suite.cohort_eligible else "cohorts: no"
        print(
            f"{name}: {suite.description}"
            f" ({len(suite.specs)} specs, {obs}, {cohort})"
        )
        for spec in suite.specs:
            print(f"  {spec.name}  [{spec.task}] {spec.params or ''}")


def write_obs_outputs(result, out_dir: pathlib.Path) -> list[pathlib.Path]:
    """Write per-suite trace artefacts from a suite result's obs docs.

    Tasks are grouped by the suite prefix of their spec name
    (``fig10/m1.small/w1`` -> ``fig10``), so a combined run still yields
    one trace file set per constituent suite.  Returns the written paths.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for group, docs in sorted(_obs_groups(result).items()):
        trace_path = out_dir / f"{group}.trace.json"
        trace_path.write_text(json.dumps(chrome_trace(docs), sort_keys=True) + "\n")
        written.append(trace_path)
        jsonl_path = out_dir / f"{group}.spans.jsonl"
        jsonl_path.write_text(spans_jsonl(docs))
        written.append(jsonl_path)
        series_path = out_dir / f"{group}.timeseries.jsonl"
        series_path.write_text(timeseries_jsonl(docs))
        written.append(series_path)
        summary_path = out_dir / f"{group}.summary.txt"
        summary_path.write_text(
            summary_table(docs, title=f"{group}: span summary (sim-seconds)") + "\n"
        )
        written.append(summary_path)
    return written


def _obs_groups(result) -> dict[str, list[dict]]:
    """Obs docs grouped by the suite prefix of their spec name."""
    groups: dict[str, list[dict]] = {}
    for t in result.tasks:
        if not t.obs:
            continue
        groups.setdefault(t.spec.name.split("/", 1)[0], []).extend(t.obs)
    return groups


def write_critpath_outputs(result, out_dir: pathlib.Path) -> list[pathlib.Path]:
    """Write per-suite ``.critpath.json`` documents; returns the paths.

    Built purely from spans (never metrics), with deterministic tie
    breaks — the files are byte-identical across scheduler and dispatch
    choices, which CI pins.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for group, docs in sorted(_obs_groups(result).items()):
        doc = critpath_doc(docs, suite=group)
        path = out_dir / f"{group}.critpath.json"
        path.write_text(json.dumps(doc, sort_keys=True) + "\n")
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    for name in args.suites:
        if name not in suites.names():
            print(
                f"error: unknown suite {name!r}; known: {', '.join(suites.names())}",
                file=sys.stderr,
            )
            return 2

    if args.list:
        _list_suites(args.smoke)
        return 0

    suite = suites.combined(args.suites or None, smoke=args.smoke)
    if args.obs_out and not suite.supports_obs:
        print(
            "note: none of the selected suites drives a simulation;"
            " --obs-out will record no spans",
            file=sys.stderr,
        )
    if args.dispatch and not suite.cohort_eligible:
        print(
            "note: none of the selected suites schedules event cohorts;"
            " --dispatch will not change anything",
            file=sys.stderr,
        )
    mode = f"{args.workers} workers" if args.workers > 1 else "sequential"
    sched = f", scheduler={args.scheduler}" if args.scheduler else ""
    disp = f", dispatch={args.dispatch}" if args.dispatch else ""
    capture_spans = (
        args.obs_out is not None
        or args.bundle_out is not None
        or args.critpath_out is not None
    )
    obs_note = ", obs" if capture_spans else ""
    print(
        f"running suite {suite.name!r}: {len(suite.specs)} specs,"
        f" {mode}{sched}{disp}{obs_note}"
    )

    progress = None
    if not args.quiet:
        def progress(result):
            print(f"  {result.spec.name:<40} {result.status:<8} {result.wall_seconds:.3f}s")

    result = run_suite(
        suite,
        workers=args.workers,
        default_timeout_s=args.timeout,
        progress=progress,
        scheduler=args.scheduler,
        obs=capture_spans,
        dispatch=args.dispatch,
    )

    print()
    print(result.render())

    if args.json_out:
        args.json_out.write_text(result.to_json() + "\n")
        print(f"wrote {args.json_out}")
    if args.sim_json_out:
        args.sim_json_out.write_text(result.sim_json() + "\n")
        print(f"wrote {args.sim_json_out}")
    if args.obs_out:
        for path in write_obs_outputs(result, args.obs_out):
            print(f"wrote {path}")
    if args.critpath_out:
        # imported lazily like the other reporting renderers
        from ..reporting import render_critpath

        for path in write_critpath_outputs(result, args.critpath_out):
            print(f"wrote {path}")
            doc = json.loads(path.read_text())
            print(render_critpath(doc))
    if args.bundle_out:
        # imported lazily: most gp-bench invocations never bundle, and
        # the provenance package pulls in the replay machinery
        from ..provenance import build_bundle, write_bundle

        bundle = build_bundle(result)
        bundle_path = write_bundle(bundle, args.bundle_out / f"{suite.name}.bundle.json")
        print(f"wrote {bundle_path} (digest {bundle.digest()[:12]}...)")

    if args.trajectory is not None:
        record = trajectory.from_suite_result(
            result, commit=args.commit, date=args.date
        )
        records = trajectory.append(record, args.trajectory)
        print()
        print(trajectory.render(records, last=10))
        print(f"appended to {args.trajectory}")

    payload_failures = result.payload_failures()
    if payload_failures and result.ok:
        print(
            f"error: {payload_failures} work unit(s) failed inside"
            " otherwise-ok tasks (payload tasks_failed > 0)",
            file=sys.stderr,
        )
    return 0 if result.ok and payload_failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
