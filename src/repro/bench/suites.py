"""Suite registry: the paper's evaluation matrix as fan-out columns.

Each named suite maps a paper artefact (or the scale grid) onto
independent :class:`~repro.bench.harness.BenchSpec` columns.  Every
suite comes in two shapes: the full matrix, and a ``smoke`` variant that
exercises the same code paths in well under a minute for tier-1 and CI.

Task payloads are plain JSON documents; where a driver renders an ASCII
artefact (Fig. 11, the use case, the ablations) the rendered table rides
along in the payload under ``"rendered"`` so the merged suite JSON can
rebuild ``benchmarks/results/`` without re-running anything.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import asdict, replace

from .. import calibration
from . import (
    ablations,
    figure10,
    figure11,
    pricing_sweep,
    scale,
    storage_ablation,
    usecase,
    waas,
)
from .harness import BenchSpec, BenchSuite, task

# ---------------------------------------------------------------------------
# Tasks (referenced by name so specs stay picklable/JSON-serializable)
# ---------------------------------------------------------------------------


@task("fig10.column")
def fig10_column(instance_type: str, cluster_nodes: int = 1, seed: int = 0) -> dict:
    row = figure10.run_one(instance_type, seed=seed, cluster_nodes=cluster_nodes)
    return asdict(row)


@task("fig11.sweep")
def fig11_sweep(sizes: list[int] | None = None, seed: int = 0) -> dict:
    result = figure11.run(sizes=sizes, seed=seed)
    result.check_shape()
    return {"sizes": result.sizes, "rates": result.rates, "rendered": result.render()}


@task("usecase.expansion")
def usecase_expansion(seed: int = 0) -> dict:
    bench = usecase.run(seed=seed)
    bench.check_shape()
    return {
        "baseline_min": bench.baseline.steps34_minutes,
        "scaled_min": bench.scaled.steps34_minutes,
        "step4_machine": bench.scaled.step4_job.machine,
        "update_seconds": bench.scaled.update_seconds,
        "rendered": bench.render(),
    }


@task("scale.run")
def scale_run(**config_kwargs) -> dict:
    result = scale.run(scale.ScaleConfig(**config_kwargs))
    result.check_shape()
    return result.to_dict()


@task("pricing.sweep")
def pricing_sweep_run(**config_kwargs) -> dict:
    result = pricing_sweep.run(pricing_sweep.PricingSweepConfig(**config_kwargs))
    result.check_shape()
    return result.to_dict()


@task("waas.run")
def waas_run(**config_kwargs) -> dict:
    result = waas.run(waas.WaasConfig(**config_kwargs))
    result.check_shape()
    return result.to_dict()


@task("storage.ablation")
def storage_ablation_run(**config_kwargs) -> dict:
    if "backends" in config_kwargs:
        config_kwargs["backends"] = tuple(config_kwargs["backends"])
    result = storage_ablation.run(
        storage_ablation.StorageAblationConfig(**config_kwargs)
    )
    result.check_shape()
    return result.to_dict()


@task("ablations.ami")
def ablation_ami(seed: int = 0) -> dict:
    result = ablations.run_ami_ablation(seed=seed)
    result.check_shape()
    return {
        "stock_seconds": result.stock_seconds,
        "custom_seconds": result.custom_seconds,
        "speedup": result.speedup,
        "rendered": result.render(),
    }


@task("ablations.billing")
def ablation_billing(seed: int = 0) -> dict:
    result = ablations.run_billing_ablation(seed=seed)
    result.check_shape()
    return {
        "proportional_usd": result.proportional_usd,
        "hourly_usd": result.hourly_usd,
        "ec2_2012_usd": result.ec2_2012_usd,
        "rendered": result.render(),
    }


@task("ablations.pool_width")
def ablation_pool_width(widths: list[int] | None = None, seed: int = 0) -> dict:
    result = ablations.run_pool_width_ablation(widths=widths, seed=seed)
    result.check_shape()
    return {
        "widths": result.widths,
        "makespans_s": result.makespans_s,
        "rendered": result.render(),
    }


@task("ablations.streams")
def ablation_streams(streams: list[int] | None = None, seed: int = 0) -> dict:
    result = ablations.run_stream_ablation(streams=streams, seed=seed)
    result.check_shape()
    return {
        "streams": result.streams,
        "rates_mbps": result.rates_mbps,
        "rendered": result.render(),
    }


@task("ablations.batching")
def ablation_batching(n_files: int = 12, seed: int = 0) -> dict:
    result = ablations.run_batching_ablation(n_files=n_files, seed=seed)
    result.check_shape()
    return {
        "n_files": result.n_files,
        "batched_seconds": result.batched_seconds,
        "individual_seconds": result.individual_seconds,
        "speedup": result.speedup,
        "rendered": result.render(),
    }


# Harness self-test tasks: scripted failure modes for the isolation and
# timeout machinery (kept here so freshly-spawned workers can resolve
# them under any start method).


@task("selftest.sleep")
def selftest_sleep(seconds: float = 0.1) -> dict:
    _time.sleep(seconds)
    return {"slept": seconds}


@task("selftest.boom")
def selftest_boom(message: str = "scripted failure") -> dict:
    raise RuntimeError(message)


@task("selftest.exit")
def selftest_exit(code: int = 13) -> dict:
    os._exit(code)  # hard crash: no exception, no cleanup


@task("selftest.poisoned")
def selftest_poisoned(tasks_failed: int = 1) -> dict:
    """An "ok" task whose payload admits it lost work — exercises the
    CLI's payload-level ``tasks_failed`` gate."""
    return {"looks": "fine", "tasks_failed": tasks_failed}


# ---------------------------------------------------------------------------
# Suites
# ---------------------------------------------------------------------------

#: cluster widths the full Fig. 10 matrix sweeps per instance type
FIG10_FULL_WIDTHS = (1, 2, 4, 8)

#: the full scale grid: the headline config plus shape/seed variants
SCALE_FULL_GRID = (
    scale.FULL_CONFIG,
    replace(scale.FULL_CONFIG, workers=61, transfers=250, jobs=1000),
    replace(scale.FULL_CONFIG, workers=253, transfers=750, jobs=3000, file_mb=32),
    replace(scale.FULL_CONFIG, seed=1),
)

#: tiny shapes exercising the same code paths in milliseconds
SCALE_SMOKE_GRID = (
    scale.SMOKE_CONFIG,
    replace(scale.SMOKE_CONFIG, seed=1),
    replace(scale.SMOKE_CONFIG, workers=8, transfers=10, jobs=40),
)

#: the full pricing sweep: thousands of archives, two seeds, a wide-range
#: column (estimator only — no event loop, so even 10k jobs are cheap)
PRICING_FULL_GRID = (
    pricing_sweep.FULL_CONFIG,
    replace(pricing_sweep.FULL_CONFIG, n_jobs=10000),
    replace(pricing_sweep.FULL_CONFIG, n_jobs=10000, seed=1, max_mb=2048.0),
)

PRICING_SMOKE_GRID = (
    pricing_sweep.SMOKE_CONFIG,
    replace(pricing_sweep.SMOKE_CONFIG, n_jobs=150, seed=1),
)


def _scale_spec(config: scale.ScaleConfig) -> BenchSpec:
    name = (
        f"scale/n{config.nodes}-t{config.transfers}"
        f"-j{config.jobs}-f{config.file_mb}-s{config.seed}"
    )
    return BenchSpec(name=name, task="scale.run", params=asdict(config))


def fig10_suite(smoke: bool = False) -> BenchSuite:
    widths = (1,) if smoke else FIG10_FULL_WIDTHS
    specs = tuple(
        BenchSpec(
            name=f"fig10/{itype}/w{width}",
            task="fig10.column",
            params={"instance_type": itype, "cluster_nodes": width},
        )
        for itype in figure10.INSTANCE_TYPES
        for width in widths
    )
    return BenchSuite(
        "fig10", "Fig. 10 matrix: instance type x cluster width", specs
    )


def fig11_suite(smoke: bool = False) -> BenchSuite:
    params = {"sizes": [calibration.MB, 100 * calibration.MB]} if smoke else {}
    return BenchSuite(
        "fig11",
        "Fig. 11: transfer rate by method and file size",
        (BenchSpec(name="fig11/sweep", task="fig11.sweep", params=params),),
    )


def usecase_suite(smoke: bool = False) -> BenchSuite:
    return BenchSuite(
        "usecase",
        "Sec. V-A use case: baseline vs elastic scale-up",
        (BenchSpec(name="usecase/expansion", task="usecase.expansion"),),
    )


def scale_suite(smoke: bool = False) -> BenchSuite:
    grid = SCALE_SMOKE_GRID if smoke else SCALE_FULL_GRID
    return BenchSuite(
        "scale",
        "Scale grid: production-size deployments as kernel stress tests",
        tuple(_scale_spec(cfg) for cfg in grid),
    )


def _pricing_spec(config: pricing_sweep.PricingSweepConfig) -> BenchSpec:
    name = (
        f"pricing/n{config.n_jobs}-mb{config.min_mb:g}-{config.max_mb:g}"
        f"-s{config.seed}"
    )
    return BenchSpec(name=name, task="pricing.sweep", params=asdict(config))


def pricing_sweep_suite(smoke: bool = False) -> BenchSuite:
    grid = PRICING_SMOKE_GRID if smoke else PRICING_FULL_GRID
    return BenchSuite(
        "pricing_sweep",
        "Vectorized batch pricing across the Fig. 10 instance grid",
        tuple(_pricing_spec(cfg) for cfg in grid),
        # closed-form estimator: builds no SimContext, records no spans,
        # schedules no cohorts — --obs-out and --dispatch are both no-ops
        supports_obs=False,
        cohort_eligible=False,
    )


def _waas_spec(config: waas.WaasConfig) -> BenchSpec:
    name = (
        f"waas/{config.policy}/t{config.tenants}-w{config.workflows}"
        f"-s{config.seed}"
    )
    return BenchSpec(name=name, task="waas.run", params=asdict(config))


def waas_suite(smoke: bool = False) -> BenchSuite:
    grid = waas.SMOKE_GRID if smoke else waas.FULL_GRID
    return BenchSuite(
        "waas",
        "WaaS multi-tenant front door: SLA vs cost per elasticity policy",
        tuple(_waas_spec(cfg) for cfg in grid),
    )


def storage_ablation_suite(smoke: bool = False) -> BenchSuite:
    itypes = (
        storage_ablation.SMOKE_INSTANCE_TYPES
        if smoke
        else storage_ablation.FULL_INSTANCE_TYPES
    )
    specs = tuple(
        BenchSpec(
            name=f"storage/{itype}",
            task="storage.ablation",
            params={"instance_type": itype},
        )
        for itype in itypes
    )
    return BenchSuite(
        "storage_ablation",
        "Data-sharing backends: use-case workload per backend x instance type",
        specs,
    )


def ablations_suite(smoke: bool = False) -> BenchSuite:
    specs = (
        BenchSpec(name="ablations/ami", task="ablations.ami"),
        BenchSpec(name="ablations/billing", task="ablations.billing"),
        BenchSpec(
            name="ablations/pool_width",
            task="ablations.pool_width",
            params={"widths": [1, 4]} if smoke else {},
        ),
        BenchSpec(
            name="ablations/streams",
            task="ablations.streams",
            params={"streams": [1, 4]} if smoke else {},
        ),
        BenchSpec(
            name="ablations/batching",
            task="ablations.batching",
            params={"n_files": 6} if smoke else {},
        ),
    )
    return BenchSuite("ablations", "Design-choice ablations (DESIGN.md)", specs)


SUITE_BUILDERS = {
    "fig10": fig10_suite,
    "fig11": fig11_suite,
    "usecase": usecase_suite,
    "scale": scale_suite,
    "pricing_sweep": pricing_sweep_suite,
    "ablations": ablations_suite,
    "waas": waas_suite,
    "storage_ablation": storage_ablation_suite,
}


def names() -> list[str]:
    return list(SUITE_BUILDERS)


def get(name: str, smoke: bool = False) -> BenchSuite:
    try:
        builder = SUITE_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; known: {names()}") from None
    return builder(smoke=smoke)


def combined(selected: list[str] | None = None, smoke: bool = False) -> BenchSuite:
    """Merge the selected suites (default: all) into one ordered suite."""
    selected = list(selected) if selected else names()
    specs: list[BenchSpec] = []
    supports_obs = False
    cohort_eligible = False
    for name in selected:
        suite = get(name, smoke=smoke)
        specs.extend(suite.specs)
        supports_obs = supports_obs or suite.supports_obs
        cohort_eligible = cohort_eligible or suite.cohort_eligible
    if selected == names():
        label = "smoke" if smoke else "full"
    else:
        label = "+".join(selected) + ("-smoke" if smoke else "")
    return BenchSuite(
        label,
        f"suites: {', '.join(selected)}",
        tuple(specs),
        supports_obs,
        cohort_eligible,
    )
