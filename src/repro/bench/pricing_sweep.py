"""Pricing sweep: Fig. 10 economics for thousands of archives at once.

The figure-10 driver prices one use-case run per instance type through
the discrete-event simulator; this benchmark prices a whole synthetic
CRData sweep — thousands of `affyDifferentialExpression`-style archives
across the same instance grid — through the closed-form vectorized
estimator (``repro.cloud.estimator``), with two built-in checks:

* **equivalence**: a slice of the batch is re-priced with the scalar
  per-sample loop and must match the vectorized result exactly;
* **anchors**: the estimator's use-case column sums must land on the
  Fig. 10 step-3+4 anchors (642/414/324/276 s) that the event-driven
  simulator pins, without running the event loop.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from ..cloud.estimator import (
    estimate_batch,
    estimate_scalar_loop,
    estimate_usecase_steps34,
)
from ..crdata import USECASE_TOOL_ID
from ..crdata.catalog import build_crdata_tools
from ..reporting import render_table
from ..workloads import make_pricing_sweep_sizes
from .figure10 import PAPER_EXEC_MIN

#: paper anchors in seconds (Fig. 10 exec minutes x 60)
ANCHOR_STEPS34_S = {t: m * 60.0 for t, m in PAPER_EXEC_MIN.items()}

#: the estimator may sit this far off the paper anchors (the fitted
#: calibration itself lands ~1.2% high on m1.small)
ANCHOR_REL_TOL = 0.02


@dataclass(frozen=True)
class PricingSweepConfig:
    """One sweep column: batch size, size range, and RNG seed."""

    n_jobs: int = 2000
    seed: int = 0
    min_mb: float = 1.0
    max_mb: float = 512.0
    #: how many leading rows are re-priced with the scalar loop for the
    #: equivalence check (clamped to ``n_jobs``)
    scalar_check_jobs: int = 256


SMOKE_CONFIG = PricingSweepConfig(n_jobs=200, scalar_check_jobs=200)
FULL_CONFIG = PricingSweepConfig(n_jobs=2000)


@dataclass
class PricingSweepResult:
    config: PricingSweepConfig
    instance_types: list[str]
    total_seconds: dict[str, float]
    total_cost_usd: dict[str, float]
    anchor_seconds: dict[str, float]
    anchor_rel_err: dict[str, float]
    scalar_check_jobs: int
    scalar_max_abs_diff: float
    cheapest: str
    fastest: str
    #: host-dependent throughput figures (stripped from sim JSON)
    jobs_per_sec: float = 0.0
    speedup_vs_scalar: float = 0.0

    def check_shape(self) -> None:
        """The invariants the sweep guarantees; raises AssertionError."""
        assert self.scalar_max_abs_diff == 0.0, (
            f"vectorized estimate drifted from the scalar loop by "
            f"{self.scalar_max_abs_diff}"
        )
        for itype, err in self.anchor_rel_err.items():
            assert err <= ANCHOR_REL_TOL, (
                f"{itype}: estimator {self.anchor_seconds[itype]:.1f}s is "
                f"{err:.1%} off the {ANCHOR_STEPS34_S[itype]:.0f}s anchor"
            )
        secs = [self.total_seconds[t] for t in self.instance_types]
        costs = [self.total_cost_usd[t] for t in self.instance_types]
        assert secs == sorted(secs, reverse=True), "batch time must fall with size"
        assert costs == sorted(costs), "batch cost must rise with size"
        assert self.cheapest == self.instance_types[0]
        assert self.fastest == self.instance_types[-1]

    def to_dict(self) -> dict:
        doc = {
            "config": asdict(self.config),
            "instance_types": list(self.instance_types),
            "total_seconds": dict(self.total_seconds),
            "total_cost_usd": dict(self.total_cost_usd),
            "anchor_seconds": dict(self.anchor_seconds),
            "anchor_rel_err": dict(self.anchor_rel_err),
            "scalar_check_jobs": self.scalar_check_jobs,
            "scalar_max_abs_diff": self.scalar_max_abs_diff,
            "cheapest": self.cheapest,
            "fastest": self.fastest,
            "jobs_per_sec": self.jobs_per_sec,
            "speedup_vs_scalar": self.speedup_vs_scalar,
            "rendered": self.render(),
        }
        return doc

    def render(self) -> str:
        rows = [
            (
                itype,
                f"{self.total_seconds[itype] / 3600.0:.2f}",
                f"{self.total_cost_usd[itype]:.2f}",
                f"{self.anchor_seconds[itype]:.0f}",
                f"{ANCHOR_STEPS34_S[itype]:.0f}",
                f"{self.anchor_rel_err[itype]:.2%}",
            )
            for itype in self.instance_types
        ]
        return render_table(
            [
                "instance type",
                "batch (h)",
                "batch (USD)",
                "use-case est (s)",
                "anchor (s)",
                "err",
            ],
            rows,
            title=(
                f"Pricing sweep: {self.config.n_jobs} archives "
                f"({self.config.min_mb:g}-{self.config.max_mb:g} MB, "
                f"seed {self.config.seed}) x {len(self.instance_types)} types"
            ),
        )


def run(config: PricingSweepConfig | None = None) -> PricingSweepResult:
    config = config if config is not None else FULL_CONFIG
    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    sizes = make_pricing_sweep_sizes(
        n_jobs=config.n_jobs,
        seed=config.seed,
        min_mb=config.min_mb,
        max_mb=config.max_mb,
    )

    t0 = time.perf_counter()
    est = estimate_batch(tool, sizes)
    vector_wall = time.perf_counter() - t0

    # Equivalence: re-price a leading slice with the per-sample loop.
    k = max(1, min(config.scalar_check_jobs, config.n_jobs))
    t1 = time.perf_counter()
    ref = estimate_scalar_loop(tool, sizes[:k])
    scalar_wall = time.perf_counter() - t1
    diff = max(
        float(abs(est.seconds[:k] - ref.seconds).max()),
        float(abs(est.cost_usd[:k] - ref.cost_usd).max()),
    )

    # Anchors: the two use-case archives, closed form.
    anchor_est = estimate_usecase_steps34()
    anchor_seconds = anchor_est.total_seconds()
    anchor_rel_err = {
        itype: abs(anchor_seconds[itype] - ANCHOR_STEPS34_S[itype])
        / ANCHOR_STEPS34_S[itype]
        for itype in anchor_est.instance_types
    }

    scalar_per_job = scalar_wall / k
    return PricingSweepResult(
        config=config,
        instance_types=list(est.instance_types),
        total_seconds=est.total_seconds(),
        total_cost_usd=est.total_cost(),
        anchor_seconds=anchor_seconds,
        anchor_rel_err=anchor_rel_err,
        scalar_check_jobs=k,
        scalar_max_abs_diff=diff,
        cheapest=est.cheapest(),
        fastest=est.fastest(),
        jobs_per_sec=(config.n_jobs / vector_wall) if vector_wall > 0 else 0.0,
        speedup_vs_scalar=(
            (scalar_per_job * config.n_jobs) / vector_wall if vector_wall > 0 else 0.0
        ),
    )
