"""Figure 10: execution time, deployment time and cost per instance type.

For each EC2 instance type the paper evaluates, deploy a fresh Galaxy
cluster from the use-case topology, run steps 3+4 (differential
expression on the 10.7 MB and 190.3 MB archives), and record deployment
minutes, execution minutes, and the USD cost of the executing machine
over the job span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import CloudTestbed
from ..core.usecase import run_usecase
from ..reporting import Comparison, render_table

#: the paper's reported values (Sec. V-B)
PAPER_EXEC_MIN = {"m1.small": 10.7, "c1.medium": 6.9, "m1.large": 5.4, "m1.xlarge": 4.6}
PAPER_DEPLOY_MIN = {"m1.small": 8.8, "c1.medium": 7.2, "m1.large": None, "m1.xlarge": 4.9}
PAPER_COST_USD = {"m1.small": 0.007, "m1.xlarge": 0.024}

INSTANCE_TYPES = ["m1.small", "c1.medium", "m1.large", "m1.xlarge"]


@dataclass
class Figure10Row:
    instance_type: str
    deploy_min: float
    exec_min: float
    cost_usd: float
    cluster_nodes: int = 1


@dataclass
class Figure10Result:
    rows: list[Figure10Row] = field(default_factory=list)

    def row(self, instance_type: str) -> Figure10Row:
        return next(r for r in self.rows if r.instance_type == instance_type)

    def check_shape(self) -> None:
        """The orderings the paper's figure shows; raises AssertionError."""
        execs = [r.exec_min for r in self.rows]
        deploys = [r.deploy_min for r in self.rows]
        costs = [r.cost_usd for r in self.rows]
        assert execs == sorted(execs, reverse=True), "exec time must fall with size"
        assert deploys == sorted(deploys, reverse=True), "deploy time must fall with size"
        assert costs == sorted(costs), "cost must rise with size"
        # cost grows per size step; the larger steps approach 2x (the
        # paper's "almost doubles" — its own numbers give 1.3x-1.7x steps)
        for lo, hi in zip(costs, costs[1:]):
            assert 1.2 <= hi / lo <= 2.6, f"cost step {hi / lo:.2f} out of range"
        assert costs[-1] / costs[0] > 3.0

    def render(self) -> str:
        table = render_table(
            ["instance type", "deploy (min)", "exec steps 3+4 (min)", "cost (USD)"],
            [
                (
                    r.instance_type,
                    f"{r.deploy_min:.1f}",
                    f"{r.exec_min:.1f}",
                    f"{r.cost_usd:.4f}",
                )
                for r in self.rows
            ],
            title="Figure 10: deployment/execution time and cost by instance type",
        )
        return table + "\n\n" + self.comparison().render()

    def comparison(self) -> Comparison:
        cmp = Comparison("Figure 10 paper-vs-measured")
        for r in self.rows:
            cmp.add(f"exec min ({r.instance_type})",
                    PAPER_EXEC_MIN.get(r.instance_type), round(r.exec_min, 2))
            cmp.add(f"deploy min ({r.instance_type})",
                    PAPER_DEPLOY_MIN.get(r.instance_type), round(r.deploy_min, 2))
        cmp.add("cost USD (m1.small)", PAPER_COST_USD["m1.small"],
                round(self.row("m1.small").cost_usd, 4))
        cmp.add("cost USD (m1.xlarge)", PAPER_COST_USD["m1.xlarge"],
                round(self.row("m1.xlarge").cost_usd, 4))
        return cmp


def run_one(instance_type: str, seed: int = 0, cluster_nodes: int = 1) -> Figure10Row:
    """One column of the figure: a fresh world per instance type.

    ``cluster_nodes`` widens the worker pool beyond the paper's single
    executing node; the fan-out suite sweeps it to extend the figure's
    matrix (instance type x cluster width).
    """
    bed = CloudTestbed(seed=seed)
    result = run_usecase(
        bed=bed,
        instance_type=instance_type,
        cluster_nodes=cluster_nodes,
        scale_up_with=None,
    )
    return Figure10Row(
        instance_type=instance_type,
        deploy_min=result.deploy_minutes,
        exec_min=result.steps34_minutes,
        cost_usd=result.steps34_cost_usd(bed),
        cluster_nodes=cluster_nodes,
    )


def run(instance_types: list[str] | None = None, seed: int = 0) -> Figure10Result:
    result = Figure10Result()
    for itype in instance_types or INSTANCE_TYPES:
        result.rows.append(run_one(itype, seed=seed))
    return result
