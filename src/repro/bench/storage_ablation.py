"""Storage-backend ablation: the use-case workload per backend x type.

Juve et al. ("Data Sharing Options for Scientific Workflows on Amazon
EC2") ran the same workflows over NFS, GlusterFS/PVFS, S3 and local-disk
staging and found the data-sharing backend dominates both runtime and
dollar cost.  This suite reruns the paper's Fig. 10 columns — deploy a
fresh cluster, execute use-case steps 3+4, record deployment minutes,
execution minutes and cost — once per :mod:`repro.storage` backend, and
pins Juve's qualitative ordering:

* runtime rises from the shared-FS backends to explicit staging to the
  object store (per-request latency on every stage-in/out);
* infrastructure cost is highest for the striped parallel FS, which
  pays for dedicated data nodes the whole run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..core import CloudTestbed
from ..core.usecase import run_usecase
from ..reporting import render_table
from ..storage import STORAGE_BACKENDS, StagingStats

#: instance types the full matrix sweeps (smoke keeps the paper baseline)
FULL_INSTANCE_TYPES = ("m1.small", "c1.medium", "m1.xlarge")
SMOKE_INSTANCE_TYPES = ("m1.small",)


@dataclass(frozen=True)
class StorageAblationConfig:
    instance_type: str = "m1.small"
    backends: tuple[str, ...] = STORAGE_BACKENDS
    cluster_nodes: int = 1
    seed: int = 0


@dataclass
class BackendRow:
    """One (backend, instance type) cell of the ablation matrix."""

    backend: str
    instance_type: str
    deploy_min: float
    exec_min: float
    job_cost_usd: float
    cluster_cost_usd: float
    cluster_nodes_total: int
    staged_in_mb: float
    staged_out_mb: float
    files_staged: int
    events_processed: int = 0


@dataclass
class StorageAblationResult:
    instance_type: str
    rows: list[BackendRow] = field(default_factory=list)

    def row(self, backend: str) -> BackendRow:
        return next(r for r in self.rows if r.backend == backend)

    def check_shape(self) -> None:
        """Juve et al.'s orderings; raises AssertionError when violated."""
        nfs = self.row("nfs")
        striped = self.row("striped_fs")
        local = self.row("local_staging")
        obj = self.row("object_store")
        # runtime: shared FS < explicit staging < object store
        assert nfs.exec_min < striped.exec_min, (
            "striped_fs must pay metadata+stripe I/O on top of the NFS baseline"
        )
        assert striped.exec_min < local.exec_min, (
            "local staging must be slower than the parallel FS"
        )
        assert local.exec_min < obj.exec_min, (
            "the object store's per-request latency must dominate"
        )
        # infra cost: dedicated data nodes make striped_fs the expensive one
        assert striped.cluster_cost_usd > obj.cluster_cost_usd, (
            "striped_fs rents data nodes the object store does not"
        )
        assert striped.cluster_cost_usd > nfs.cluster_cost_usd
        assert striped.cluster_nodes_total > nfs.cluster_nodes_total
        # only the non-POSIX backends stage bytes explicitly
        assert nfs.files_staged == 0
        assert obj.files_staged > 0 and local.files_staged > 0

    def render(self) -> str:
        return render_table(
            ["backend", "deploy (min)", "exec 3+4 (min)", "job cost (USD)",
             "cluster cost (USD)", "nodes", "staged in (MB)"],
            [
                (
                    r.backend,
                    f"{r.deploy_min:.1f}",
                    f"{r.exec_min:.2f}",
                    f"{r.job_cost_usd:.4f}",
                    f"{r.cluster_cost_usd:.4f}",
                    str(r.cluster_nodes_total),
                    f"{r.staged_in_mb:.1f}",
                )
                for r in self.rows
            ],
            title=(
                "Storage ablation: use-case steps 3+4 per data-sharing "
                f"backend ({self.instance_type})"
            ),
        )

    def to_dict(self) -> dict:
        return {
            "instance_type": self.instance_type,
            "rows": [asdict(r) for r in self.rows],
            "events_processed": sum(r.events_processed for r in self.rows),
            "rendered": self.render(),
        }


def run_one(backend: str, config: StorageAblationConfig) -> BackendRow:
    """One cell: a fresh world deployed on the given backend."""
    bed = CloudTestbed(seed=config.seed)
    result = run_usecase(
        bed=bed,
        instance_type=config.instance_type,
        cluster_nodes=config.cluster_nodes,
        scale_up_with=None,
        storage=backend,
    )
    deployment = result.instance.deployment
    runtime = deployment.domains["simple"]
    stats = (
        StagingStats.of(runtime.storage)
        if runtime.storage is not None
        else StagingStats(backend=backend)
    )
    mb = 1024.0 * 1024.0
    return BackendRow(
        backend=backend,
        instance_type=config.instance_type,
        deploy_min=result.deploy_minutes,
        exec_min=result.steps34_minutes,
        job_cost_usd=result.steps34_cost_usd(bed),
        cluster_cost_usd=bed.total_cost("proportional"),
        cluster_nodes_total=len(deployment.nodes),
        staged_in_mb=stats.bytes_staged_in / mb,
        staged_out_mb=stats.bytes_staged_out / mb,
        files_staged=stats.files_staged,
        events_processed=bed.ctx.sim.events_processed,
    )


def run(config: StorageAblationConfig | None = None) -> StorageAblationResult:
    config = config or StorageAblationConfig()
    result = StorageAblationResult(instance_type=config.instance_type)
    for backend in config.backends:
        result.rows.append(run_one(backend, config))
    return result
