"""Parallel fan-out orchestrator for the benchmark suites.

The paper's evaluation is a matrix of *independent* runs — one per EC2
instance type and workload — and every driver in this package builds a
fresh, seed-deterministic world per run.  That independence is what this
module industrializes: a suite of :class:`BenchSpec` columns is executed
across a pool of persistent worker processes and merged back into one
:class:`SuiteResult` in **spec order**, so the merged document is
byte-identical no matter how many workers ran it or in which order tasks
finished.  Only the ``wall_seconds``/``events_per_sec`` fields are
host-dependent; :meth:`SuiteResult.sim_json` strips them for the
determinism pins.

Robustness contract:

* a task that raises becomes a ``failed`` record carrying the traceback;
* a worker process that *dies* (``os._exit``, segfault, OOM-kill) marks
  its in-flight task ``failed`` with the exit code and is respawned —
  the rest of the suite still runs;
* a task that exceeds its timeout is terminated and recorded as
  ``timeout``.

``workers=1`` runs every spec in-process (the sequential driver path);
``workers>1`` forks the pool once and streams specs over pipes, so the
per-task overhead is one pickled dict each way rather than a process
spawn.  Payloads are canonicalized through a JSON round-trip before they
leave the worker, which makes the merged result transport-independent
(tuples become lists either way).
"""

from __future__ import annotations

import gc
import hashlib
import json
import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from ..obs.recorder import capture
from ..reporting import render_table
from ..simcore import (
    DISPATCH_MODES,
    SCHEDULERS,
    default_dispatch,
    default_scheduler,
    set_default_dispatch,
    set_default_scheduler,
)

#: metric keys that legitimately vary between hosts/runs; everything else
#: in a payload must be byte-identical for a given spec.
HOST_DEPENDENT_KEYS = frozenset(
    {"wall_seconds", "events_per_sec", "jobs_per_sec", "speedup_vs_scalar"}
)

#: registry of task callables the specs reference by name (see
#: :func:`task`); populated by ``repro.bench.suites`` on import.
TASKS: dict[str, object] = {}


def task(name: str):
    """Register a callable as a named benchmark task.

    Specs reference tasks by this name so they stay picklable and
    JSON-serializable; workers re-import ``repro.bench.suites`` to
    repopulate the registry under any multiprocessing start method.
    """

    def deco(fn):
        if name in TASKS:
            raise ValueError(f"duplicate task name {name!r}")
        TASKS[name] = fn
        return fn

    return deco


def resolve_task(name: str):
    if name not in TASKS:
        # the standard tasks live in the suite registry; importing it is
        # what populates TASKS in a freshly-spawned worker
        from . import suites  # noqa: F401
    try:
        return TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark task {name!r}; known: {sorted(TASKS)}"
        ) from None


@dataclass(frozen=True)
class BenchSpec:
    """One independent column of a suite: a task name plus parameters."""

    name: str
    task: str
    params: dict = field(default_factory=dict)
    timeout_s: float | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "task": self.task,
            "params": dict(self.params),
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BenchSpec":
        return cls(
            name=doc["name"],
            task=doc["task"],
            params=dict(doc.get("params") or {}),
            timeout_s=doc.get("timeout_s"),
        )


@dataclass(frozen=True)
class BenchSuite:
    """An ordered collection of specs; the merge preserves this order."""

    name: str
    description: str
    specs: tuple[BenchSpec, ...]
    #: whether the suite's tasks drive simulations that record spans —
    #: ``gp-bench --obs-out`` only produces trace files for suites that do
    #: (the pricing sweep is a closed-form estimator with no event loop)
    supports_obs: bool = True
    #: whether the suite's tasks schedule event cohorts, i.e. whether
    #: ``gp-bench --dispatch`` changes anything for them (same carve-out:
    #: the pricing sweep never enters the event loop)
    cohort_eligible: bool = True

    def config_digest(self) -> str:
        return config_digest(self.specs)


def config_digest(specs) -> str:
    """Stable identity of *what* was run (not how fast it ran)."""
    doc = json.dumps([s.to_dict() for s in specs], sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()[:16]


@dataclass
class TaskResult:
    """Outcome of one spec: ``ok``, ``failed``, or ``timeout``.

    ``obs`` carries the observability docs recorded while the task ran
    (one per simulation context; see :mod:`repro.obs`).  It is transport
    data for the exporters only and deliberately absent from
    :meth:`to_dict`/``sim_dict`` so result JSON — including the committed
    determinism baselines — is identical with or without ``--obs-out``.
    """

    spec: BenchSpec
    status: str
    payload: dict | None
    wall_seconds: float
    error: str | None = None
    obs: list[dict] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "task": self.spec.task,
            "params": dict(self.spec.params),
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "payload": self.payload,
            "error": self.error,
        }


@dataclass
class SuiteResult:
    """Deterministic merge of a suite's task results (spec order)."""

    suite: str
    workers: int
    wall_seconds: float
    tasks: list[TaskResult]
    #: kernel scheduler the tasks ran under; reported in :meth:`to_dict`
    #: but deliberately absent from :meth:`sim_dict` — the schedulers are
    #: equivalent, so the determinism pin must not depend on the choice.
    scheduler: str = "heap"
    #: cohort dispatch mode the tasks ran under; same contract as
    #: ``scheduler`` — reported in :meth:`to_dict`, absent from
    #: :meth:`sim_dict` (scalar and cohort dispatch are byte-equivalent).
    dispatch: str = "cohort"

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tasks)

    def counts(self) -> dict[str, int]:
        out = {"ok": 0, "failed": 0, "timeout": 0}
        for t in self.tasks:
            out[t.status] = out.get(t.status, 0) + 1
        return out

    def payload_failures(self) -> int:
        """Work failures hiding inside otherwise-``ok`` tasks.

        ``ok`` means the task callable returned — but a driver can
        return cleanly while its payload records failed work units
        (e.g. a WaaS run whose Condor jobs never completed reports
        ``tasks_failed > 0``).  This sums the top-level
        ``tasks_failed`` keys across ok-task payloads so the CLI can
        refuse to exit 0 on a suite that quietly lost work.
        """
        total = 0
        for t in self.tasks:
            if t.ok and isinstance(t.payload, dict):
                n = t.payload.get("tasks_failed")
                if isinstance(n, (int, float)) and not isinstance(n, bool):
                    total += int(n)
        return total

    def config_digest(self) -> str:
        return config_digest([t.spec for t in self.tasks])

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "workers": self.workers,
            "scheduler": self.scheduler,
            "dispatch": self.dispatch,
            "config_digest": self.config_digest(),
            "wall_seconds": self.wall_seconds,
            "counts": self.counts(),
            "tasks": [t.to_dict() for t in self.tasks],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def sim_dict(self) -> dict:
        """The host-independent view: byte-identical across worker counts.

        Drops every per-task wall-clock field (recursively, so nested
        kernel counters like ``events_per_sec`` go too), the per-task
        error text (tracebacks carry PIDs/paths), and the suite-level
        timing/worker fields.
        """
        return {
            "suite": self.suite,
            "config_digest": self.config_digest(),
            "tasks": [
                {
                    "name": t.spec.name,
                    "task": t.spec.task,
                    "params": dict(t.spec.params),
                    "status": t.status,
                    "payload": _strip_host_dependent(t.payload),
                }
                for t in self.tasks
            ],
        }

    def sim_json(self) -> str:
        return json.dumps(self.sim_dict(), indent=2, sort_keys=True)

    def scenario_dict(self) -> dict:
        """What ran and under which kernel knobs — the reconstruction
        recipe a provenance bundle stores (see :mod:`repro.provenance`):
        rerunning these specs under this scheduler/dispatch reproduces
        :meth:`sim_dict` byte-identically."""
        return {
            "suite": self.suite,
            "scheduler": self.scheduler,
            "dispatch": self.dispatch,
            "specs": [t.spec.to_dict() for t in self.tasks],
        }

    def obs_docs(self) -> list[dict]:
        """All observability docs recorded by the tasks, in spec order."""
        docs: list[dict] = []
        for t in self.tasks:
            docs.extend(t.obs or ())
        return docs

    def render(self) -> str:
        rows = [
            (
                t.spec.name,
                t.status,
                f"{t.wall_seconds:.3f}",
                (t.error or "").strip().splitlines()[-1][:60] if t.error else "",
            )
            for t in self.tasks
        ]
        counts = self.counts()
        title = (
            f"suite {self.suite}: {counts['ok']}/{len(self.tasks)} ok, "
            f"workers={self.workers}, wall {self.wall_seconds:.2f}s"
        )
        return render_table(["spec", "status", "wall (s)", "error"], rows, title=title)


def _strip_host_dependent(obj):
    if isinstance(obj, dict):
        return {
            k: _strip_host_dependent(v)
            for k, v in obj.items()
            if k not in HOST_DEPENDENT_KEYS
        }
    if isinstance(obj, list):
        return [_strip_host_dependent(v) for v in obj]
    return obj


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _execute(
    spec: BenchSpec,
    scheduler: str | None = None,
    obs: bool = False,
    dispatch: str | None = None,
) -> tuple[str, dict | None, float, str | None, list[dict] | None]:
    """Run one spec in the current process; exceptions become records.

    ``scheduler`` pins the kernel's default scheduler for the duration
    of the task (restored afterwards), so every simulation the task
    builds — tasks construct their own ``SimContext`` — runs under it.
    ``dispatch`` pins the cohort dispatch mode (``"scalar"`` or
    ``"cohort"``) the same way.

    ``obs=True`` wraps the task in an ``obs.capture()`` block, so those
    same simulations each record spans/metrics; the exported docs ride
    back as the fifth tuple element, relabelled ``<spec name>:<label>``
    so merged suite traces stay unambiguous.
    """
    # Settle deferred garbage from the previous task, then keep the
    # cyclic collector paused for this one (the kernel already pauses it
    # per drain): each task's wall clock measures its own work, not a
    # predecessor's cleanup or mid-run gen-0 sweeps.  Generations 0-1
    # suffice — with the collector paused during tasks, a task's garbage
    # is never promoted past gen 1 — and cost microseconds where a full
    # collect scans the whole heap (~tens of ms under these imports).
    gc.collect(1)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    t0 = time.perf_counter()
    try:
        fn = resolve_task(spec.task)
        previous = set_default_scheduler(scheduler) if scheduler is not None else None
        prev_dispatch = (
            set_default_dispatch(dispatch) if dispatch is not None else None
        )
        cap = None
        try:
            if obs:
                with capture() as cap:
                    payload = fn(**spec.params)
            else:
                payload = fn(**spec.params)
        finally:
            if previous is not None:
                set_default_scheduler(previous)
            if prev_dispatch is not None:
                set_default_dispatch(prev_dispatch)
        # canonicalize so in-process and piped results merge identically
        payload = json.loads(json.dumps(payload))
        docs = None
        if cap is not None:
            docs = [dict(d, label=f"{spec.name}:{d['label']}") for d in cap.to_docs()]
            docs = json.loads(json.dumps(docs))
        return "ok", payload, time.perf_counter() - t0, None, docs
    except Exception:
        return "failed", None, time.perf_counter() - t0, traceback.format_exc(), None
    finally:
        if gc_was_enabled:
            gc.enable()


def run_spec(
    spec: BenchSpec,
    scheduler: str | None = None,
    obs: bool = False,
    dispatch: str | None = None,
) -> TaskResult:
    """In-process execution of a single spec (the drivers' entry point)."""
    return TaskResult(spec, *_execute(spec, scheduler, obs, dispatch))


def _worker_main(conn) -> None:
    """Persistent worker loop: recv a spec dict, send a result tuple.

    The spec dict may carry ``scheduler``/``dispatch`` keys (the
    harness's ``--scheduler``/``--dispatch`` plumbing); they ride
    alongside the spec fields so the pipe protocol stays one flat dict
    each way.
    """
    from . import suites  # noqa: F401  (registers tasks under spawn)

    while True:
        try:
            doc = conn.recv()
        except (EOFError, OSError):
            break
        if doc is None:
            break
        scheduler = doc.pop("scheduler", None)
        dispatch = doc.pop("dispatch", None)
        obs = doc.pop("obs", False)
        spec = BenchSpec.from_dict(doc)
        try:
            conn.send(_execute(spec, scheduler, obs, dispatch))
        except Exception:
            try:
                conn.send(("failed", None, 0.0, traceback.format_exc(), None))
            except Exception:
                break
    conn.close()


def default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _Worker:
    """One pool slot: a process plus the duplex pipe feeding it."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.proc.start()
        child_conn.close()
        #: (spec index, spec, perf_counter at assignment) while busy
        self.current: tuple[int, BenchSpec, float] | None = None

    @property
    def busy(self) -> bool:
        return self.current is not None

    def assign(
        self,
        idx: int,
        spec: BenchSpec,
        scheduler: str | None,
        obs: bool = False,
        dispatch: str | None = None,
    ) -> None:
        doc = spec.to_dict()
        if scheduler is not None:
            doc["scheduler"] = scheduler
        if dispatch is not None:
            doc["dispatch"] = dispatch
        if obs:
            doc["obs"] = True
        self.conn.send(doc)
        self.current = (idx, spec, time.perf_counter())

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.terminate()
        self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=1.0)


def _run_pool(
    specs, workers, default_timeout_s, start_method, progress, scheduler, obs, dispatch
):
    ctx = multiprocessing.get_context(start_method or default_start_method())
    n_workers = max(1, min(workers, len(specs)))
    pool: list[_Worker | None] = [_Worker(ctx) for _ in range(n_workers)]
    pending = deque(enumerate(specs))
    out: list[TaskResult | None] = [None] * len(specs)
    done = 0

    def finish(idx, result):
        nonlocal done
        out[idx] = result
        done += 1
        if progress is not None:
            progress(result)

    def replacement():
        # only burn a fork if there is still work for the slot to do
        return _Worker(ctx) if pending else None

    try:
        while done < len(specs):
            progressed = False
            for i, w in enumerate(pool):
                if w is None or w.busy:
                    continue
                if not pending:
                    continue
                idx, spec = pending.popleft()
                try:
                    w.assign(idx, spec, scheduler, obs, dispatch)
                except (BrokenPipeError, OSError):
                    # died idle; put the spec back and respawn the slot
                    pending.appendleft((idx, spec))
                    w.kill()
                    pool[i] = replacement()
                progressed = True
            for i, w in enumerate(pool):
                if w is None or not w.busy:
                    continue
                idx, spec, started = w.current
                timeout = (
                    spec.timeout_s if spec.timeout_s is not None else default_timeout_s
                )
                elapsed = time.perf_counter() - started
                if w.conn.poll(0):
                    try:
                        status, payload, wall, error, obs_docs = w.conn.recv()
                    except (EOFError, OSError):
                        w.kill()
                        finish(idx, TaskResult(
                            spec, "failed", None, elapsed,
                            f"worker process died (exit code {w.proc.exitcode})",
                        ))
                        pool[i] = replacement()
                    else:
                        w.current = None
                        finish(
                            idx,
                            TaskResult(spec, status, payload, wall, error, obs_docs),
                        )
                    progressed = True
                elif not w.proc.is_alive():
                    exitcode = w.proc.exitcode
                    w.kill()
                    finish(idx, TaskResult(
                        spec, "failed", None, elapsed,
                        f"worker process died (exit code {exitcode})",
                    ))
                    pool[i] = replacement()
                    progressed = True
                elif timeout is not None and elapsed > timeout:
                    w.kill()
                    finish(idx, TaskResult(
                        spec, "timeout", None, elapsed,
                        f"timed out after {timeout:.1f}s",
                    ))
                    pool[i] = replacement()
                    progressed = True
            if not progressed:
                time.sleep(0.005)
    finally:
        for w in pool:
            if w is not None:
                w.stop()
    return out


def run_suite(
    suite: BenchSuite,
    workers: int = 1,
    default_timeout_s: float | None = 600.0,
    start_method: str | None = None,
    progress=None,
    scheduler: str | None = None,
    obs: bool = False,
    dispatch: str | None = None,
) -> SuiteResult:
    """Execute every spec and merge the results deterministically.

    ``workers=1`` runs in-process (no timeouts are enforced — there is
    no process to terminate); ``workers>1`` fans out across a persistent
    process pool with crash isolation and per-task timeouts.

    ``scheduler`` selects the kernel event queue (``"heap"`` or
    ``"wheel"``) for every task; the schedulers are pop-order
    equivalent, so ``sim_json()`` is byte-identical under either.

    ``dispatch`` selects the cohort dispatch mode (``"scalar"`` or
    ``"cohort"``) the same way; the modes are apply-order equivalent,
    so ``sim_json()`` is byte-identical under either.

    ``obs=True`` records spans/metrics inside every task (see
    :mod:`repro.obs`); the docs land on each :class:`TaskResult`'s
    ``obs`` field and leave payloads and ``sim_json()`` untouched.
    """
    if scheduler is not None and scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    if dispatch is not None and dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r}; expected one of {DISPATCH_MODES}"
        )
    t0 = time.perf_counter()
    if workers <= 1:
        results = []
        for spec in suite.specs:
            result = run_spec(spec, scheduler, obs, dispatch)
            results.append(result)
            if progress is not None:
                progress(result)
    else:
        results = _run_pool(
            list(suite.specs),
            workers,
            default_timeout_s,
            start_method,
            progress,
            scheduler,
            obs,
            dispatch,
        )
    wall = time.perf_counter() - t0
    return SuiteResult(
        suite.name,
        workers,
        wall,
        list(results),
        scheduler if scheduler is not None else default_scheduler(),
        dispatch if dispatch is not None else default_dispatch(),
    )
