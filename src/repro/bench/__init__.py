"""Experiment drivers shared by the benchmark suite and the examples.

One module per paper artefact: Fig. 10 (deployment/execution/cost by
instance type), Fig. 11 (transfer rate by method and file size), the
Sec. V-A use case, and the design-choice ablations DESIGN.md calls out.
"""

from . import ablations, figure10, figure11, scale, usecase

__all__ = ["ablations", "figure10", "figure11", "scale", "usecase"]
