"""Experiment drivers shared by the benchmark suite and the examples.

One module per paper artefact: Fig. 10 (deployment/execution/cost by
instance type), Fig. 11 (transfer rate by method and file size), the
Sec. V-A use case, and the design-choice ablations DESIGN.md calls out.

On top of the drivers sit the fan-out layers: ``harness`` (the parallel
orchestrator), ``suites`` (the spec registry mapping artefacts onto
harness columns), ``trajectory`` (the per-commit perf series), and
``cli`` (``gp-bench`` / ``python -m repro.bench``).
"""

from . import ablations, figure10, figure11, pricing_sweep, scale, usecase  # noqa: I001
from . import harness, suites, trajectory

__all__ = [
    "ablations",
    "figure10",
    "figure11",
    "harness",
    "pricing_sweep",
    "scale",
    "suites",
    "trajectory",
    "usecase",
]
