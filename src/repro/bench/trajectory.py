"""Tracked perf trajectory: one record per benchmark run, per commit.

``BENCH_scale.json`` captures a single snapshot; this module turns it
into a series.  Every harness run can append a record —

    {commit, date, suite, config_digest, workers, dispatch,
     wall_seconds, events_processed, events_per_sec, tasks_ok,
     tasks_failed}

— to ``BENCH_trajectory.json`` (a JSON list at the repo root), and
render the events/sec-over-commits table via ``repro.reporting``.  The
kernel-throughput aggregate comes from the tasks that report kernel
counters (the scale grid): total events processed divided by the wall
time those tasks took, so the number is comparable across worker counts.

Run as a module it is also the regression gate::

    python -m repro.bench.trajectory --check \\
        --trajectory trajectory.json \\
        --critpath critpath-out/scale.critpath.json \\
        --baseline benchmarks/results/trajectory_baseline.json

``--check`` compares the latest matching trajectory record against the
committed baseline: events/sec may not fall below the baseline's
``min_events_per_sec`` floor (generous, for noisy CI hosts), and — the
deterministic half — the critical-path per-layer second totals and
makespan must match the baseline exactly (within ``tolerance_s``),
because span timings come from simulated time, not the host.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from dataclasses import asdict, dataclass
from datetime import datetime, timezone

from ..reporting import render_table
from .harness import SuiteResult

#: default artefact location (relative to the invoking directory; the
#: CLI and ``benchmarks/bench_scale.py`` pass the repo-root path)
DEFAULT_PATH = pathlib.Path("BENCH_trajectory.json")


@dataclass(frozen=True)
class TrajectoryRecord:
    commit: str
    date: str
    suite: str
    config_digest: str
    workers: int
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    tasks_ok: int
    tasks_failed: int
    #: cohort dispatch mode the run used; records written before the
    #: mode existed ran the one-event-per-timer path, i.e. "scalar"
    dispatch: str = "scalar"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "TrajectoryRecord":
        fields = cls.__dataclass_fields__
        return cls(
            **{
                k: doc[k] if k in doc else fields[k].default
                for k in fields
            }
        )


def current_commit() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def from_suite_result(
    result: SuiteResult, commit: str | None = None, date: str | None = None
) -> TrajectoryRecord:
    """Aggregate a suite run into one trajectory point."""
    events = 0
    kernel_wall = 0.0
    for t in result.tasks:
        if t.ok and isinstance(t.payload, dict) and "events_processed" in t.payload:
            events += int(t.payload["events_processed"])
            kernel_wall += t.wall_seconds
    counts = result.counts()
    return TrajectoryRecord(
        commit=commit if commit is not None else current_commit(),
        date=date if date is not None else utc_now_iso(),
        suite=result.suite,
        config_digest=result.config_digest(),
        workers=result.workers,
        wall_seconds=round(result.wall_seconds, 4),
        events_processed=events,
        events_per_sec=round(events / kernel_wall, 1) if kernel_wall > 0 else 0.0,
        tasks_ok=counts["ok"],
        tasks_failed=counts["failed"] + counts["timeout"],
        dispatch=result.dispatch,
    )


def load(path: pathlib.Path | str = DEFAULT_PATH) -> list[TrajectoryRecord]:
    path = pathlib.Path(path)
    if not path.exists():
        return []
    docs = json.loads(path.read_text())
    return [TrajectoryRecord.from_dict(doc) for doc in docs]


def append(
    record: TrajectoryRecord, path: pathlib.Path | str = DEFAULT_PATH
) -> list[TrajectoryRecord]:
    """Append one record and rewrite the file; returns the full series."""
    records = load(path)
    records.append(record)
    path = pathlib.Path(path)
    path.write_text(
        json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True) + "\n"
    )
    return records


def render(records: list[TrajectoryRecord], last: int | None = None) -> str:
    """The events/sec-over-commits table (most recent rows last)."""
    shown = records[-last:] if last else records
    rows = [
        (
            r.commit,
            r.date,
            r.suite,
            r.workers,
            r.dispatch,
            f"{r.events_per_sec:,.0f}",
            f"{r.wall_seconds:.2f}",
            f"{r.tasks_ok}/{r.tasks_ok + r.tasks_failed}",
        )
        for r in shown
    ]
    return render_table(
        ["commit", "date", "suite", "workers", "dispatch", "events/sec",
         "wall (s)", "ok"],
        rows,
        title=f"Perf trajectory ({len(records)} runs tracked)",
    )


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------


def check_against_baseline(
    baseline: dict,
    records: list[TrajectoryRecord],
    critpath: dict | None = None,
) -> list[str]:
    """Compare the latest matching record (and critpath doc) to a baseline.

    Returns a list of human-readable failures (empty = within bounds).
    The throughput floor is intentionally loose — wall time is host
    noise — while the critical-path layer totals are exact: they are
    simulated seconds, so any drift is a behaviour change, not jitter.
    """
    failures: list[str] = []
    suite = baseline.get("suite")
    matching = [r for r in records if suite is None or r.suite == suite]
    if not matching:
        failures.append(
            f"no trajectory record for suite {suite!r} "
            f"({len(records)} record(s) present)"
        )
    else:
        latest = matching[-1]
        if latest.tasks_failed:
            failures.append(
                f"latest {latest.suite} run has {latest.tasks_failed} failed task(s)"
            )
        floor = baseline.get("min_events_per_sec")
        if floor is not None and latest.events_per_sec < float(floor):
            failures.append(
                f"events/sec regressed: {latest.events_per_sec:,.0f} < "
                f"floor {float(floor):,.0f} (reference "
                f"{baseline.get('reference_events_per_sec', 'n/a')})"
            )
    expected = baseline.get("critpath")
    if expected is not None:
        if critpath is None:
            failures.append(
                "baseline pins critical-path layers but no --critpath file given"
            )
        else:
            tol = float(expected.get("tolerance_s", 1e-6))
            got_layers = critpath.get("layers") or {}
            want_layers = expected.get("layers") or {}
            for layer in sorted(set(want_layers) | set(got_layers)):
                want = float(want_layers.get(layer, 0.0))
                got = float(got_layers.get(layer, 0.0))
                if abs(want - got) > tol:
                    failures.append(
                        f"critical-path layer {layer!r} drifted: "
                        f"{got:.6f}s vs baseline {want:.6f}s (tol {tol})"
                    )
            want_mk = expected.get("makespan_s")
            if want_mk is not None:
                got_mk = float(critpath.get("makespan_s") or 0.0)
                if abs(float(want_mk) - got_mk) > tol:
                    failures.append(
                        f"critical-path makespan drifted: {got_mk:.6f}s vs "
                        f"baseline {float(want_mk):.6f}s (tol {tol})"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description="Render the perf trajectory, or gate it against a baseline.",
    )
    parser.add_argument(
        "--trajectory",
        type=pathlib.Path,
        default=DEFAULT_PATH,
        help=f"trajectory series to read (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the latest record (and --critpath doc) to --baseline",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/results/trajectory_baseline.json"),
        help="baseline bounds for --check",
    )
    parser.add_argument(
        "--critpath",
        type=pathlib.Path,
        default=None,
        help="critpath document (gp-bench --critpath-out) checked for layer drift",
    )
    parser.add_argument(
        "--last", type=int, default=10, help="rows to render without --check"
    )
    args = parser.parse_args(argv)

    records = load(args.trajectory)
    if not args.check:
        if not records:
            print(f"no trajectory records at {args.trajectory}")
            return 0
        print(render(records, last=args.last))
        return 0

    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())
    critpath = None
    if args.critpath is not None:
        if not args.critpath.exists():
            print(f"error: critpath file {args.critpath} not found", file=sys.stderr)
            return 2
        critpath = json.loads(args.critpath.read_text())
    failures = check_against_baseline(baseline, records, critpath)
    if failures:
        for failure in failures:
            print(f"trajectory check FAILED: {failure}", file=sys.stderr)
        return 1
    suite = baseline.get("suite") or "any"
    print(f"trajectory check ok: suite {suite!r} within baseline bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
