"""Tracked perf trajectory: one record per benchmark run, per commit.

``BENCH_scale.json`` captures a single snapshot; this module turns it
into a series.  Every harness run can append a record —

    {commit, date, suite, config_digest, workers, dispatch,
     wall_seconds, events_processed, events_per_sec, tasks_ok,
     tasks_failed}

— to ``BENCH_trajectory.json`` (a JSON list at the repo root), and
render the events/sec-over-commits table via ``repro.reporting``.  The
kernel-throughput aggregate comes from the tasks that report kernel
counters (the scale grid): total events processed divided by the wall
time those tasks took, so the number is comparable across worker counts.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from dataclasses import asdict, dataclass
from datetime import datetime, timezone

from ..reporting import render_table
from .harness import SuiteResult

#: default artefact location (relative to the invoking directory; the
#: CLI and ``benchmarks/bench_scale.py`` pass the repo-root path)
DEFAULT_PATH = pathlib.Path("BENCH_trajectory.json")


@dataclass(frozen=True)
class TrajectoryRecord:
    commit: str
    date: str
    suite: str
    config_digest: str
    workers: int
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    tasks_ok: int
    tasks_failed: int
    #: cohort dispatch mode the run used; records written before the
    #: mode existed ran the one-event-per-timer path, i.e. "scalar"
    dispatch: str = "scalar"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "TrajectoryRecord":
        fields = cls.__dataclass_fields__
        return cls(
            **{
                k: doc[k] if k in doc else fields[k].default
                for k in fields
            }
        )


def current_commit() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def from_suite_result(
    result: SuiteResult, commit: str | None = None, date: str | None = None
) -> TrajectoryRecord:
    """Aggregate a suite run into one trajectory point."""
    events = 0
    kernel_wall = 0.0
    for t in result.tasks:
        if t.ok and isinstance(t.payload, dict) and "events_processed" in t.payload:
            events += int(t.payload["events_processed"])
            kernel_wall += t.wall_seconds
    counts = result.counts()
    return TrajectoryRecord(
        commit=commit if commit is not None else current_commit(),
        date=date if date is not None else utc_now_iso(),
        suite=result.suite,
        config_digest=result.config_digest(),
        workers=result.workers,
        wall_seconds=round(result.wall_seconds, 4),
        events_processed=events,
        events_per_sec=round(events / kernel_wall, 1) if kernel_wall > 0 else 0.0,
        tasks_ok=counts["ok"],
        tasks_failed=counts["failed"] + counts["timeout"],
        dispatch=result.dispatch,
    )


def load(path: pathlib.Path | str = DEFAULT_PATH) -> list[TrajectoryRecord]:
    path = pathlib.Path(path)
    if not path.exists():
        return []
    docs = json.loads(path.read_text())
    return [TrajectoryRecord.from_dict(doc) for doc in docs]


def append(
    record: TrajectoryRecord, path: pathlib.Path | str = DEFAULT_PATH
) -> list[TrajectoryRecord]:
    """Append one record and rewrite the file; returns the full series."""
    records = load(path)
    records.append(record)
    path = pathlib.Path(path)
    path.write_text(
        json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True) + "\n"
    )
    return records


def render(records: list[TrajectoryRecord], last: int | None = None) -> str:
    """The events/sec-over-commits table (most recent rows last)."""
    shown = records[-last:] if last else records
    rows = [
        (
            r.commit,
            r.date,
            r.suite,
            r.workers,
            r.dispatch,
            f"{r.events_per_sec:,.0f}",
            f"{r.wall_seconds:.2f}",
            f"{r.tasks_ok}/{r.tasks_ok + r.tasks_failed}",
        )
        for r in shown
    ]
    return render_table(
        ["commit", "date", "suite", "workers", "dispatch", "events/sec",
         "wall (s)", "ok"],
        rows,
        title=f"Perf trajectory ({len(records)} runs tracked)",
    )
