"""WaaS benchmark: racing elasticity policies on SLA vs dollar cost.

The paper's Sec. V-A shows one manual scale-up (adding a c1.medium)
cutting a workflow from 10.7 to 6.9 minutes.  This driver generalises
that anecdote into a policy benchmark: a multi-tenant front door
(:mod:`repro.waas`) pushes an open-loop stream of deadline-bearing
workflow DAGs at one GP deployment, an elastic provisioner reshapes the
Condor pool under a pluggable policy, and the result is the trade-off
the paper only gestures at — what fraction of deadlines each policy
meets, and what the fleet costs under proportional and hourly billing.

Shapes:

* ``SMOKE_GRID`` — tens of tenants, CI-sized (the static baseline is
  deliberately overloaded so autoscaling visibly moves attainment);
* ``FULL_GRID`` — the 1k-tenant and 100k-tenant grids.

Everything is derived from the config seed; two runs with the same
config are byte-identical in every simulation metric regardless of
worker count, dispatch mode, or whether observability is recording.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, field, replace

from ..core.testbed import CloudTestbed
from ..provision.instance import GlobusProvision
from ..waas import (
    AdmissionController,
    ElasticProvisioner,
    WaasService,
    make_policy,
    poisson_plan,
    waas_topology,
)
from ..workloads.generators import DAG_SHAPES


@dataclass(frozen=True)
class WaasConfig:
    """One policy-run shape.  ``policy_params`` is a tuple of (name,
    value) pairs so the config stays hashable and JSON-stable."""

    tenants: int = 1000
    workflows: int = 2000
    arrival_rate_per_s: float = 0.5
    tenant_quota: int = 2
    max_in_flight: int = 400
    dag_tasks: int = 6
    unique_dags: int = 50
    shapes: tuple[str, ...] = DAG_SHAPES
    mean_task_work_s: float = 90.0
    deadline_base_s: float = 600.0
    deadline_slack: float = 3.0
    policy: str = "static"
    policy_params: tuple[tuple[str, float], ...] = ()
    base_workers: int = 4
    min_workers: int = 1
    max_workers: int = 128
    worker_instance_type: str = "c1.medium"
    instance_type: str = "m1.small"
    check_interval_s: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        # JSON round-trips hand lists back; normalise so replace()/asdict()
        # of a round-tripped config equals the original
        object.__setattr__(self, "shapes", tuple(self.shapes))
        object.__setattr__(
            self, "policy_params", tuple(tuple(p) for p in self.policy_params)
        )


#: the 1k-tenant headline and the 100k-tenant stressor
FULL_GRID = (
    WaasConfig(policy="static"),
    WaasConfig(policy="queue_depth", policy_params=(("step", 4),)),
    WaasConfig(policy="deadline_slack", policy_params=(("step", 4),)),
    WaasConfig(
        tenants=100_000, workflows=100_000, arrival_rate_per_s=50.0,
        dag_tasks=4, unique_dags=200, max_in_flight=2000,
        base_workers=8, max_workers=128,
        policy="queue_depth", policy_params=(("step", 8),),
    ),
)

#: CI shape: one undersized m1.small against ~16k s of demand, so the
#: static baseline drowns and the autoscalers get to show their policies
SMOKE_CONFIG = WaasConfig(
    tenants=24,
    workflows=48,
    arrival_rate_per_s=0.04,
    tenant_quota=2,
    max_in_flight=16,
    dag_tasks=4,
    unique_dags=8,
    mean_task_work_s=60.0,
    deadline_base_s=300.0,
    deadline_slack=2.0,
    base_workers=1,
    max_workers=5,
    check_interval_s=60.0,
)

SMOKE_GRID = (
    SMOKE_CONFIG,
    replace(SMOKE_CONFIG, policy="queue_depth"),
    replace(SMOKE_CONFIG, policy="deadline_slack"),
)


def _percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile of a non-empty list (deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(p * len(ordered)))
    return ordered[rank - 1]


@dataclass
class WaasResult:
    """One policy run.  Simulation metrics are seed-deterministic; only
    the ``wall_seconds``/``events_per_sec`` pair varies by host (and is
    stripped from committed baselines by the harness)."""

    config: WaasConfig
    policy: dict
    nodes: int
    plan_work_s: float
    arrival_span_s: float
    deploy_sim_seconds: float
    sim_seconds: float
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    workflows_completed: int
    workflows_rejected: int
    sla_met: int
    sla_attainment: float
    tasks_submitted: int
    tasks_completed: int
    tasks_failed: int
    scale_ups: int
    scale_downs: int
    peak_workers: int
    final_workers: int
    makespan_p50_s: float
    makespan_p95_s: float
    admission_wait_p95_s: float
    cost_proportional_usd: float
    cost_hourly_usd: float
    cost_by_type_usd: dict[str, float] = field(default_factory=dict)
    scaling_events: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["config"] = asdict(self.config)
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def check_shape(self) -> None:
        """Sanity assertions shared by the smoke test and the full run."""
        c = self.config
        assert self.workflows_completed + self.workflows_rejected == c.workflows
        assert self.tasks_failed == 0, f"{self.tasks_failed} tasks never completed"
        assert self.tasks_submitted == self.tasks_completed
        assert 0.0 <= self.sla_attainment <= 1.0
        assert self.events_processed > 0
        assert self.peak_workers <= max(c.max_workers, c.base_workers)
        assert self.final_workers >= min(c.min_workers, c.base_workers)
        if c.policy == "static":
            assert self.scale_ups == 0 and self.scale_downs == 0
        assert self.cost_proportional_usd <= self.cost_hourly_usd + 1e-9
        total_by_type = sum(self.cost_by_type_usd.values())
        assert abs(total_by_type - self.cost_proportional_usd) < 1e-4


def run(config: WaasConfig = SMOKE_CONFIG) -> WaasResult:
    """Deploy, open the front door, drain the demand; return the metrics."""
    bed = CloudTestbed(seed=config.seed)
    gp = GlobusProvision(bed)
    topology = waas_topology(
        config.base_workers, instance_type=config.instance_type
    )
    plan = poisson_plan(
        config.tenants,
        config.workflows,
        config.arrival_rate_per_s,
        tenant_quota=config.tenant_quota,
        dag_tasks=config.dag_tasks,
        unique_dags=config.unique_dags,
        shapes=config.shapes,
        mean_task_work_s=config.mean_task_work_s,
        deadline_base_s=config.deadline_base_s,
        deadline_slack=config.deadline_slack,
        seed=config.seed,
    )

    wall_start = time.perf_counter()
    gpi = gp.create(topology)
    start_proc = bed.ctx.sim.process(gp.start(gpi.id), name="gp-start")
    bed.run(until=start_proc)
    deploy_sim_seconds = bed.now

    admission = AdmissionController(bed.ctx, max_in_flight=config.max_in_flight)
    service = WaasService(gp, gpi.id, plan, admission)
    provisioner = ElasticProvisioner(
        gp,
        gpi.id,
        make_policy(config.policy, **dict(config.policy_params)),
        service.snapshot,
        check_interval_s=config.check_interval_s,
        min_workers=config.min_workers,
        max_workers=config.max_workers,
        worker_instance_type=config.worker_instance_type,
    )

    def drive(ctx):
        service.open()
        provisioner.start()
        yield service.all_done
        provisioner.stop()

    proc = bed.ctx.sim.process(drive(bed.ctx), name="waas-drive")
    bed.run(until=proc)
    wall = time.perf_counter() - wall_start

    sim = bed.ctx.sim
    meter = bed.ec2.meter
    now = bed.now
    makespans = [r.makespan_s for r in service.completed]
    waits = [r.admission_wait_s for r in service.completed]
    return WaasResult(
        config=config,
        policy=provisioner.policy.describe(),
        nodes=len(gpi.deployment.nodes),
        plan_work_s=round(plan.total_work, 3),
        arrival_span_s=round(plan.span_s, 3),
        deploy_sim_seconds=deploy_sim_seconds,
        sim_seconds=now,
        wall_seconds=wall,
        events_processed=sim.events_processed,
        events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
        workflows_completed=len(service.completed),
        workflows_rejected=len(service.rejected),
        sla_met=service.sla_met,
        sla_attainment=round(service.sla_attainment, 4),
        tasks_submitted=service.jobs_submitted,
        tasks_completed=service.jobs_completed,
        tasks_failed=service.jobs_submitted - service.jobs_completed,
        scale_ups=provisioner.scale_ups,
        scale_downs=provisioner.scale_downs,
        peak_workers=provisioner.peak_workers,
        final_workers=provisioner.worker_count(),
        makespan_p50_s=round(_percentile(makespans, 0.50), 3),
        makespan_p95_s=round(_percentile(makespans, 0.95), 3),
        admission_wait_p95_s=round(_percentile(waits, 0.95), 3),
        cost_proportional_usd=round(meter.cost(now, mode="proportional"), 6),
        cost_hourly_usd=round(meter.cost(now, mode="hourly"), 6),
        cost_by_type_usd={
            t: round(usd, 6)
            for t, usd in meter.cost_by_type(now, mode="proportional").items()
        },
        scaling_events=[asdict(e) for e in provisioner.events],
    )
