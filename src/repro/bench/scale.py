"""Scale benchmark: a production-size deployment as a kernel stress test.

The paper's experiments stop at a handful of nodes and two transfers; the
north star is a substrate that prices *campaigns*.  This driver deploys a
GP topology in the 128–256 node range, then pushes hundreds of concurrent
Globus transfers and thousands of Condor jobs through it, and reports how
fast the simulator chews through that world: events/second of wall time,
peak scheduler queue depth, and total wall/sim time.

The same harness runs two ways:

* ``FULL_CONFIG`` — the headline numbers, written to ``BENCH_scale.json``
  by ``benchmarks/bench_scale.py`` (minutes of wall time);
* ``SMOKE_CONFIG`` — a tiny topology exercising every code path in well
  under a second, run in tier-1 by ``tests/bench/test_scale_smoke.py``.

Everything in the workload is derived deterministically from the config
(no wall-clock or unseeded randomness), so two runs with the same config
produce byte-identical simulation metrics; only ``wall_seconds`` and
``events_per_sec`` vary with the host machine.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import asdict, dataclass

from .. import calibration
from ..cluster.condor import JobState
from ..core.testbed import CVRG_DATA_ENDPOINT, CloudTestbed
from ..core.usecase import usecase_topology
from ..provision.deployer import Deployer
from ..transfer.globus_online import TaskStatus, TransferItem, TransferSpec


@dataclass(frozen=True)
class ScaleConfig:
    """Workload shape.  Total topology size is ``workers + 3`` nodes
    (NFS/NIS server, GridFTP node, Galaxy/Condor head)."""

    workers: int = 125          # -> 128-node topology
    transfers: int = 500        # concurrent Globus Transfer tasks
    jobs: int = 2000            # Condor jobs
    file_mb: int = 64           # size of each transferred file
    job_cpu_seconds: float = 45.0   # base per-job work (m1.small-seconds)
    instance_type: str = "m1.small"
    seed: int = 0

    @property
    def nodes(self) -> int:
        return self.workers + 3


#: The headline configuration (128 nodes, 500 transfers, 2000 jobs).
FULL_CONFIG = ScaleConfig()

#: Everything exercised, nothing waited for: runs in tier-1.
SMOKE_CONFIG = ScaleConfig(workers=4, transfers=6, jobs=24, file_mb=4)


@dataclass
class ScaleResult:
    """What one run measured (simulation metrics are seed-deterministic)."""

    config: ScaleConfig
    nodes: int
    deploy_sim_seconds: float
    sim_seconds: float
    wall_seconds: float
    events_processed: int
    events_per_sec: float
    peak_queue_depth: int
    transfers_succeeded: int
    jobs_completed: int
    bytes_transferred: int

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["config"] = asdict(self.config)
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def check_shape(self) -> None:
        """Sanity assertions shared by the smoke test and the full run."""
        assert self.transfers_succeeded == self.config.transfers
        assert self.jobs_completed == self.config.jobs
        assert self.nodes == self.config.nodes
        assert self.events_processed > 0
        assert self.peak_queue_depth > 0
        expected = self.config.transfers * self.config.file_mb * calibration.MB
        assert self.bytes_transferred == expected


def _input_path(i: int) -> str:
    return f"/home/boliu/scale/input-{i:04d}.dat"


def _stage_inputs(bed: CloudTestbed, config: ScaleConfig) -> None:
    """Bulk files on the CVRG endpoint (metadata-tracked, no real bytes)."""
    size = config.file_mb * calibration.MB
    for i in range(config.transfers):
        bed.cvrg_fs.write(_input_path(i), size=size, owner="boliu")


def _job_work(config: ScaleConfig, i: int) -> float:
    """Deterministic per-job variety: 1.0x .. 1.5x the base work."""
    return config.job_cpu_seconds * (1.0 + 0.5 * ((i * 7919) % 101) / 101.0)


def run(config: ScaleConfig = FULL_CONFIG) -> ScaleResult:
    """Deploy, load, and drain the scale scenario; return the metrics."""
    bed = CloudTestbed(seed=config.seed)
    deployer = Deployer(bed)
    topology = usecase_topology(
        instance_type=config.instance_type, cluster_nodes=config.workers
    )
    _stage_inputs(bed, config)

    # Measure with the cyclic collector paused (as ``timeit`` does): the
    # kernel pauses it per drain anyway, but keeping it off across the
    # whole timed region stops deploy-phase garbage from being collected
    # inside the load phase's measurement.  Restored before returning.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        wall_start = time.perf_counter()
        deploy_proc = bed.ctx.sim.process(deployer.deploy(topology), name="deploy")
        deployment = bed.run(until=deploy_proc)
        deploy_sim_seconds = bed.now

        def scenario(ctx):
            tasks = []
            for i in range(config.transfers):
                spec = TransferSpec(
                    source_endpoint=CVRG_DATA_ENDPOINT,
                    dest_endpoint=deployment.endpoint_name,
                    items=[TransferItem(_input_path(i), _input_path(i))],
                    label=f"scale-{i:04d}",
                    notify=False,
                )
                tasks.append(bed.go.submit("boliu", spec))
            pool = deployment.pool
            jobs = [
                pool.submit(cpu_work=_job_work(config, i), owner=f"user{i % 8}")
                for i in range(config.jobs)
            ]
            waits = [bed.go.when_done(t) for t in tasks]
            waits += [pool.when_done(j) for j in jobs]
            yield ctx.sim.all_of(waits)
            return tasks, jobs

        proc = bed.ctx.sim.process(scenario(bed.ctx), name="scale-load")
        tasks, jobs = bed.run(until=proc)
        wall = time.perf_counter() - wall_start
    finally:
        if gc_was_enabled:
            gc.enable()

    sim = bed.ctx.sim
    return ScaleResult(
        config=config,
        nodes=len(deployment.nodes),
        deploy_sim_seconds=deploy_sim_seconds,
        sim_seconds=bed.now,
        wall_seconds=wall,
        events_processed=sim.events_processed,
        events_per_sec=sim.events_processed / wall if wall > 0 else 0.0,
        peak_queue_depth=sim.peak_queue_depth,
        transfers_succeeded=sum(
            1 for t in tasks if t.status is TaskStatus.SUCCEEDED
        ),
        jobs_completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
        bytes_transferred=sum(t.bytes_transferred for t in tasks),
    )
