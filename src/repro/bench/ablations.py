"""Ablations of the design choices DESIGN.md calls out.

Not paper figures, but quantifications of the mechanisms the paper
advertises: pre-loaded AMIs (Fig. 1 step 8), billing-model sensitivity of
Fig. 10's costs, Condor pool width vs makespan, and Globus Transfer's
parallel-stream auto-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import calibration
from ..cloud import PriceBook
from ..core import CloudTestbed, usecase_topology
from ..core.usecase import run_usecase
from ..galaxy import JobState
from ..provision import GlobusProvision
from ..reporting import render_series, render_table
from ..transfer import TransferItem, TransferSpec
from ..workloads import make_expression_matrix_bytes


# ---------------------------------------------------------------------------
# AMI pre-loading
# ---------------------------------------------------------------------------


@dataclass
class AmiAblation:
    stock_seconds: float
    custom_seconds: float

    @property
    def speedup(self) -> float:
        return self.stock_seconds / self.custom_seconds

    def check_shape(self) -> None:
        assert self.speedup > 1.8, "custom AMI must cut deployment substantially"

    def render(self) -> str:
        return render_table(
            ["AMI", "deploy (min)"],
            [
                ("gp-public (stock)", f"{self.stock_seconds / 60:.1f}"),
                ("custom snapshot", f"{self.custom_seconds / 60:.1f}"),
            ],
            title=f"AMI pre-loading ablation (speedup {self.speedup:.1f}x)",
        )


def run_ami_ablation(seed: int = 0) -> AmiAblation:
    bed = CloudTestbed(seed=seed)
    gp = GlobusProvision(bed)
    topo = usecase_topology("m1.small", cluster_nodes=1)
    gpi = gp.create(topo)

    def deploy_first():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(deploy_first()))
    stock = gpi.start_seconds
    ami = gp.deployer.create_custom_ami(
        gpi.deployment, "simple-galaxy-condor", "galaxy-preloaded"
    )
    from dataclasses import replace

    topo2 = replace(topo, ec2=replace(topo.ec2, ami=ami.id))
    gpi2 = gp.create(topo2)

    def deploy_second():
        yield from gp.start(gpi2.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(deploy_second()))
    return AmiAblation(stock_seconds=stock, custom_seconds=gpi2.start_seconds)


# ---------------------------------------------------------------------------
# Billing model
# ---------------------------------------------------------------------------


@dataclass
class BillingAblation:
    proportional_usd: float
    hourly_usd: float
    ec2_2012_usd: float

    def check_shape(self) -> None:
        assert self.hourly_usd >= self.proportional_usd
        assert self.ec2_2012_usd > self.proportional_usd  # list prices are higher

    def render(self) -> str:
        return render_table(
            ["billing model", "use-case total (USD)"],
            [
                ("proportional, paper-calibrated prices", f"{self.proportional_usd:.4f}"),
                ("hourly round-up, paper-calibrated prices", f"{self.hourly_usd:.4f}"),
                ("proportional, 2012 on-demand prices", f"{self.ec2_2012_usd:.4f}"),
            ],
            title="Billing-model ablation (whole use-case run, all hosts)",
        )


def run_billing_ablation(seed: int = 0) -> BillingAblation:
    bed = CloudTestbed(seed=seed)
    run_usecase(bed=bed, scale_up_with=None)
    proportional = bed.meter.cost(bed.ctx.now, mode="proportional")
    hourly = bed.meter.cost(bed.ctx.now, mode="hourly")
    bed2 = CloudTestbed(seed=seed, price_book=PriceBook.ec2_2012())
    run_usecase(bed=bed2, scale_up_with=None)
    ec2_2012 = bed2.meter.cost(bed2.ctx.now, mode="proportional")
    return BillingAblation(
        proportional_usd=proportional, hourly_usd=hourly, ec2_2012_usd=ec2_2012
    )


# ---------------------------------------------------------------------------
# Condor pool width
# ---------------------------------------------------------------------------


@dataclass
class PoolWidthAblation:
    widths: list[int]
    makespans_s: list[float] = field(default_factory=list)

    def check_shape(self) -> None:
        assert self.makespans_s == sorted(self.makespans_s, reverse=True)
        # near-linear speedup early on
        assert self.makespans_s[0] / self.makespans_s[1] > 1.5

    def render(self) -> str:
        return render_series(
            "workers",
            self.widths,
            {"makespan of 16 jobs (min)": [f"{m / 60:.1f}" for m in self.makespans_s]},
            title="Condor pool width ablation",
        )


def run_pool_width_ablation(widths: list[int] | None = None, seed: int = 0) -> PoolWidthAblation:
    widths = widths or [1, 2, 4, 8]
    result = PoolWidthAblation(widths=widths)
    data = make_expression_matrix_bytes(n_probes=1000)
    for width in widths:
        bed = CloudTestbed(seed=seed)
        gp = GlobusProvision(bed)
        gpi = gp.create(usecase_topology("m1.small", cluster_nodes=width))

        def scenario():
            yield from gp.start(gpi.id)

        bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
        app = gpi.deployment.galaxy
        history = app.create_history("boliu")
        t0 = bed.ctx.now
        jobs = []
        for i in range(16):
            ds = app.upload_data(
                history, f"m{i}.tsv", data=data, size=100 * calibration.MB,
                ext="tabular",
            )
            jobs.append(app.run_tool("boliu", history, "crdata_matrixTTest", inputs=[ds]))
        bed.ctx.sim.run(
            until=bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs])
        )
        assert all(j.state == JobState.OK for j in jobs)
        result.makespans_s.append(bed.ctx.now - t0)
    return result


# ---------------------------------------------------------------------------
# Transfer batching: one task with N files vs N single-file tasks
# ---------------------------------------------------------------------------


@dataclass
class BatchingAblation:
    n_files: int
    batched_seconds: float
    individual_seconds: float

    @property
    def speedup(self) -> float:
        return self.individual_seconds / self.batched_seconds

    def check_shape(self) -> None:
        assert self.batched_seconds < self.individual_seconds
        assert self.speedup > 1.2  # per-task overhead amortises

    def render(self) -> str:
        return render_table(
            ["submission style", f"total time for {self.n_files} x 10 MB (s)"],
            [
                ("one task, all files", f"{self.batched_seconds:.1f}"),
                ("one task per file", f"{self.individual_seconds:.1f}"),
            ],
            title=f"Transfer batching ablation (batching {self.speedup:.1f}x faster)",
        )


def run_batching_ablation(n_files: int = 12, seed: int = 0) -> BatchingAblation:
    from ..cluster import SimFilesystem
    from ..transfer import GridFTPServer

    def setup():
        bed = CloudTestbed(seed=seed)
        fs = SimFilesystem("g")
        server = GridFTPServer(ctx=bed.ctx, hostname="g.ec2", site="ec2", fs=fs)
        bed.go.register_user("cvrg")
        bed.go.create_endpoint("cvrg#galaxy", [server], public=True)
        for i in range(n_files):
            bed.laptop_fs.write(f"/home/boliu/b/f{i}.dat", size=10 * calibration.MB)
        return bed

    items = [
        TransferItem(f"/home/boliu/b/f{i}.dat", f"/in/f{i}.dat")
        for i in range(n_files)
    ]
    # batched: one task
    bed = setup()
    t0 = bed.ctx.now
    task = bed.go.submit(
        "boliu",
        TransferSpec("boliu#laptop", "cvrg#galaxy", items=items, notify=False),
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    batched = bed.ctx.now - t0
    # individual: sequential single-file tasks (as a naive script would)
    bed = setup()
    t0 = bed.ctx.now
    for item in items:
        task = bed.go.submit(
            "boliu",
            TransferSpec("boliu#laptop", "cvrg#galaxy", items=[item], notify=False),
        )
        bed.ctx.sim.run(until=bed.go.when_done(task))
    individual = bed.ctx.now - t0
    return BatchingAblation(
        n_files=n_files, batched_seconds=batched, individual_seconds=individual
    )


# ---------------------------------------------------------------------------
# Globus Transfer stream count
# ---------------------------------------------------------------------------


@dataclass
class StreamAblation:
    streams: list[int]
    rates_mbps: list[float] = field(default_factory=list)

    def check_shape(self) -> None:
        assert all(b >= a for a, b in zip(self.rates_mbps, self.rates_mbps[1:]))
        assert self.rates_mbps[-1] > 2.5 * self.rates_mbps[0]

    def render(self) -> str:
        return render_series(
            "parallel streams",
            self.streams,
            {"1 GB transfer rate (Mbit/s)": [f"{r:.1f}" for r in self.rates_mbps]},
            title="GridFTP parallel-stream ablation",
        )


def run_stream_ablation(streams: list[int] | None = None, seed: int = 0) -> StreamAblation:
    from ..cluster import SimFilesystem
    from ..transfer import GridFTPServer

    streams = streams or [1, 2, 4, 8]
    bed = CloudTestbed(seed=seed)
    galaxy_fs = SimFilesystem("g")
    server = GridFTPServer(ctx=bed.ctx, hostname="g.ec2", site="ec2", fs=galaxy_fs)
    bed.go.register_user("cvrg")
    bed.go.create_endpoint("cvrg#galaxy", [server], public=True)
    result = StreamAblation(streams=streams)
    for i, n in enumerate(streams):
        path = f"/home/boliu/stream_{n}.dat"
        bed.laptop_fs.write(path, size=calibration.GB)
        task = bed.go.submit(
            "boliu",
            TransferSpec(
                source_endpoint="boliu#laptop",
                dest_endpoint="cvrg#galaxy",
                items=[TransferItem(path, f"/in/{i}.dat")],
                parallel=n,
                notify=False,
            ),
        )
        bed.ctx.sim.run(until=bed.go.when_done(task))
        result.rates_mbps.append(task.effective_rate_mbps())
    return result
