"""Figure 11: average transfer rate by method and file size.

Moves files from the researcher's laptop to the Galaxy server (running on
a c1.medium instance, as in the paper) using the three methods Galaxy
offers — Globus Transfer, FTP upload, HTTP form upload — and reports the
achieved Mbit/s.  Globus Transfer runs through the full service (task
submission, activation, parallel GridFTP streams); the baselines run
through Galaxy's upload paths.  HTTP refuses files above 2 GB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import calibration
from ..cluster import SimFilesystem
from ..core import CloudTestbed
from ..reporting import Comparison, render_series
from ..transfer import (
    FTPUploader,
    GridFTPServer,
    HTTPUploader,
    TransferItem,
    TransferSpec,
    UploadError,
)

#: the paper's reported envelope (Sec. V-B)
PAPER_GO_RANGE_MBPS = (1.8, 37.0)
PAPER_FTP_RANGE_MBPS = (0.2, 5.9)
PAPER_HTTP_MAX_MBPS = 0.03

METHODS = ["globus", "ftp", "http"]


@dataclass
class Figure11Result:
    sizes: list[int]
    rates: dict[str, list[Optional[float]]] = field(default_factory=dict)

    def check_shape(self) -> None:
        for i, size in enumerate(self.sizes):
            go, ftp, http = (
                self.rates["globus"][i], self.rates["ftp"][i], self.rates["http"][i]
            )
            assert go is not None and ftp is not None
            assert go > ftp, f"GO must beat FTP at {size}"
            if http is not None:
                assert ftp > http, f"FTP must beat HTTP at {size}"
                assert http < PAPER_HTTP_MAX_MBPS * 1.05
            elif size <= calibration.HTTP_MAX_BYTES:
                raise AssertionError("HTTP refused a file under its cap")
        go = [r for r in self.rates["globus"] if r is not None]
        assert go == sorted(go), "GO rate must grow with file size"

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return f"{v:.2f}" if v is not None else "refused"

        table = render_series(
            "size",
            [f"{s // calibration.MB} MB" for s in self.sizes],
            {
                "Globus Transfer (Mbit/s)": [fmt(v) for v in self.rates["globus"]],
                "FTP (Mbit/s)": [fmt(v) for v in self.rates["ftp"]],
                "HTTP (Mbit/s)": [fmt(v) for v in self.rates["http"]],
            },
            title="Figure 11: laptop -> Galaxy server average transfer rate",
        )
        return table + "\n\n" + self.comparison().render()

    def comparison(self) -> Comparison:
        cmp = Comparison("Figure 11 paper-vs-measured")
        go = [r for r in self.rates["globus"] if r is not None]
        ftp = [r for r in self.rates["ftp"] if r is not None]
        http = [r for r in self.rates["http"] if r is not None]
        if go:
            cmp.add("GO min Mbit/s", PAPER_GO_RANGE_MBPS[0], round(min(go), 2))
            cmp.add("GO max Mbit/s", PAPER_GO_RANGE_MBPS[1], round(max(go), 2))
        if ftp:
            cmp.add("FTP min Mbit/s", PAPER_FTP_RANGE_MBPS[0], round(min(ftp), 2))
            cmp.add("FTP max Mbit/s", PAPER_FTP_RANGE_MBPS[1], round(max(ftp), 2))
        if http:
            cmp.add("HTTP max Mbit/s", PAPER_HTTP_MAX_MBPS, round(max(http), 3))
        return cmp


def _measure_globus(bed: CloudTestbed, galaxy_fs, size: int, idx: int) -> float:
    path = f"/home/boliu/fig11_{idx}.dat"
    bed.laptop_fs.write(path, size=size)
    spec = TransferSpec(
        source_endpoint="boliu#laptop",
        dest_endpoint="cvrg#galaxy",
        items=[TransferItem(path, f"/galaxy/incoming/fig11_{idx}.dat")],
        notify=False,
    )
    task = bed.go.submit("boliu", spec)
    bed.ctx.sim.run(until=bed.go.when_done(task))
    rate = task.effective_rate_mbps()
    assert rate is not None
    return rate


def _measure_baseline(bed: CloudTestbed, galaxy_fs, size: int, idx: int, cls) -> Optional[float]:
    path = f"/home/boliu/fig11_b{idx}.dat"
    bed.laptop_fs.write(path, size=size)
    uploader = cls(bed.ctx)
    proc = bed.ctx.sim.process(
        uploader.upload(bed.laptop_fs, path, galaxy_fs, f"/galaxy/up/fig11_{idx}.dat")
    )
    try:
        result = bed.ctx.sim.run(until=proc)
    except UploadError:
        return None
    return result.rate_mbps


def run(sizes: Optional[list[int]] = None, seed: int = 0) -> Figure11Result:
    sizes = sizes or list(calibration.FIGURE11_FILE_SIZES)
    bed = CloudTestbed(seed=seed)
    # the Galaxy server of Fig. 11 runs on a c1.medium at the EC2 site; for
    # this transfer-only figure a bare server is equivalent to a full deploy
    galaxy_fs = SimFilesystem("galaxy-server")
    server = GridFTPServer(
        ctx=bed.ctx, hostname="galaxy.ec2", site="ec2", fs=galaxy_fs
    )
    bed.go.register_user("cvrg")
    bed.go.create_endpoint("cvrg#galaxy", [server], public=True)
    result = Figure11Result(sizes=sizes, rates={m: [] for m in METHODS})
    for i, size in enumerate(sizes):
        result.rates["globus"].append(_measure_globus(bed, galaxy_fs, size, i))
        result.rates["ftp"].append(
            _measure_baseline(bed, galaxy_fs, size, i, FTPUploader)
        )
        result.rates["http"].append(
            _measure_baseline(bed, galaxy_fs, size, i + 1000, HTTPUploader)
        )
    return result
