"""The Globus Transfer REST API client, as Galaxy consumes it.

The paper: "During execution, Galaxy invokes the Globus Transfer REST API
to create and monitor the transfer; this information is used to update
the status of the job in the Galaxy history panel."  This client mirrors
the 2012 Transfer API surface (submission id, task document, events,
endpoint operations) against our in-process service.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..simcore import SimEvent
from .globus_online import (
    GlobusError,
    GlobusOnline,
    TaskStatus,
    TransferItem,
    TransferSpec,
    TransferTask,
)


class GlobusAPIError(Exception):
    """HTTP-level failure (auth, 404, validation)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class TaskDocument:
    """The JSON-ish task document the REST API returns."""

    task_id: str
    status: str
    label: str
    files: int
    files_transferred: int
    bytes_transferred: int
    faults: int
    nice_status: str

    @classmethod
    def from_task(cls, task: TransferTask) -> "TaskDocument":
        return cls(
            task_id=task.task_id,
            status=task.status.value,
            label=task.spec.label,
            files=task.files_total,
            files_transferred=task.files_transferred,
            bytes_transferred=task.bytes_transferred,
            faults=task.faults,
            nice_status=task.fatal_error or ("OK" if task.is_terminal else "Queued"),
        )


class TransferClient:
    """Authenticated client bound to one Globus Online user."""

    def __init__(self, service: GlobusOnline, username: str) -> None:
        if username not in service.users:
            raise GlobusAPIError(401, f"no such account {username!r}")
        self.service = service
        self.username = username
        self._submission_ids = itertools.count(1)
        self._used_submission_ids: set[str] = set()

    # -- submission --------------------------------------------------------------
    def get_submission_id(self) -> str:
        """Idempotency token, as the real API requires before a submit."""
        return f"sub-{self.username}-{next(self._submission_ids):06d}"

    def submit_transfer(
        self,
        submission_id: str,
        source_endpoint: str,
        dest_endpoint: str,
        items: list[tuple[str, str]] | list[TransferItem],
        label: str = "",
        deadline_s: Optional[float] = None,
        verify_checksum: bool = True,
        notify: bool = True,
    ) -> TaskDocument:
        if submission_id in self._used_submission_ids:
            raise GlobusAPIError(409, f"submission id {submission_id} already used")
        norm_items = [
            it if isinstance(it, TransferItem) else TransferItem(it[0], it[1])
            for it in items
        ]
        spec = TransferSpec(
            source_endpoint=source_endpoint,
            dest_endpoint=dest_endpoint,
            items=norm_items,
            label=label,
            deadline_s=deadline_s,
            verify_checksum=verify_checksum,
            notify=notify,
        )
        try:
            task = self.service.submit(self.username, spec)
        except GlobusError as exc:
            raise GlobusAPIError(400, str(exc)) from exc
        self._used_submission_ids.add(submission_id)
        return TaskDocument.from_task(task)

    # -- monitoring -----------------------------------------------------------------
    def get_task(self, task_id: str) -> TaskDocument:
        task = self._task(task_id)
        return TaskDocument.from_task(task)

    def task_event_list(self, task_id: str) -> list[dict]:
        task = self._task(task_id)
        return [
            {"time": e.time, "code": e.code, "description": e.description}
            for e in task.events
        ]

    def when_task_done(self, task_id: str) -> SimEvent:
        """Kernel event for process-level waiting (in-process convenience)."""
        return self.service.when_done(self._task(task_id))

    def task_successful(self, task_id: str) -> bool:
        return self._task(task_id).status == TaskStatus.SUCCEEDED

    def _task(self, task_id: str) -> TransferTask:
        try:
            task = self.service.task(task_id)
        except GlobusError as exc:
            raise GlobusAPIError(404, str(exc)) from exc
        if task.owner != self.username:
            raise GlobusAPIError(403, f"task {task_id} belongs to {task.owner}")
        return task

    # -- endpoints ---------------------------------------------------------------------
    def endpoint_list(self) -> list[str]:
        return [e.name for e in self.service.list_endpoints(self.username)]

    def endpoint_activate(self, name: str) -> float:
        try:
            return self.service.activate_endpoint(name, self.username)
        except GlobusError as exc:
            raise GlobusAPIError(400, str(exc)) from exc
