"""Site graph: which network path connects any two endpoints' locations.

Each GridFTP server lives at a *site* (the user's laptop, the EC2
deployment, a campus data repository).  The site graph maps site pairs to
:class:`~repro.cloud.network.NetworkPath` objects; transfers between
servers look their path up here.  Same-site transfers use the LAN path.
"""

from __future__ import annotations

from ..cloud.network import NetworkPath


class SiteGraph:
    """Symmetric map of (site, site) -> NetworkPath."""

    def __init__(self, default: NetworkPath | None = None) -> None:
        self._paths: dict[frozenset[str], NetworkPath] = {}
        self._sites: set[str] = set()
        self.default = default if default is not None else NetworkPath.paper_wan()
        self.lan = NetworkPath.lan()

    def add_site(self, name: str) -> None:
        self._sites.add(name)

    @property
    def sites(self) -> set[str]:
        return set(self._sites)

    def connect(self, a: str, b: str, path: NetworkPath) -> None:
        if a == b:
            raise ValueError("use the implicit LAN path for same-site transfers")
        self.add_site(a)
        self.add_site(b)
        self._paths[frozenset((a, b))] = path

    def path(self, a: str, b: str) -> NetworkPath:
        if a == b:
            return self.lan
        return self._paths.get(frozenset((a, b)), self.default)

    @classmethod
    def paper_testbed(cls) -> "SiteGraph":
        """Laptop, EC2 deployment, and the CVRG data endpoint (Sec. V)."""
        g = cls()
        wan = NetworkPath.paper_wan()
        for a, b in [("laptop", "ec2"), ("laptop", "cvrg"), ("cvrg", "ec2")]:
            g.connect(a, b, wan)
        return g
