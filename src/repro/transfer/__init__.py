"""Transfer stack: GridFTP, Globus Online service + REST client, baselines."""

from .api import GlobusAPIError, TaskDocument, TransferClient
from .baselines import FTPUploader, HTTPUploader, UploadError, UploadResult
from .globus_online import (
    ACTIVATION_LIFETIME_S,
    EmailNotification,
    Endpoint,
    GlobusError,
    GlobusOnline,
    GOUser,
    TaskEvent,
    TaskStatus,
    TransferItem,
    TransferSpec,
    TransferTask,
)
from .gridftp import GridFTPError, GridFTPServer, checksum_seconds
from .sites import SiteGraph

__all__ = [
    "ACTIVATION_LIFETIME_S",
    "EmailNotification",
    "Endpoint",
    "FTPUploader",
    "GOUser",
    "GlobusAPIError",
    "GlobusError",
    "GlobusOnline",
    "GridFTPError",
    "GridFTPServer",
    "HTTPUploader",
    "SiteGraph",
    "TaskDocument",
    "TaskEvent",
    "TaskStatus",
    "TransferClient",
    "TransferItem",
    "TransferSpec",
    "TransferTask",
    "UploadError",
    "UploadResult",
    "checksum_seconds",
]
