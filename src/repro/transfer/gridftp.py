"""GridFTP servers: the data movers behind Globus endpoints.

A :class:`GridFTPServer` fronts a filesystem at a site, holds a host
certificate, and limits concurrent data connections.  The Globus Transfer
service drives pairs of servers to move data; the server itself also
exposes a direct ``transfer_file`` process for third-party GridFTP use
(what `globus-url-copy` would do).
"""

from __future__ import annotations

import math
import posixpath
from dataclasses import dataclass, field
from typing import Optional, Union

from .. import calibration
from ..cloud.network import NetworkPath, aggregate_rate_bps, slow_start_ramp_s
from ..cluster.nfs import FileNode, MountTable, SimFilesystem
from ..security.x509 import Certificate
from ..simcore import Resource, SimContext

Filesystem = Union[SimFilesystem, MountTable]

#: GridFTP's extended-block-mode data block (what a real server reads per
#: disk/network round).  A naive simulation would schedule one event per
#: block — O(8000) events for a 2 GB file.
GRIDFTP_BLOCK_BYTES = 256 * 1024
#: Cap on simulation events per file transfer: blocks are coalesced into
#: at most this many equal slices, so even multi-GB files cost O(tens) of
#: heap operations while still exposing in-flight progress.
MAX_CHUNK_EVENTS = 16


def coalesced_chunk_plan(
    size_bytes: int,
    block_bytes: int = GRIDFTP_BLOCK_BYTES,
    max_events: int = MAX_CHUNK_EVENTS,
) -> list[int]:
    """Split ``size_bytes`` into at most ``max_events`` contiguous slices.

    Each slice is a whole number of blocks (the last takes the remainder),
    so progress accounting matches what block-mode GridFTP would report,
    without paying one simulation event per block.
    """
    if size_bytes <= 0:
        return []
    n_blocks = math.ceil(size_bytes / block_bytes)
    n_slices = min(max_events, n_blocks)
    blocks_per_slice = n_blocks // n_slices
    extra = n_blocks % n_slices
    plan: list[int] = []
    remaining = size_bytes
    for i in range(n_slices):
        blocks = blocks_per_slice + (1 if i < extra else 0)
        take = min(remaining, blocks * block_bytes)
        plan.append(take)
        remaining -= take
    if remaining:  # pragma: no cover - arithmetic guard
        plan[-1] += remaining
    return plan


class GridFTPError(Exception):
    pass


@dataclass
class GridFTPServer:
    """One GridFTP daemon."""

    ctx: SimContext
    hostname: str
    site: str
    fs: Filesystem
    host_cert: Optional[Certificate] = None
    max_connections: int = 16
    #: bytes moved through this server (both directions), for accounting
    bytes_moved: int = 0
    #: transfer tasks currently assigned here (load-balancing signal)
    active_tasks: int = 0
    _conn_pool: Resource = field(init=False)

    def __post_init__(self) -> None:
        self._conn_pool = Resource(self.ctx.sim, capacity=self.max_connections)

    # -- filesystem facade -----------------------------------------------------
    def stat(self, path: str) -> FileNode:
        try:
            return self.fs.stat(path)
        except Exception as exc:
            raise GridFTPError(f"{self.hostname}: stat {path}: {exc}") from exc

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def list_files(self, path: str) -> list[str]:
        """All file paths under ``path`` (itself, if ``path`` is a file)."""
        if self.fs.isfile(path):
            return [path]
        if not self.fs.isdir(path):
            raise GridFTPError(f"{self.hostname}: no such path {path}")
        out: list[str] = []

        def _walk(d: str) -> None:
            for name in self.fs.listdir(d):
                child = posixpath.join(d, name)
                if self.fs.isfile(child):
                    out.append(child)
                else:
                    _walk(child)

        _walk(path)
        return sorted(out)

    def store(self, path: str, src_node: FileNode, now: float) -> None:
        """Materialise a received file (content and declared size both copy).

        The source's content token rides along, so a later
        ``sync_level="checksum"`` compare recognises the copy — while a
        file independently re-written at the source (fresh token) is
        re-transferred even at the same size.
        """
        self.fs.write(
            path,
            data=src_node.data,
            size=src_node.size,
            owner=src_node.owner,
            mtime=now,
            checksum=src_node.checksum,
        )
        self.bytes_moved += src_node.size

    # -- timing model ------------------------------------------------------------
    def stream_plan(self, size_bytes: int, parallel: Optional[int] = None) -> int:
        """How many parallel streams to use (auto-tuned unless forced)."""
        from ..cloud.network import globus_streams_for

        if parallel is not None:
            if parallel < 1:
                raise GridFTPError("parallel streams must be >= 1")
            return parallel
        return globus_streams_for(size_bytes)

    def wire_seconds(
        self, path: NetworkPath, size_bytes: int, streams: int
    ) -> float:
        """Pure data-movement time for one file (no task overhead)."""
        rate = aggregate_rate_bps(path, streams, calibration.GO_WINDOW_BYTES)
        ramp = slow_start_ramp_s(path, calibration.GO_WINDOW_BYTES)
        return ramp + size_bytes * 8.0 / rate

    # -- chunk-progress cohort ----------------------------------------------------
    def chunk_cohort(
        self,
        plan: list[int],
        rate: float,
        last_at: float | None = None,
        tail: float = 0.0,
    ):
        """Register ``plan``'s slices as one cohort of progress timers.

        Fire times accumulate sequentially from now (matching what a
        timeout-per-slice loop would produce); ``last_at`` optionally
        pins the final member to an exact absolute time so callers that
        already computed a whole-file duration keep it bit-identical.
        Each member adds its slice's bytes to :attr:`bytes_moved`; the
        cohort's ``done`` event fires when the last slice lands.  A
        positive ``tail`` appends one zero-byte member that many seconds
        after the last slice (post-transfer work such as a checksum
        pass), delaying ``done`` without a separate timer.
        """
        t = self.ctx.sim.now
        times = []
        for slice_bytes in plan:
            t += slice_bytes * 8.0 / rate
            times.append(t)
        if last_at is not None:
            times[-1] = last_at
        if tail > 0.0:
            plan = plan + [0]
            times.append(times[-1] + tail)
        return self.ctx.sim.schedule_cohort(
            times, self._chunk_apply, payload=plan, layer="gridftp.chunk"
        )

    def _chunk_apply(self, cohort, start: int, stop: int) -> None:
        plan = cohort.payload
        if stop - start == 1:
            self.bytes_moved += plan[start]
        else:
            self.bytes_moved += sum(plan[start:stop])

    # -- direct third-party transfer (globus-url-copy equivalent) ----------------
    def transfer_file(
        self,
        dest: "GridFTPServer",
        src_path: str,
        dst_path: str,
        network: NetworkPath,
        parallel: Optional[int] = None,
        cause: Optional[int] = None,
    ):
        """Simulation process moving one file from this server to ``dest``.

        ``cause`` optionally names the obs span id that provoked the
        transfer (a Galaxy job staging data, a deployment step).
        Returns (bytes, seconds) when awaited.
        """
        node = self.stat(src_path)
        streams = self.stream_plan(node.size, parallel)
        start = self.ctx.now
        obs = self.ctx.obs
        # track=None: concurrent transfers through one server overlap
        # arbitrarily, so each span gets its own single-use track
        span = obs.start(
            "gridftp.transfer",
            cause=cause,
            src=f"{self.hostname}:{src_path}",
            dst=f"{dest.hostname}:{dst_path}",
            bytes=node.size,
            streams=streams,
        )
        src_req = self._conn_pool.request()
        dst_req = dest._conn_pool.request()
        yield src_req
        yield dst_req
        try:
            # Move the file as coalesced block slices: progress (and
            # byte accounting) advances in-flight, but a transfer costs at
            # most MAX_CHUNK_EVENTS simulation events regardless of size.
            # The slices are one cohort (struct-of-arrays record) instead
            # of a timeout per slice; `_chunk_apply` advances the byte
            # counter as members fire.
            rate = aggregate_rate_bps(network, streams, calibration.GO_WINDOW_BYTES)
            yield self.ctx.sim.timeout(
                slow_start_ramp_s(network, calibration.GO_WINDOW_BYTES)
            )
            plan = coalesced_chunk_plan(node.size)
            chunks = len(plan)
            if plan:
                yield self.chunk_cohort(plan, rate).done
            dest.store(dst_path, node, now=self.ctx.now)
        except BaseException as exc:
            obs.finish(span, status="error", error=repr(exc))
            raise
        finally:
            src_req.release()
            dst_req.release()
        obs.finish(span.set(chunks=chunks))
        if obs.enabled:
            obs.counter("gridftp.transfers").inc()
            obs.counter("gridftp.chunks").inc(chunks)
            obs.counter("gridftp.bytes").inc(node.size)
        self.ctx.log(
            "gridftp",
            "transfer",
            src=f"{self.hostname}:{src_path}",
            dst=f"{dest.hostname}:{dst_path}",
            bytes=node.size,
            streams=streams,
        )
        return node.size, self.ctx.now - start


def checksum_seconds(size_bytes: int) -> float:
    """Integrity verification cost (both ends pipelined)."""
    # ~200 MB/s scan rate
    return size_bytes / (200.0 * calibration.MB)


def per_file_request_cost(n_files: int, rtt_s: float) -> float:
    """Control-channel chatter: a couple of RTTs per file in a batch."""
    return max(0, n_files - 1) * 2.0 * rtt_s


def mlsd_seconds(n_entries: int, rtt_s: float) -> float:
    """Directory listing cost for recursive transfers."""
    return rtt_s * (1 + math.ceil(n_entries / 50))
