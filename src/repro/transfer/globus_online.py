"""Globus Online / Globus Transfer: the hosted transfer service.

Reproduces the service behaviour the paper depends on (Sec. IV-A):

* users register accounts and attach X.509 credentials to their profile;
* endpoints front GridFTP servers and must be *activated* with a valid
  user credential before use — Globus Online "manages, on behalf of
  users, the security credentials required ... [and] will utilize the
  appropriate credential to activate the selected endpoint";
* transfers are fire-and-forget *tasks*: the service monitors progress,
  retries faults automatically with backoff, auto-tunes parallel streams,
  enforces optional deadlines (Galaxy shows an error if exceeded), and
  e-mails the user on completion;
* third-party transfers (neither endpoint local to the requester) work.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from .. import calibration
from ..security.x509 import Certificate, CertificateAuthority, CertificateError
from ..simcore import SimContext, SimEvent
from .gridftp import (
    GridFTPError,
    GridFTPServer,
    checksum_seconds,
    coalesced_chunk_plan,
    mlsd_seconds,
    per_file_request_cost,
)
from .sites import SiteGraph

#: Control-plane latency of one REST call to the hosted service.
API_LATENCY_S = 0.5
#: Base retry backoff; attempt ``k`` waits ``k * RETRY_BACKOFF_S``.
RETRY_BACKOFF_S = 5.0
#: Default endpoint activation lifetime.
ACTIVATION_LIFETIME_S = 12 * 3600.0


class GlobusError(Exception):
    pass


class TaskStatus(str, enum.Enum):
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"


@dataclass(frozen=True)
class TransferItem:
    """One source->destination pairing inside a task."""

    source_path: str
    dest_path: str
    recursive: bool = False


@dataclass
class TransferSpec:
    """What the user asks the service to do."""

    source_endpoint: str
    dest_endpoint: str
    items: list[TransferItem]
    label: str = ""
    deadline_s: Optional[float] = None   # relative to submission
    verify_checksum: bool = True
    parallel: Optional[int] = None       # force stream count (None = auto)
    notify: bool = True
    #: mirror/synchronize mode: None (always copy), "exists" (skip files
    #: already present at the destination), or "checksum" (skip only when
    #: the destination content matches)
    sync_level: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sync_level not in (None, "exists", "checksum"):
            raise ValueError(f"unknown sync_level {self.sync_level!r}")


@dataclass
class TaskEvent:
    time: float
    code: str
    description: str


@dataclass
class EmailNotification:
    time: float
    to: str
    subject: str
    body: str


@dataclass
class TransferTask:
    """Service-side record of one transfer."""

    task_id: str
    owner: str
    spec: TransferSpec
    status: TaskStatus = TaskStatus.ACTIVE
    submit_time: float = 0.0
    completion_time: Optional[float] = None
    bytes_transferred: int = 0
    files_transferred: int = 0
    files_skipped: int = 0
    files_total: int = 0
    faults: int = 0
    fatal_error: str = ""
    events: list[TaskEvent] = field(default_factory=list)
    done: Optional[SimEvent] = None

    @property
    def is_terminal(self) -> bool:
        return self.status in (TaskStatus.SUCCEEDED, TaskStatus.FAILED)

    @property
    def duration_s(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def effective_rate_mbps(self) -> Optional[float]:
        dur = self.duration_s
        if not dur:
            return None
        return self.bytes_transferred * 8.0 / dur / 1e6


@dataclass
class GOUser:
    username: str
    email: str
    credentials: list[Certificate] = field(default_factory=list)


@dataclass
class Endpoint:
    """A named Globus endpoint fronting one or more GridFTP servers."""

    name: str                      # canonical "owner#display" form
    owner: str
    servers: list[GridFTPServer]
    public: bool = False
    #: username -> activation expiry (absolute sim time)
    activations: dict[str, float] = field(default_factory=dict)

    @property
    def site(self) -> str:
        return self.servers[0].site

    def pick_server(self) -> GridFTPServer:
        """Least-loaded GridFTP server (endpoints can front several)."""
        return min(
            self.servers, key=lambda s: (s.active_tasks, s._conn_pool.count)
        )

    def is_activated(self, username: str, now: float) -> bool:
        return self.activations.get(username, -1.0) > now


class GlobusOnline:
    """The hosted service: accounts, endpoints, and the transfer engine."""

    def __init__(
        self,
        ctx: SimContext,
        sites: Optional[SiteGraph] = None,
        ca: Optional[CertificateAuthority] = None,
        fault_rate: float = 0.0,
        max_retries: int = 3,
    ) -> None:
        if not (0.0 <= fault_rate < 1.0):
            raise ValueError("fault_rate must be in [0, 1)")
        self.ctx = ctx
        self.sites = sites if sites is not None else SiteGraph.paper_testbed()
        self.ca = ca if ca is not None else CertificateAuthority("GlobusOnline-CA")
        self.fault_rate = fault_rate
        self.max_retries = max_retries
        self.users: dict[str, GOUser] = {}
        self.endpoints: dict[str, Endpoint] = {}
        self.tasks: dict[str, TransferTask] = {}
        self.emails: list[EmailNotification] = []
        self._task_ids = itertools.count(1)
        # obs causal carriers: task id -> go.task span id, cited by the
        # per-file spans (and by downstream stage-in consumers).  Stays
        # empty when obs is disabled; consumers gate on truthiness.
        self._task_span_ids: dict[str, int] = {}
        #: tasks submitted but not yet terminal (obs gauge series)
        self._active_count = 0

    # -- accounts ---------------------------------------------------------------
    def register_user(self, username: str, email: str = "") -> GOUser:
        if username in self.users:
            raise GlobusError(f"username {username!r} taken")
        user = GOUser(username=username, email=email or f"{username}@example.org")
        self.users[username] = user
        return user

    def _user(self, username: str) -> GOUser:
        try:
            return self.users[username]
        except KeyError:
            raise GlobusError(f"no Globus Online account {username!r}") from None

    def add_user_credential(self, username: str, cert: Certificate) -> None:
        """Attach an X.509 certificate to the user's profile (Sec. IV-A)."""
        self._user(username).credentials.append(cert)

    # -- endpoints ----------------------------------------------------------------
    def create_endpoint(
        self,
        name: str,
        servers: list[GridFTPServer],
        public: bool = False,
    ) -> Endpoint:
        """Register ``owner#display`` fronting the given servers."""
        if "#" not in name:
            raise GlobusError(f"endpoint name {name!r} must be 'owner#display'")
        owner = name.split("#", 1)[0]
        self._user(owner)
        if name in self.endpoints:
            raise GlobusError(f"endpoint {name!r} exists")
        if not servers:
            raise GlobusError("an endpoint needs at least one GridFTP server")
        ep = Endpoint(name=name, owner=owner, servers=list(servers), public=public)
        self.endpoints[name] = ep
        return ep

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self.endpoints[name]
        except KeyError:
            raise GlobusError(f"no such endpoint {name!r}") from None

    def list_endpoints(self, username: str) -> list[Endpoint]:
        """Endpoints visible to a user: public ones plus their own."""
        self._user(username)
        return sorted(
            (e for e in self.endpoints.values() if e.public or e.owner == username),
            key=lambda e: e.name,
        )

    def activate_endpoint(
        self,
        name: str,
        username: str,
        credential: Optional[Certificate] = None,
        lifetime_s: float = ACTIVATION_LIFETIME_S,
    ) -> float:
        """Activate an endpoint for a user; returns the expiry time.

        With no explicit credential the service tries each certificate on
        the user's profile (auto-activation).
        """
        ep = self.endpoint(name)
        user = self._user(username)
        candidates = [credential] if credential is not None else list(user.credentials)
        last_error: Optional[Exception] = None
        for cred in candidates:
            try:
                self.ca.verify(cred, self.ctx.now)
            except CertificateError as exc:
                last_error = exc
                continue
            expiry = min(self.ctx.now + lifetime_s, cred.not_after)
            ep.activations[username] = expiry
            self.ctx.log(
                "globus", "activate", endpoint=name, user=username, expiry=expiry
            )
            return expiry
        if last_error is not None:
            raise GlobusError(f"activation of {name} failed: {last_error}")
        raise GlobusError(
            f"activation of {name} failed: no credential on {username}'s profile"
        )

    def activate_endpoint_myproxy(
        self,
        name: str,
        username: str,
        myproxy_server,
        myproxy_username: str,
        passphrase: str,
        lifetime_s: float = ACTIVATION_LIFETIME_S,
    ) -> float:
        """Activate using a delegated MyProxy credential (the 2012 flow).

        Globus Online contacts the MyProxy server GP deployed, retrieves a
        short-lived proxy with the user's passphrase, and activates the
        endpoint with it.
        """
        from ..security.myproxy import MyProxyError

        try:
            proxy = myproxy_server.retrieve(
                myproxy_username, passphrase, now=self.ctx.now, lifetime_s=lifetime_s
            )
        except MyProxyError as exc:
            raise GlobusError(f"MyProxy activation of {name} failed: {exc}") from exc
        return self.activate_endpoint(
            name, username, credential=proxy, lifetime_s=lifetime_s
        )

    # -- transfers -----------------------------------------------------------------
    def submit(self, username: str, spec: TransferSpec) -> TransferTask:
        """Submit a transfer; returns immediately with an ACTIVE task."""
        self._user(username)
        if not spec.items:
            raise GlobusError("a transfer needs at least one item")
        # endpoints must resolve at submit time (API behaviour)
        self.endpoint(spec.source_endpoint)
        self.endpoint(spec.dest_endpoint)
        task = TransferTask(
            task_id=f"go-task-{next(self._task_ids):06d}",
            owner=username,
            spec=spec,
            submit_time=self.ctx.now,
            done=self.ctx.sim.event(),
        )
        self.tasks[task.task_id] = task
        self._event(task, "SUBMITTED", f"{len(spec.items)} item(s)")
        self.ctx.log(
            "globus",
            "task-submit",
            task=task.task_id,
            src=spec.source_endpoint,
            dst=spec.dest_endpoint,
            items=len(spec.items),
            label=spec.label,
        )
        obs = self.ctx.obs
        if obs.enabled:
            self._task_span_ids[task.task_id] = obs.start(
                "go.task",
                track=f"go/{task.task_id}",
                task=task.task_id,
                src=spec.source_endpoint,
                dst=spec.dest_endpoint,
                label=spec.label,
            ).id
            obs.counter("go.tasks").inc()
            self._active_count += 1
            obs.series("go.active_tasks").record(self._active_count)
        self.ctx.sim.process(self._run_task(task), name=task.task_id)
        return task

    def task(self, task_id: str) -> TransferTask:
        try:
            return self.tasks[task_id]
        except KeyError:
            raise GlobusError(f"no such task {task_id!r}") from None

    def task_span_id(self, task_id: str):
        """Obs span id of a task's go.task span (None when obs is off).

        Lets consumers (Galaxy staging tools) cite the transfer that fed
        them as the cause of their own spans — ids stay resolvable after
        the task completes, like the tasks themselves.
        """
        return self._task_span_ids.get(task_id) if self._task_span_ids else None

    def when_done(self, task: TransferTask) -> SimEvent:
        assert task.done is not None
        return task.done

    # -- internals --------------------------------------------------------------------
    def _event(self, task: TransferTask, code: str, description: str) -> None:
        task.events.append(TaskEvent(self.ctx.now, code, description))

    def _fail(self, task: TransferTask, reason: str) -> None:
        task.status = TaskStatus.FAILED
        task.fatal_error = reason
        task.completion_time = self.ctx.now
        self._event(task, "FAILED", reason)
        self._finish(task)

    def _succeed(self, task: TransferTask) -> None:
        task.status = TaskStatus.SUCCEEDED
        task.completion_time = self.ctx.now
        self._event(task, "SUCCEEDED", f"{task.bytes_transferred} bytes")
        self._finish(task)

    def _finish(self, task: TransferTask) -> None:
        """Common terminal bookkeeping: trace record, spans, notification."""
        self.ctx.log(
            "globus",
            "task-done",
            task=task.task_id,
            status=task.status.value,
            bytes=task.bytes_transferred,
            files=task.files_transferred,
            faults=task.faults,
            error=task.fatal_error,
        )
        obs = self.ctx.obs
        if obs.enabled:
            # closes the task span and any file span still open on a
            # mid-transfer failure, innermost first
            if task.status is TaskStatus.FAILED:
                obs.finish_open(
                    f"go/{task.task_id}", status="error", error=task.fatal_error
                )
            else:
                obs.finish_open(f"go/{task.task_id}")
            self._active_count -= 1
            obs.series("go.active_tasks").record(self._active_count)
        self._notify(task)
        if task.done is not None and not task.done.triggered:
            task.done.succeed(task)

    def _notify(self, task: TransferTask) -> None:
        if not task.spec.notify:
            return
        user = self._user(task.owner)
        self.emails.append(
            EmailNotification(
                time=self.ctx.now,
                to=user.email,
                subject=f"Globus Transfer {task.task_id} {task.status.value}",
                body=(
                    f"label={task.spec.label!r} files={task.files_transferred}"
                    f"/{task.files_total} bytes={task.bytes_transferred}"
                    + (f" error={task.fatal_error}" if task.fatal_error else "")
                ),
            )
        )

    def _ensure_active(self, task: TransferTask, ep: Endpoint) -> bool:
        if ep.is_activated(task.owner, self.ctx.now):
            return True
        try:
            self.activate_endpoint(ep.name, task.owner)
            self._event(task, "ACTIVATED", ep.name)
            return True
        except GlobusError as exc:
            self._fail(task, str(exc))
            return False

    def _run_task(self, task: TransferTask):
        spec = task.spec
        deadline = (
            task.submit_time + spec.deadline_s if spec.deadline_s is not None else None
        )
        yield self.ctx.sim.timeout(API_LATENCY_S)
        src_ep = self.endpoint(spec.source_endpoint)
        dst_ep = self.endpoint(spec.dest_endpoint)
        if not self._ensure_active(task, src_ep):
            return
        if not self._ensure_active(task, dst_ep):
            return
        src = src_ep.pick_server()
        dst = dst_ep.pick_server()
        src.active_tasks += 1
        dst.active_tasks += 1
        task_servers = (src, dst)
        if task.done is not None:
            task.done.callbacks.append(
                lambda _ev: [
                    setattr(s, "active_tasks", s.active_tasks - 1)
                    for s in task_servers
                ]
            )
        network = self.sites.path(src.site, dst.site)

        # Expand items into a concrete file list.
        files: list[tuple[str, str, int]] = []  # (src_path, dst_path, size)
        try:
            for item in spec.items:
                if item.recursive:
                    children = src.list_files(item.source_path)
                    yield self.ctx.sim.timeout(mlsd_seconds(len(children), network.rtt_s))
                    root = item.source_path.rstrip("/")
                    for child in children:
                        rel = child[len(root):].lstrip("/")
                        dst_path = item.dest_path.rstrip("/") + "/" + rel
                        files.append((child, dst_path, src.stat(child).size))
                else:
                    files.append(
                        (item.source_path, item.dest_path, src.stat(item.source_path).size)
                    )
        except GridFTPError as exc:
            self._fail(task, str(exc))
            return
        task.files_total = len(files)

        # One-time task overhead plus per-file control chatter.
        yield self.ctx.sim.timeout(
            calibration.GO_OVERHEAD_S + per_file_request_cost(len(files), network.rtt_s)
        )

        faults_stream = self.ctx.stream("globus.faults")
        obs = self.ctx.obs
        track = f"go/{task.task_id}"
        src_conn = src._conn_pool.request()
        dst_conn = dst._conn_pool.request()
        yield src_conn
        yield dst_conn
        try:
            for src_path, dst_path, size in files:
                if spec.sync_level is not None and dst.exists(dst_path):
                    try:
                        # either side may vanish between expansion and this
                        # compare; that is a FAILED task, not a sim crash
                        matches = spec.sync_level == "exists" or (
                            spec.sync_level == "checksum"
                            and dst.stat(dst_path).checksum == src.stat(src_path).checksum
                        )
                    except GridFTPError as exc:
                        self._fail(task, str(exc))
                        return
                    if matches:
                        # one control round trip to compare, then move on
                        yield self.ctx.sim.timeout(2.0 * network.rtt_s)
                        task.files_skipped += 1
                        self._event(task, "SKIPPED", f"{dst_path} up to date")
                        continue
                streams = src.stream_plan(size, spec.parallel)
                wire = src.wire_seconds(network, size, streams)
                file_span = obs.start(
                    "go.file",
                    track=track,
                    cause=self._task_span_ids.get(task.task_id)
                    if self._task_span_ids
                    else None,
                    path=dst_path,
                    bytes=size,
                    streams=streams,
                )
                chunk_moved = False
                checksummed = False
                if deadline is None and self.fault_rate == 0.0 and wire > 0.0:
                    # Fault-free, deadline-free transfers (the paper's
                    # headline sweeps) skip the retry loop: the file's
                    # wire time becomes one chunk cohort whose members
                    # expose in-flight progress on the source server and
                    # whose last member is pinned to exactly ``wire``
                    # seconds out, so completion timing is bit-identical
                    # to the single timeout it replaces.  The checksum
                    # pass rides along as the cohort's tail member.
                    attempt = 1
                    plan = coalesced_chunk_plan(size)
                    if plan:
                        tail = (
                            checksum_seconds(size) if spec.verify_checksum else 0.0
                        )
                        yield src.chunk_cohort(
                            plan,
                            size * 8.0 / wire,
                            last_at=self.ctx.now + wire,
                            tail=tail,
                        ).done
                        chunk_moved = True
                        checksummed = tail > 0.0
                    else:
                        yield self.ctx.sim.timeout(wire)
                else:
                    attempt = 0
                    while True:
                        attempt += 1
                        if deadline is not None and self.ctx.now >= deadline:
                            self._fail(task, "deadline exceeded")
                            return
                        faulted = (
                            self.fault_rate > 0.0
                            and float(faults_stream.random()) < self.fault_rate
                        )
                        duration = wire
                        if faulted:
                            duration = wire * float(faults_stream.uniform(0.05, 0.8))
                        if deadline is not None and self.ctx.now + duration > deadline:
                            yield self.ctx.sim.timeout(deadline - self.ctx.now)
                            self._fail(task, "deadline exceeded")
                            return
                        yield self.ctx.sim.timeout(duration)
                        if not faulted:
                            break
                        task.faults += 1
                        self._event(
                            task,
                            "FAULT",
                            f"{src_path}: connection reset (attempt {attempt})",
                        )
                        if obs.enabled:
                            obs.counter("go.faults").inc()
                            obs.instant(
                                "go.fault", track=track, path=src_path, attempt=attempt
                            )
                        if attempt > self.max_retries:  # max_retries + 1 attempts
                            self._fail(task, f"{src_path}: retries exhausted")
                            return
                        backoff = RETRY_BACKOFF_S * attempt
                        if deadline is not None and self.ctx.now + backoff > deadline:
                            yield self.ctx.sim.timeout(max(0.0, deadline - self.ctx.now))
                            self._fail(task, "deadline exceeded")
                            return
                        yield self.ctx.sim.timeout(backoff)
                if spec.verify_checksum and not checksummed:
                    yield self.ctx.sim.timeout(checksum_seconds(size))
                try:
                    node = src.stat(src_path)
                except GridFTPError as exc:
                    self._fail(task, str(exc))
                    return
                dst.store(dst_path, node, now=self.ctx.now)
                if not chunk_moved:  # the chunk cohort already counted it
                    src.bytes_moved += size
                task.files_transferred += 1
                task.bytes_transferred += size
                self._event(task, "PROGRESS", f"{dst_path} ({size} bytes)")
                obs.finish(file_span.set(attempts=attempt))
                if obs.enabled:
                    obs.counter("go.bytes").inc(size)
                    obs.histogram("go.file_seconds").observe(
                        file_span.duration_s or 0.0
                    )
        finally:
            src_conn.release()
            dst_conn.release()
        self._succeed(task)
