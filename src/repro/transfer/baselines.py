"""Galaxy's stock upload paths: FTP and HTTP (the Fig. 11 baselines).

The paper compares Globus Transfer against "the tools for uploading files
via FTP and HTTP" that Galaxy already provides, finding them "often
unreliable and inefficient" and noting that "files larger than 2GB cannot
be uploaded to Galaxy directly from a user's computer" over HTTP.

Both baselines move a file from a source filesystem (the laptop) into a
destination filesystem (the Galaxy server) in simulated time, using the
calibrated protocol models from :mod:`repro.cloud.network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..cloud.network import (
    NetworkPath,
    ProtocolModel,
    TransferTooLarge,
    ftp_model,
    http_model,
)
from ..cluster.nfs import MountTable, SimFilesystem
from ..simcore import SimContext

Filesystem = Union[SimFilesystem, MountTable]


class UploadError(Exception):
    pass


@dataclass
class UploadResult:
    protocol: str
    bytes: int
    seconds: float
    rate_mbps: float


class _BaselineUploader:
    """Shared machinery: stat source, wait model time, write destination."""

    def __init__(self, ctx: SimContext, network: Optional[NetworkPath] = None) -> None:
        self.ctx = ctx
        self.network = network if network is not None else NetworkPath.paper_wan()

    def _model(self) -> ProtocolModel:  # pragma: no cover - abstract
        raise NotImplementedError

    def upload(self, src_fs: Filesystem, src_path: str, dst_fs: Filesystem, dst_path: str):
        """Simulation process; returns :class:`UploadResult`."""
        try:
            node = src_fs.stat(src_path)
        except Exception as exc:
            raise UploadError(f"source {src_path}: {exc}") from exc
        model = self._model()
        try:
            seconds = model.transfer_seconds(self.network, node.size)
        except TransferTooLarge as exc:
            raise UploadError(str(exc)) from exc
        start = self.ctx.now
        yield self.ctx.sim.timeout(seconds)
        dst_fs.write(
            dst_path,
            data=node.data,
            size=node.size,
            mtime=self.ctx.now,
            checksum=node.checksum,
        )
        elapsed = self.ctx.now - start
        self.ctx.log(
            "upload", model.name, path=dst_path, bytes=node.size, seconds=elapsed
        )
        return UploadResult(
            protocol=model.name,
            bytes=node.size,
            seconds=elapsed,
            rate_mbps=node.size * 8.0 / elapsed / 1e6 if elapsed else 0.0,
        )


class FTPUploader(_BaselineUploader):
    """Galaxy's FTP upload directory + periodic import scan."""

    def _model(self) -> ProtocolModel:
        return ftp_model()


class HTTPUploader(_BaselineUploader):
    """Galaxy's browser form upload; refuses files over 2 GB."""

    def _model(self) -> ProtocolModel:
        return http_model()
