"""The elastic provisioner: a policy-driven control loop over gp-update.

Every reshape goes through the same ``gp-instance-update`` topology
path a human operator would use (Sec. III-C): the loop snapshots the
pool, asks its policy for a delta, clamps to ``[min_workers,
max_workers]``, and applies one topology diff.  Growth appends workers
of ``worker_instance_type`` (the paper's scale-up adds a c1.medium);
shrinkage drops the most recently added worker and drains it — running
jobs finish, the machine then leaves the pool and its EC2 instance
stops billing.

Updates are serialized by construction: the loop does not sample again
until the in-flight update completes, so the topology never receives
concurrent diffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..provision.instance import GlobusProvision
from ..provision.topology import with_worker_count
from .policies import PoolSnapshot, ScalingPolicy


@dataclass(frozen=True)
class ScalingEvent:
    """One applied reshape, for the benchmark's audit trail."""

    time: float
    action: str             # "scale-up" | "scale-down"
    workers_before: int
    workers_after: int
    queue_depth: int
    backlog_workflows: int
    update_seconds: float


class ElasticProvisioner:
    """Autoscaler bound to one running GP instance's domain."""

    def __init__(
        self,
        gp: GlobusProvision,
        instance_id: str,
        policy: ScalingPolicy,
        snapshot: Callable[[], PoolSnapshot],
        domain: str = "waas",
        check_interval_s: float = 60.0,
        min_workers: int = 1,
        max_workers: int = 8,
        worker_instance_type: str = "c1.medium",
    ) -> None:
        if min_workers < 0 or max_workers < min_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")
        self.gp = gp
        self.instance_id = instance_id
        self.policy = policy
        self.snapshot = snapshot
        self.domain = domain
        self.check_interval_s = check_interval_s
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.worker_instance_type = worker_instance_type
        self.events: list[ScalingEvent] = []
        self.scale_ups = 0
        self.scale_downs = 0
        self.peak_workers = 0
        self._proc = None
        self._stopping = False
        self._stop_event = None

    # -- control -----------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            return
        ctx = self.gp.bed.ctx
        self._stopping = False
        self.peak_workers = max(self.peak_workers, self.worker_count())
        self._proc = ctx.sim.process(self._loop(), name="waas-provisioner")

    def stop(self) -> None:
        """Ask the control loop to exit at its next wakeup."""
        self._stopping = True
        if self._stop_event is not None and not self._stop_event.triggered:
            self._stop_event.succeed()

    def worker_count(self) -> int:
        gpi = self.gp.get(self.instance_id)
        return gpi.topology.domain(self.domain).cluster_nodes

    # -- the loop ----------------------------------------------------------
    def _loop(self):
        ctx = self.gp.bed.ctx
        while not self._stopping:
            self._stop_event = ctx.sim.event()
            yield ctx.sim.any_of(
                [ctx.sim.timeout(self.check_interval_s), self._stop_event]
            )
            if self._stopping:
                return
            gpi = self.gp.get(self.instance_id)
            if gpi.deployment is None or gpi.state.value != "Running":
                continue
            snap = self.snapshot()
            workers = self.worker_count()
            target = workers + self.policy.decide(snap)
            target = max(self.min_workers, min(self.max_workers, target))
            if target == workers:
                continue
            yield from self._apply(workers, target, snap)

    def _apply(self, workers: int, target: int, snap: PoolSnapshot):
        ctx = self.gp.bed.ctx
        gpi = self.gp.get(self.instance_id)
        new_topology = with_worker_count(
            gpi.topology, self.domain, target, self.worker_instance_type
        )
        t0 = ctx.now
        yield from self.gp.update(self.instance_id, new_topology)
        action = "scale-up" if target > workers else "scale-down"
        self.events.append(
            ScalingEvent(
                time=ctx.now,
                action=action,
                workers_before=workers,
                workers_after=target,
                queue_depth=snap.queue_depth,
                backlog_workflows=snap.backlog_workflows,
                update_seconds=ctx.now - t0,
            )
        )
        if target > workers:
            self.scale_ups += 1
        else:
            self.scale_downs += 1
        self.peak_workers = max(self.peak_workers, target)
        obs = ctx.obs
        if obs.enabled:
            obs.counter(
                "waas.scale_ups" if target > workers else "waas.scale_downs"
            ).inc()
            obs.gauge("waas.workers").set(target)
            obs.instant(
                "waas.scale", track="waas",
                action=action, workers=target, queue_depth=snap.queue_depth,
            )
