"""Tenant population and open-loop arrival processes for the WaaS front door.

The paper's deployments serve one lab at a time; a Workflow-as-a-Service
front door serves *populations* — thousands of tenants submitting
workflow DAGs against deadlines.  This module builds that demand side:
a roster of :class:`TenantSpec` and a list of :class:`WorkflowRequest`
whose arrival times come from either a Poisson process (the open-loop
default) or an explicit trace.

Arrivals are *open-loop*: the request list is fully determined by the
config seed before the simulation starts, so the demand never reacts to
how the service is doing — the property that makes policy runs
comparable and lets the whole arrival schedule register as one
struct-of-arrays cohort.  All randomness comes from a private
``numpy`` generator derived from the seed; the simulation's own RNG
streams are never touched, so adding WaaS load to a testbed cannot
perturb any other seeded behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..workloads.generators import DAG_SHAPES, WorkflowDAG, make_workflow_dag


@dataclass(frozen=True)
class TenantSpec:
    """One customer of the service."""

    id: int
    name: str
    #: max workflows this tenant may have admitted concurrently
    quota: int = 2

    def __post_init__(self) -> None:
        if self.quota < 1:
            raise ValueError("tenant quota must be >= 1")


@dataclass
class WorkflowRequest:
    """One submitted workflow: a DAG, an arrival offset, a deadline.

    ``arrival_s`` is an offset from the instant the service opens;
    ``allowance_s`` is the deadline budget measured from arrival.  The
    absolute times (and the admission/completion stamps) are filled in
    by the service at runtime.
    """

    id: int
    tenant: TenantSpec
    dag: WorkflowDAG
    arrival_s: float
    allowance_s: float
    # -- runtime state, stamped by the service ---------------------------
    deadline_s: float = 0.0
    arrived_s: Optional[float] = None
    admitted_s: Optional[float] = None
    completed_s: Optional[float] = None
    rejected: bool = False

    @property
    def admission_wait_s(self) -> Optional[float]:
        if self.admitted_s is None or self.arrived_s is None:
            return None
        return self.admitted_s - self.arrived_s

    @property
    def makespan_s(self) -> Optional[float]:
        if self.completed_s is None or self.arrived_s is None:
            return None
        return self.completed_s - self.arrived_s

    @property
    def sla_met(self) -> bool:
        return self.completed_s is not None and self.completed_s <= self.deadline_s


def make_tenants(n: int, quota: int = 2) -> tuple[TenantSpec, ...]:
    """A roster of ``n`` identically-quota'd tenants."""
    if n < 1:
        raise ValueError("need at least one tenant")
    width = max(4, len(str(n - 1)))
    return tuple(
        TenantSpec(id=i, name=f"tenant-{i:0{width}d}", quota=quota)
        for i in range(n)
    )


@dataclass(frozen=True)
class ArrivalPlan:
    """The demand side of one WaaS run: tenants plus their requests."""

    tenants: tuple[TenantSpec, ...]
    requests: tuple[WorkflowRequest, ...] = field(repr=False)

    @property
    def total_work(self) -> float:
        return sum(r.dag.total_work for r in self.requests)

    @property
    def span_s(self) -> float:
        return self.requests[-1].arrival_s if self.requests else 0.0


def _dag_catalog(
    unique_dags: int,
    shapes: Sequence[str],
    dag_tasks: int,
    mean_task_work_s: float,
    seed: int,
) -> list[WorkflowDAG]:
    """``unique_dags`` distinct DAGs cycling through ``shapes``.

    Requests share these objects (a 100k-tenant run must not build 100k
    DAGs); the executor keys its per-DAG plan cache on object identity,
    which sharing makes effective.
    """
    if unique_dags < 1:
        raise ValueError("unique_dags must be >= 1")
    for shape in shapes:
        if shape not in DAG_SHAPES:
            raise ValueError(f"unknown DAG shape {shape!r}; known: {DAG_SHAPES}")
    return [
        make_workflow_dag(
            shape=shapes[v % len(shapes)],
            n_tasks=dag_tasks,
            seed=seed + v,
            mean_work_s=mean_task_work_s,
        )
        for v in range(unique_dags)
    ]


def poisson_plan(
    n_tenants: int,
    workflows: int,
    arrival_rate_per_s: float,
    *,
    tenant_quota: int = 2,
    dag_tasks: int = 6,
    unique_dags: int = 50,
    shapes: Sequence[str] = DAG_SHAPES,
    mean_task_work_s: float = 90.0,
    deadline_base_s: float = 600.0,
    deadline_slack: float = 3.0,
    seed: int = 0,
) -> ArrivalPlan:
    """Poisson arrivals: i.i.d. exponential gaps at ``arrival_rate_per_s``.

    Each workflow lands on a uniformly random tenant and draws one of
    ``unique_dags`` shared DAG variants.  The deadline budget is
    ``deadline_base_s + deadline_slack * critical_path_work`` — a
    workflow with no queueing on reference (m1.small) hardware finishes
    well inside it, so attainment measures the *service*, not the
    generator.
    """
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival_rate_per_s must be > 0")
    if workflows < 1:
        raise ValueError("need at least one workflow")
    tenants = make_tenants(n_tenants, quota=tenant_quota)
    rng = np.random.default_rng(seed)
    # Rounded to ms so arrival timestamps survive JSON round-trips
    # bit-exactly; ties are fine (the arrival cohort preserves order).
    times = np.round(
        np.cumsum(rng.exponential(1.0 / arrival_rate_per_s, size=workflows)), 3
    )
    tenant_ix = rng.integers(0, n_tenants, size=workflows)
    catalog = _dag_catalog(unique_dags, tuple(shapes), dag_tasks, mean_task_work_s, seed)
    requests = tuple(
        WorkflowRequest(
            id=i,
            tenant=tenants[int(tenant_ix[i])],
            dag=(dag := catalog[i % unique_dags]),
            arrival_s=float(times[i]),
            allowance_s=deadline_base_s + deadline_slack * dag.critical_path_work(),
        )
        for i in range(workflows)
    )
    return ArrivalPlan(tenants=tenants, requests=requests)


def trace_plan(
    trace: Iterable[dict],
    *,
    n_tenants: int,
    tenant_quota: int = 2,
    dag_tasks: int = 6,
    unique_dags: int = 50,
    shapes: Sequence[str] = DAG_SHAPES,
    mean_task_work_s: float = 90.0,
    deadline_base_s: float = 600.0,
    deadline_slack: float = 3.0,
    seed: int = 0,
) -> ArrivalPlan:
    """Trace-driven arrivals: replay explicit ``{"t", "tenant"}`` records.

    Optional per-record keys override the catalog defaults: ``variant``
    picks a specific DAG from the shared catalog, ``allowance_s`` pins
    the deadline budget.  Records must be in non-decreasing ``t`` order
    (the schedule registers as one cohort).
    """
    tenants = make_tenants(n_tenants, quota=tenant_quota)
    catalog = _dag_catalog(unique_dags, tuple(shapes), dag_tasks, mean_task_work_s, seed)
    requests: list[WorkflowRequest] = []
    last_t = 0.0
    for i, rec in enumerate(trace):
        t = float(rec["t"])
        if t < last_t:
            raise ValueError(f"trace record {i} goes back in time ({t} < {last_t})")
        last_t = t
        tenant_id = int(rec["tenant"])
        if not 0 <= tenant_id < n_tenants:
            raise ValueError(f"trace record {i} names unknown tenant {tenant_id}")
        dag = catalog[int(rec.get("variant", i)) % unique_dags]
        allowance = rec.get("allowance_s")
        if allowance is None:
            allowance = deadline_base_s + deadline_slack * dag.critical_path_work()
        requests.append(
            WorkflowRequest(
                id=i,
                tenant=tenants[tenant_id],
                dag=dag,
                arrival_s=t,
                allowance_s=float(allowance),
            )
        )
    if not requests:
        raise ValueError("empty trace")
    return ArrivalPlan(tenants=tenants, requests=tuple(requests))
