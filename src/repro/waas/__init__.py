"""Workflow-as-a-Service: a multi-tenant front door over the GP sim.

Thousands of tenants submit workflow DAGs with deadlines; admission
control fair-shares them onto one Condor pool, and an elastic
provisioner reshapes that pool through the topology-update path.  The
``waas`` bench suite races provisioning policies on SLA attainment vs
dollar cost.
"""

from .admission import AdmissionController
from .policies import (
    POLICIES,
    DeadlineSlackPolicy,
    PoolSnapshot,
    QueueDepthPolicy,
    ScalingPolicy,
    StaticPolicy,
    make_policy,
)
from .provisioner import ElasticProvisioner, ScalingEvent
from .service import WaasService, waas_topology
from .tenants import (
    ArrivalPlan,
    TenantSpec,
    WorkflowRequest,
    make_tenants,
    poisson_plan,
    trace_plan,
)

__all__ = [
    "POLICIES",
    "AdmissionController",
    "ArrivalPlan",
    "DeadlineSlackPolicy",
    "ElasticProvisioner",
    "PoolSnapshot",
    "QueueDepthPolicy",
    "ScalingEvent",
    "ScalingPolicy",
    "StaticPolicy",
    "TenantSpec",
    "WaasService",
    "WorkflowRequest",
    "make_policy",
    "make_tenants",
    "poisson_plan",
    "trace_plan",
    "waas_topology",
]
