"""Pluggable elasticity policies: pool snapshots in, worker deltas out.

The paper scales its cluster by hand (``gp-instance-update`` adding a
c1.medium mid-workflow, Sec. V-A); its conclusion names automating that
as future work.  These policies are that automation, factored so the
benchmark can race them: a policy is a pure function from a
:class:`PoolSnapshot` to a desired worker-count delta, and everything
stateful (intervals, clamping, applying topology updates) lives in the
provisioner.  Pure decisions keep policy runs deterministic and make a
policy trivially testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PoolSnapshot:
    """What a policy sees at one control interval."""

    now: float
    #: condor workers currently in the topology
    workers: int
    #: idle jobs in the schedd queue
    queue_depth: int
    #: jobs running right now
    running: int
    #: slots across non-draining machines
    total_slots: int
    #: m1.small-seconds of work the pool retires per simulated second
    cpu_capacity: float
    #: backlogged cpu+io work sitting idle in the schedd
    idle_work: float
    #: workflows the admission controller is holding back
    backlog_workflows: int
    #: their total DAG work
    backlog_work: float
    #: workflows admitted and executing
    in_flight: int
    #: tightest live deadline minus ``now`` (None when nothing is live)
    min_deadline_slack_s: Optional[float] = None

    @property
    def pending_work(self) -> float:
        """Everything not yet running: schedd backlog + held-back DAGs."""
        return self.idle_work + self.backlog_work


class ScalingPolicy:
    """Base: the static (paper-baseline) policy — never reshape."""

    name = "static"

    def decide(self, snap: PoolSnapshot) -> int:
        """Desired worker-count delta; the provisioner clamps and applies."""
        return 0

    def describe(self) -> dict:
        return {"name": self.name}


class StaticPolicy(ScalingPolicy):
    """Explicit alias so ``make_policy('static')`` reads naturally."""


class QueueDepthPolicy(ScalingPolicy):
    """Grow on queue pressure, shrink when the pool goes quiet.

    The classic threshold autoscaler: add ``step`` workers whenever the
    visible backlog (idle jobs plus admission-deferred workflows)
    exceeds ``up_per_slot`` per slot, drop one worker once the service
    is fully drained.
    """

    name = "queue_depth"

    def __init__(self, up_per_slot: float = 2.0, step: int = 1) -> None:
        if up_per_slot <= 0:
            raise ValueError("up_per_slot must be > 0")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.up_per_slot = up_per_slot
        self.step = step

    def decide(self, snap: PoolSnapshot) -> int:
        backlog = snap.queue_depth + snap.backlog_workflows
        if snap.total_slots == 0:
            return self.step if backlog else 0
        if backlog >= self.up_per_slot * snap.total_slots:
            return self.step
        if backlog == 0 and snap.running == 0:
            return -1
        return 0

    def describe(self) -> dict:
        return {"name": self.name, "up_per_slot": self.up_per_slot, "step": self.step}


class DeadlineSlackPolicy(ScalingPolicy):
    """Grow when projected drain time threatens the tightest deadline.

    Estimates how long the pending work takes at current capacity; if
    that projection (padded by ``headroom``) exceeds the slack of the
    most urgent live workflow, capacity is the binding constraint and
    the pool grows.  SLA-aware where :class:`QueueDepthPolicy` is
    load-aware: a deep queue of slack-rich work does not trigger it.
    """

    name = "deadline_slack"

    def __init__(self, headroom: float = 1.5, step: int = 1) -> None:
        if headroom <= 0:
            raise ValueError("headroom must be > 0")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.headroom = headroom
        self.step = step

    def decide(self, snap: PoolSnapshot) -> int:
        pending = snap.pending_work
        if pending > 0 and snap.cpu_capacity <= 0:
            return self.step
        if pending == 0 and snap.running == 0:
            return -1
        slack = snap.min_deadline_slack_s
        if slack is None:
            return 0
        drain_s = pending / snap.cpu_capacity
        if drain_s * self.headroom > slack:
            return self.step
        return 0

    def describe(self) -> dict:
        return {"name": self.name, "headroom": self.headroom, "step": self.step}


POLICIES = {
    "static": StaticPolicy,
    "queue_depth": QueueDepthPolicy,
    "deadline_slack": DeadlineSlackPolicy,
}


def make_policy(name: str, **params) -> ScalingPolicy:
    try:
        cls = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scaling policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls(**params)
