"""The WaaS front door: arrivals -> admission -> DAG execution -> SLA.

``WaasService`` runs a multi-tenant workflow service on top of one GP
deployment: tenants submit workflow DAGs with deadlines (the open-loop
:mod:`~repro.waas.tenants` plan), the admission controller gates them
behind quotas and fair share, and admitted DAGs execute on the
deployment's Condor pool — each task a Condor job owned by its tenant,
so the negotiator's per-owner fair share applies *within* the pool just
as admission applies above it.

Two scale-critical choices:

* the entire arrival schedule registers as **one struct-of-arrays
  cohort** (``layer="waas.arrival"``) — 100k arrivals cost one kernel
  registration, not 100k timers;
* DAG execution is **callback-driven**: task completions chain through
  Condor's ``on_complete`` into readiness updates, so a workflow in
  flight holds no resident simulation process.  The only processes in
  a WaaS run are the provisioner loop and whatever the kernel already
  runs.

The service never draws randomness: arrivals are precomputed and
execution is reactive, so obs-on and obs-off runs (and scalar vs
cohort dispatch) stay byte-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from ..provision.instance import GlobusProvision
from ..provision.topology import DomainSpec, EC2Spec, GlobusOnlineSpec, Topology
from .admission import AdmissionController
from .policies import PoolSnapshot
from .tenants import ArrivalPlan, WorkflowRequest


def waas_topology(
    base_workers: int,
    instance_type: str = "m1.small",
    domain: str = "waas",
    storage: str = "nfs",
    storage_nodes: int = 0,
) -> Topology:
    """A lean WaaS pool: NFS/NIS head + Condor workers, no Galaxy tier.

    The front door submits to Condor directly, so the topology skips the
    Galaxy/GridFTP nodes the interactive deployments carry — at 100k
    tenants the head-node tax would be pure noise.  ``storage`` picks the
    data-sharing backend (``repro.storage``) for the pool.
    """
    return Topology(
        domains=(
            DomainSpec(
                name=domain,
                users=("waas-admin",),
                nfs=True,
                condor=True,
                cluster_nodes=base_workers,
                storage=storage,
                storage_nodes=storage_nodes,
            ),
        ),
        ec2=EC2Spec(instance_type=instance_type),
        globusonline=GlobusOnlineSpec(),
    )


class WaasService:
    """Multi-tenant workflow execution bound to one GP instance."""

    def __init__(
        self,
        gp: GlobusProvision,
        instance_id: str,
        plan: ArrivalPlan,
        admission: AdmissionController,
        domain: str = "waas",
    ) -> None:
        self.gp = gp
        self.ctx = gp.bed.ctx
        self.instance_id = instance_id
        self.plan = plan
        self.admission = admission
        self.domain = domain
        admission.bind(self._start_workflow, self._workflow_rejected)
        # -- per-DAG execution plans, shared across requests ----------------
        # keyed by object identity: the arrival plan hands the same DAG
        # object to many requests, so a 100k-workflow run builds only
        # ``unique_dags`` plans (values keep the DAG alive, making ids safe)
        self._plans: dict[int, tuple] = {}
        # -- per-request runtime state --------------------------------------
        self._indegree: dict[int, list[int]] = {}
        self._remaining: dict[int, int] = {}
        # obs causal carriers: request id -> current span id on its
        # track (waas.workflow at arrival, waas.admit once admitted), so
        # the Condor submissions a workflow fans out cite the service
        # span that released them.  Stays empty when obs is disabled —
        # every consumer gates on the dict's truthiness.
        self._wf_span_ids: dict[int, int] = {}
        # -- deadline index for the provisioner's snapshot ------------------
        self._deadline_heap: list[tuple[float, int]] = []
        self._live: set[int] = set()
        # -- outcomes -------------------------------------------------------
        self.completed: list[WorkflowRequest] = []
        self.rejected: list[WorkflowRequest] = []
        self.sla_met = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self._all_done = self.ctx.sim.event()

    # -- lifecycle ---------------------------------------------------------
    @property
    def all_done(self):
        """Fires once every planned request has completed or been rejected."""
        return self._all_done

    @property
    def pool(self):
        return self.gp.get(self.instance_id).deployment.pool

    def open(self) -> float:
        """Register the full arrival schedule; returns the open instant.

        Arrival offsets become absolute times relative to *now* (call
        this once the deployment is up) and enter the kernel as a single
        cohort — the service's demand side costs O(1) registrations.
        """
        t0 = self.ctx.now
        requests = self.plan.requests
        times = [t0 + r.arrival_s for r in requests]
        self.ctx.sim.schedule_cohort(
            times, self._arrival_apply, payload=requests, layer="waas.arrival"
        )
        self.ctx.log("waas", "open", requests=len(requests), t0=t0)
        return t0

    # -- arrivals ----------------------------------------------------------
    def _arrival_apply(self, cohort, start: int, stop: int) -> None:
        requests = cohort.payload
        now = self.ctx.now
        obs = self.ctx.obs
        for k in range(start, stop):
            req = requests[k]
            req.arrived_s = now
            req.deadline_s = now + req.allowance_s
            self._live.add(req.id)
            heappush(self._deadline_heap, (req.deadline_s, req.id))
            if obs.enabled:
                obs.counter("waas.arrivals").inc()
                self._wf_span_ids[req.id] = obs.start(
                    "waas.workflow",
                    track=self._track(req),
                    tenant=req.tenant.name,
                    workflow=req.id,
                    shape=req.dag.shape,
                ).id
            self.admission.offer(req)

    @staticmethod
    def _track(req: WorkflowRequest) -> str:
        """Per-tenant span tracks: every workflow files under its tenant."""
        return f"waas/{req.tenant.name}/wf-{req.id}"

    # -- execution ---------------------------------------------------------
    def _dag_plan(self, dag) -> tuple:
        plan = self._plans.get(id(dag))
        if plan is None:
            children: list[list[int]] = [[] for _ in dag.tasks]
            indegree = [len(t.parents) for t in dag.tasks]
            for t in dag.tasks:
                for p in t.parents:
                    children[p].append(t.id)
            plan = self._plans[id(dag)] = (
                dag,  # keep alive so id() stays unambiguous
                tuple(tuple(c) for c in children),
                tuple(indegree),
            )
        return plan

    def _start_workflow(self, req: WorkflowRequest) -> None:
        """Admission callback: release the DAG's root tasks to Condor."""
        obs = self.ctx.obs
        if obs.enabled:
            # zero-width admission marker: arrival -> admit -> dispatch
            # becomes an explicit causal chain (admission may fire long
            # after arrival when the request sat in the backlog)
            span = obs.start(
                "waas.admit",
                track=self._track(req),
                cause=self._wf_span_ids.get(req.id),
                workflow=req.id,
            )
            obs.finish(span)
            self._wf_span_ids[req.id] = span.id
            obs.series("waas.in_flight").record(self.admission.in_flight)
        _dag, children, indegree0 = self._dag_plan(req.dag)
        self._indegree[req.id] = list(indegree0)
        self._remaining[req.id] = len(req.dag.tasks)
        for task in req.dag.tasks:
            if not task.parents:
                self._submit_task(req, task.id)

    def _submit_task(self, req: WorkflowRequest, task_id: int) -> None:
        task = req.dag.tasks[task_id]
        self.jobs_submitted += 1

        def _done(job, req=req, task_id=task_id):
            self._task_done(req, task_id)

        self.pool.submit(
            cpu_work=task.cpu_work,
            owner=req.tenant.name,
            on_complete=_done,
            cause=self._wf_span_ids.get(req.id) if self._wf_span_ids else None,
        )

    def _task_done(self, req: WorkflowRequest, task_id: int) -> None:
        self.jobs_completed += 1
        _dag, children, _indegree0 = self._plans[id(req.dag)]
        indegree = self._indegree[req.id]
        for child in children[task_id]:
            indegree[child] -= 1
            if indegree[child] == 0:
                self._submit_task(req, child)
        self._remaining[req.id] -= 1
        if self._remaining[req.id] == 0:
            self._finish_workflow(req)

    def _finish_workflow(self, req: WorkflowRequest) -> None:
        now = self.ctx.now
        req.completed_s = now
        del self._indegree[req.id]
        del self._remaining[req.id]
        self._live.discard(req.id)
        self.completed.append(req)
        met = req.sla_met
        if met:
            self.sla_met += 1
        obs = self.ctx.obs
        if obs.enabled:
            obs.counter("waas.completed").inc()
            obs.counter("waas.sla_met" if met else "waas.sla_missed").inc()
            obs.histogram("waas.makespan_s").observe(now - req.arrived_s)
            obs.finish_open(self._track(req), status="ok" if met else "error",
                            error=None if met else "deadline-missed")
            self._wf_span_ids.pop(req.id, None)
        self.ctx.log(
            "waas", "workflow-done", workflow=req.id,
            tenant=req.tenant.name, sla=met,
        )
        self.admission.complete(req)
        if obs.enabled:
            obs.series("waas.in_flight").record(self.admission.in_flight)
        self._check_all_done()

    def _workflow_rejected(self, req: WorkflowRequest) -> None:
        self._live.discard(req.id)
        self.rejected.append(req)
        obs = self.ctx.obs
        if obs.enabled:
            obs.finish_open(self._track(req), status="cancelled", error="rejected")
            self._wf_span_ids.pop(req.id, None)
        self._check_all_done()

    def _check_all_done(self) -> None:
        if (
            len(self.completed) + len(self.rejected) == len(self.plan.requests)
            and not self._all_done.triggered
        ):
            self._all_done.succeed(self)

    # -- observability for the provisioner ---------------------------------
    def min_deadline_slack(self) -> Optional[float]:
        """Slack of the most urgent live workflow (negative when late)."""
        heap = self._deadline_heap
        while heap and heap[0][1] not in self._live:
            heappop(heap)
        if not heap:
            return None
        return heap[0][0] - self.ctx.now

    def snapshot(self) -> PoolSnapshot:
        """The provisioner's policy input, assembled in O(log live)."""
        pool = self.pool
        adm = self.admission
        gpi = self.gp.get(self.instance_id)
        return PoolSnapshot(
            now=self.ctx.now,
            workers=gpi.topology.domain(self.domain).cluster_nodes,
            queue_depth=pool.schedd.idle_count(),
            running=pool.running_count,
            total_slots=pool.total_slots,
            cpu_capacity=pool.total_cpu_capacity,
            idle_work=pool.idle_work,
            backlog_workflows=adm.backlog_workflows,
            backlog_work=adm.backlog_work,
            in_flight=adm.in_flight,
            min_deadline_slack_s=self.min_deadline_slack(),
        )

    # -- results -----------------------------------------------------------
    @property
    def sla_attainment(self) -> float:
        done = len(self.completed) + len(self.rejected)
        return self.sla_met / done if done else 0.0
