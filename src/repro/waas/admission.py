"""Admission control: per-tenant quotas and fair-share dispatch.

The Condor layer already fair-shares *jobs* between owners (PR 3's
per-owner idle buckets); this controller fair-shares *workflows*
between tenants one level up, before any job reaches the schedd.  Two
limits gate admission:

* each tenant runs at most ``TenantSpec.quota`` workflows at once;
* the service as a whole runs at most ``max_in_flight`` workflows,
  bounding the job queue the negotiator has to scan.

Deferred workflows wait in per-tenant FIFOs.  When capacity frees up,
the tenant with the least accumulated usage (total DAG work completed,
ties broken by earliest waiting head then tenant id) admits next — the
same accumulated-usage discipline Condor's user priorities simplify to,
applied at workflow granularity.

The dispatch order lives in a lazy heap: entries are (usage, head
arrival, tenant id) snapshots, re-validated on pop and re-pushed with
current keys when stale.  Each offer/complete pushes at most one entry,
so the heap stays O(operations) at 100k tenants instead of re-sorting
the tenant population per admission.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Callable, Optional

from ..simcore import SimContext
from .tenants import WorkflowRequest

StartCallback = Callable[[WorkflowRequest], None]
RejectCallback = Callable[[WorkflowRequest], None]


class AdmissionController:
    """Quota + fair-share gate between arrivals and the executor."""

    def __init__(
        self,
        ctx: SimContext,
        max_in_flight: int = 200,
        max_backlog_per_tenant: Optional[int] = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.ctx = ctx
        self.max_in_flight = max_in_flight
        self.max_backlog_per_tenant = max_backlog_per_tenant
        self._start: Optional[StartCallback] = None
        self._reject: Optional[RejectCallback] = None
        # -- live state ----------------------------------------------------
        self.in_flight = 0
        self._tenant_in_flight: dict[int, int] = {}
        self._backlog: dict[int, deque[WorkflowRequest]] = {}
        #: completed DAG work per tenant id — the fair-share key
        self.usage: dict[int, float] = {}
        self._heap: list[tuple[float, float, int]] = []
        # -- counters ------------------------------------------------------
        self.admitted = 0
        self.deferred = 0
        self.rejected = 0
        self.backlog_workflows = 0
        self.backlog_work = 0.0

    def bind(
        self, start: StartCallback, reject: Optional[RejectCallback] = None
    ) -> None:
        """Wire the executor callbacks (the service calls this once)."""
        self._start = start
        self._reject = reject

    # -- the gate ----------------------------------------------------------
    def offer(self, req: WorkflowRequest) -> None:
        """An arrival: admit now, queue behind the quota, or bounce."""
        tid = req.tenant.id
        backlog = self._backlog.get(tid)
        if (
            backlog is None
            and self.in_flight < self.max_in_flight
            and self._tenant_in_flight.get(tid, 0) < req.tenant.quota
        ):
            self._admit(req)
            return
        if (
            self.max_backlog_per_tenant is not None
            and backlog is not None
            and len(backlog) >= self.max_backlog_per_tenant
        ):
            self.rejected += 1
            req.rejected = True
            obs = self.ctx.obs
            if obs.enabled:
                obs.counter("waas.rejected").inc()
            if self._reject is not None:
                self._reject(req)
            return
        if backlog is None:
            backlog = self._backlog[tid] = deque()
        backlog.append(req)
        self.deferred += 1
        self.backlog_workflows += 1
        self.backlog_work += req.dag.total_work
        heappush(self._heap, (self.usage.get(tid, 0.0), backlog[0].arrival_s, tid))
        obs = self.ctx.obs
        if obs.enabled:
            obs.counter("waas.deferred").inc()

    def complete(self, req: WorkflowRequest) -> None:
        """A workflow finished: charge usage, release its slot, refill."""
        tid = req.tenant.id
        self.usage[tid] = self.usage.get(tid, 0.0) + req.dag.total_work
        self.in_flight -= 1
        left = self._tenant_in_flight.get(tid, 0) - 1
        if left > 0:
            self._tenant_in_flight[tid] = left
        else:
            self._tenant_in_flight.pop(tid, None)
        backlog = self._backlog.get(tid)
        if backlog:
            # the quota slot this completion freed may be what its own
            # backlog was waiting for; re-enter the dispatch order
            heappush(
                self._heap, (self.usage[tid], backlog[0].arrival_s, tid)
            )
        obs = self.ctx.obs
        if obs.enabled:
            obs.gauge("waas.in_flight").set(self.in_flight)
        self._drain()

    def _admit(self, req: WorkflowRequest) -> None:
        tid = req.tenant.id
        self.in_flight += 1
        self._tenant_in_flight[tid] = self._tenant_in_flight.get(tid, 0) + 1
        self.admitted += 1
        req.admitted_s = self.ctx.now
        obs = self.ctx.obs
        if obs.enabled:
            obs.counter("waas.admitted").inc()
            obs.gauge("waas.in_flight").set(self.in_flight)
            wait = req.admission_wait_s
            if wait is not None:
                obs.histogram("waas.admission_wait_s").observe(wait)
        assert self._start is not None, "AdmissionController is not bound"
        self._start(req)

    def _drain(self) -> None:
        """Admit backlogged workflows while capacity lasts, fairest first."""
        heap = self._heap
        while heap and self.in_flight < self.max_in_flight:
            usage, head_arrival, tid = heap[0]
            backlog = self._backlog.get(tid)
            if not backlog:
                heappop(heap)  # everything it referred to already admitted
                continue
            current = (self.usage.get(tid, 0.0), backlog[0].arrival_s, tid)
            if current != (usage, head_arrival, tid):
                # stale snapshot: re-key and let the heap re-rank it
                heappop(heap)
                heappush(heap, current)
                continue
            if self._tenant_in_flight.get(tid, 0) >= backlog[0].tenant.quota:
                # at quota: drop the entry; this tenant's next completion
                # re-pushes it, so nothing is lost
                heappop(heap)
                continue
            heappop(heap)
            req = backlog.popleft()
            self.backlog_workflows -= 1
            self.backlog_work -= req.dag.total_work
            if backlog:
                heappush(
                    heap, (self.usage.get(tid, 0.0), backlog[0].arrival_s, tid)
                )
            else:
                del self._backlog[tid]
            self._admit(req)
