"""Generators for the paper's datasets and benchmark corpora.

The two use-case archives reproduce the paper's names and sizes:
``fourCelFileSamples.zip`` (10.7 MB, 4 arrays) and
``affyCelFileSamples.zip`` (190.3 MB, 72 arrays), each with a planted
two-group differential-expression signal so correctness is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import calibration
from ..crdata.formats import BamArchive, CelArchive, ExpressionMatrix


def make_four_cel_archive(seed: int = 42, n_probes: int = 4000) -> CelArchive:
    """fourCelFileSamples.zip — 4 arrays, 2 control + 2 case (Sec. V-A)."""
    return CelArchive(
        n_arrays=calibration.FOUR_CEL_N_ARRAYS,
        n_probes=n_probes,
        seed=seed,
        groups=["control", "control", "case", "case"],
        n_diff=max(20, n_probes // 50),
        effect=2.0,
        declared_size=calibration.FOUR_CEL_ZIP_BYTES,
    )


def make_affy_cel_archive(seed: int = 43, n_probes: int = 4000) -> CelArchive:
    """affyCelFileSamples.zip — the larger 190.3 MB batch (Sec. V-A)."""
    n = calibration.AFFY_CEL_N_ARRAYS
    return CelArchive(
        n_arrays=n,
        n_probes=n_probes,
        seed=seed,
        groups=["control"] * (n // 2) + ["case"] * (n - n // 2),
        n_diff=max(40, n_probes // 40),
        effect=1.5,
        declared_size=calibration.AFFY_CEL_ZIP_BYTES,
    )


def make_rnaseq_archive(
    seed: int = 7,
    n_samples: int = 6,
    n_reads: int = 20_000,
    n_transcripts: int = 150,
    n_diff: int = 15,
    effect: float = 3.0,
) -> BamArchive:
    """A two-condition RNA-seq experiment with planted differential transcripts."""
    half = n_samples // 2
    return BamArchive(
        n_reads_per_sample=n_reads,
        seed=seed,
        samples=[f"sample_{i}" for i in range(n_samples)],
        conditions=["A"] * half + ["B"] * (n_samples - half),
        annotation_seed=seed + 1,
        n_transcripts=n_transcripts,
        n_diff=n_diff,
        effect=effect,
    )


def make_expression_matrix_bytes(
    seed: int = 11,
    n_probes: int = 500,
    groups: tuple[str, ...] = ("A", "A", "A", "B", "B", "B"),
    n_diff: int = 25,
    effect: float = 1.5,
) -> bytes:
    """A ready-to-use log2 expression matrix with planted signal."""
    rng = np.random.default_rng(seed)
    n_samples = len(groups)
    values = rng.normal(8.0, 1.0, size=(n_probes, 1)) + rng.normal(
        0.0, 0.3, size=(n_probes, n_samples)
    )
    planted = rng.choice(n_probes, size=n_diff, replace=False)
    labels = list(dict.fromkeys(groups))
    mask = np.array([g == labels[-1] for g in groups])
    values[np.ix_(planted, np.where(mask)[0])] += effect
    em = ExpressionMatrix(
        values=values,
        probe_names=[f"probe_{i:05d}_at" for i in range(n_probes)],
        sample_names=[f"s{i}" for i in range(n_samples)],
        groups=list(groups),
    )
    return em.to_bytes()


def make_clinical_table(
    seed: int = 3, n_per_group: int = 60, hazard_ratio: float = 3.0
) -> bytes:
    """Survival data: exponential event times, group B at higher hazard."""
    rng = np.random.default_rng(seed)
    rows = ["time\tevent\tgroup"]
    for group, scale in [("A", 10.0), ("B", 10.0 / hazard_ratio)]:
        times = rng.exponential(scale, size=n_per_group)
        censor = rng.exponential(15.0, size=n_per_group)
        observed = np.minimum(times, censor)
        events = (times <= censor).astype(int)
        for t, e in zip(observed, events):
            rows.append(f"{t:.3f}\t{e}\t{group}")
    return ("\n".join(rows) + "\n").encode()


def transfer_corpus() -> list[tuple[str, int]]:
    """(name, bytes) for the Fig. 11 file-size sweep."""
    return [
        (f"file_{size // calibration.MB}MB.dat", size)
        for size in calibration.FIGURE11_FILE_SIZES
    ]


def make_pricing_sweep_sizes(
    n_jobs: int = 2000,
    seed: int = 0,
    min_mb: float = 1.0,
    max_mb: float = 512.0,
) -> np.ndarray:
    """Synthetic CEL-archive sizes (bytes) for batch pricing sweeps.

    Log-uniform between ``min_mb`` and ``max_mb`` so the sweep covers the
    paper's range (the 10.7 MB and 190.3 MB use-case archives sit well
    inside it) with plenty of mass at both ends.  Returns an
    ``(n_jobs,)`` integer-valued float array, one single-input job per
    entry, ready for ``Tool.work_batch`` / ``cloud.estimate_batch``.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if not (0 < min_mb <= max_mb):
        raise ValueError("need 0 < min_mb <= max_mb")
    rng = np.random.default_rng(seed)
    mb = np.exp(rng.uniform(np.log(min_mb), np.log(max_mb), size=n_jobs))
    return np.round(mb * calibration.MB)


# ---------------------------------------------------------------------------
# Workflow DAG shapes (the WaaS multi-tenant workload model)
# ---------------------------------------------------------------------------

#: shapes :func:`make_workflow_dag` knows how to build
DAG_SHAPES = ("chain", "fanout", "diamond", "layered")


@dataclass(frozen=True)
class DAGTask:
    """One node of a workflow DAG.

    ``cpu_work`` is in m1.small-seconds (the unit Condor jobs consume);
    ``parents`` are task ids that must complete before this one may run.
    By construction every parent id is smaller than the task's own id,
    so task order is already a topological order.
    """

    id: int
    cpu_work: float
    parents: tuple[int, ...] = ()


@dataclass(frozen=True)
class WorkflowDAG:
    """A workflow instance: tasks plus dependency edges.

    Instances are value objects — two calls to :func:`make_workflow_dag`
    with the same arguments compare equal, which is what makes DAG reuse
    across thousands of tenants (and the reproducibility property tests)
    cheap to check.
    """

    shape: str
    seed: int
    tasks: tuple[DAGTask, ...]

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def total_work(self) -> float:
        return sum(t.cpu_work for t in self.tasks)

    def critical_path_work(self) -> float:
        """Longest dependency-chain work sum (ids are topological order)."""
        finish: list[float] = []
        for t in self.tasks:
            upstream = max((finish[p] for p in t.parents), default=0.0)
            finish.append(upstream + t.cpu_work)
        return max(finish, default=0.0)

    def validate(self) -> None:
        """Structural invariants: ids dense, edges point backwards (acyclic)."""
        for i, t in enumerate(self.tasks):
            if t.id != i:
                raise ValueError(f"task ids must be dense, got {t.id} at {i}")
            if t.cpu_work < 0:
                raise ValueError(f"task {i} has negative cpu_work")
            for p in t.parents:
                if not 0 <= p < i:
                    raise ValueError(
                        f"task {i} depends on {p}: edges must point to "
                        "earlier tasks (acyclicity by construction)"
                    )


def _dag_edges(shape: str, n: int, rng: np.random.Generator) -> list[tuple[int, ...]]:
    """Parent lists per task id for one of :data:`DAG_SHAPES`."""
    if shape == "chain":
        return [() if i == 0 else (i - 1,) for i in range(n)]
    if shape == "fanout":
        # split -> n-2 parallel branches -> join (per-sample fan-out)
        if n < 3:
            return [() if i == 0 else (i - 1,) for i in range(n)]
        middle = range(1, n - 1)
        return [()] + [(0,) for _ in middle] + [tuple(middle)]
    if shape == "diamond":
        # two stacked fanout/fan-in lozenges sharing a waist
        if n < 4:
            return _dag_edges("fanout", n, rng)
        waist = n // 2
        first = _dag_edges("fanout", waist + 1, rng)
        edges = list(first)
        middle = range(waist + 1, n - 1)
        edges.extend((waist,) for _ in middle)
        edges.append(tuple(middle) if len(middle) else (waist,))
        return edges
    if shape == "layered":
        # random layered DAG: every task depends on 1-3 tasks of the
        # previous layer (Montage-style), layer widths drawn per DAG
        edges: list[tuple[int, ...]] = [()]
        prev_layer = [0]
        i = 1
        while i < n:
            width = min(int(rng.integers(1, 4)), n - i)
            layer = []
            for _ in range(width):
                k = min(int(rng.integers(1, 4)), len(prev_layer))
                picks = rng.choice(len(prev_layer), size=k, replace=False)
                edges.append(tuple(sorted(prev_layer[j] for j in picks)))
                layer.append(i)
                i += 1
            prev_layer = layer
        return edges
    raise ValueError(f"unknown DAG shape {shape!r}; known: {DAG_SHAPES}")


def make_workflow_dag(
    shape: str = "fanout",
    n_tasks: int = 6,
    seed: int = 0,
    mean_work_s: float = 90.0,
    work_spread: float = 4.0,
) -> WorkflowDAG:
    """One workflow DAG instance, deterministic in its arguments.

    Per-task work is log-uniform over ``[mean/spread, mean*spread]``
    m1.small-seconds, rounded to milliseconds so the value survives a
    JSON round-trip bit-exactly.  The RNG stream is private to the call
    (``np.random.default_rng``), so DAG generation never perturbs a
    simulation's RNG state.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if mean_work_s <= 0 or work_spread < 1.0:
        raise ValueError("need mean_work_s > 0 and work_spread >= 1")
    rng = np.random.default_rng(seed)
    edges = _dag_edges(shape, n_tasks, rng)
    lo, hi = np.log(mean_work_s / work_spread), np.log(mean_work_s * work_spread)
    work = np.round(np.exp(rng.uniform(lo, hi, size=n_tasks)), 3)
    dag = WorkflowDAG(
        shape=shape,
        seed=seed,
        tasks=tuple(
            DAGTask(id=i, cpu_work=float(work[i]), parents=edges[i])
            for i in range(n_tasks)
        ),
    )
    dag.validate()
    return dag
