"""Synthetic workload generators for the paper's datasets and benchmarks."""

from .generators import (
    make_affy_cel_archive,
    make_clinical_table,
    make_expression_matrix_bytes,
    make_four_cel_archive,
    make_pricing_sweep_sizes,
    make_rnaseq_archive,
    transfer_corpus,
)

__all__ = [
    "make_affy_cel_archive",
    "make_clinical_table",
    "make_expression_matrix_bytes",
    "make_four_cel_archive",
    "make_pricing_sweep_sizes",
    "make_rnaseq_archive",
    "transfer_corpus",
]
