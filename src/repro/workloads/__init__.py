"""Synthetic workload generators for the paper's datasets and benchmarks."""

from .generators import (
    DAG_SHAPES,
    DAGTask,
    WorkflowDAG,
    make_affy_cel_archive,
    make_clinical_table,
    make_expression_matrix_bytes,
    make_four_cel_archive,
    make_pricing_sweep_sizes,
    make_rnaseq_archive,
    make_workflow_dag,
    transfer_corpus,
)

__all__ = [
    "DAG_SHAPES",
    "DAGTask",
    "WorkflowDAG",
    "make_affy_cel_archive",
    "make_clinical_table",
    "make_expression_matrix_bytes",
    "make_four_cel_archive",
    "make_pricing_sweep_sizes",
    "make_rnaseq_archive",
    "make_workflow_dag",
    "transfer_corpus",
]
