"""Chef-like configuration management (GP's converge engine, Sec. III-A)."""

from .attributes import LEVELS, NodeAttributes, deep_merge
from .node import ChefNode
from .recipe import Cookbook, CookbookRepository, Recipe, RecipeContext
from .resources import (
    SKIP_COST_S,
    ChefResource,
    Directory,
    Execute,
    Package,
    RemoteFile,
    ScmCheckout,
    Service,
    ServiceRestart,
    Template,
    UserAccount,
)
from .runner import ChefRunner, ConvergeError, ConvergeReport, ResourceOutcome

__all__ = [
    "LEVELS",
    "SKIP_COST_S",
    "ChefNode",
    "ChefResource",
    "ChefRunner",
    "ConvergeError",
    "ConvergeReport",
    "Cookbook",
    "CookbookRepository",
    "Directory",
    "Execute",
    "NodeAttributes",
    "Package",
    "Recipe",
    "RecipeContext",
    "RemoteFile",
    "ResourceOutcome",
    "ScmCheckout",
    "Service",
    "ServiceRestart",
    "Template",
    "UserAccount",
    "deep_merge",
]
