"""Chef-style node attributes: nested dicts with precedence-aware merging.

Chef resolves node attributes from several precedence levels (default <
cookbook default < normal < override).  We implement the same model so GP
topologies can override cookbook defaults, exactly as the paper's topology
file overrides e.g. the Galaxy admin user list.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

#: Precedence levels, lowest first.
LEVELS = ("default", "cookbook", "normal", "override")


def deep_merge(base: dict, extra: Mapping) -> dict:
    """Recursively merge ``extra`` into a copy of ``base`` (extra wins)."""
    out = dict(base)
    for key, value in extra.items():
        if (
            key in out
            and isinstance(out[key], dict)
            and isinstance(value, Mapping)
        ):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = value
    return out


class NodeAttributes:
    """Layered attribute store resolved by precedence then merge order."""

    def __init__(self) -> None:
        self._layers: dict[str, list[dict]] = {level: [] for level in LEVELS}

    def set(self, level: str, attrs: Mapping[str, Any]) -> None:
        """Add an attribute layer at ``level``."""
        if level not in self._layers:
            raise ValueError(f"unknown precedence level {level!r}; use one of {LEVELS}")
        self._layers[level].append(dict(attrs))

    def resolve(self) -> dict[str, Any]:
        """Flatten all layers into one dict, highest precedence winning."""
        merged: dict[str, Any] = {}
        for level in LEVELS:
            for layer in self._layers[level]:
                merged = deep_merge(merged, layer)
        return merged

    def get(self, path: str | Iterable[str], default: Any = None) -> Any:
        """Fetch ``"a.b.c"`` (or an iterable of keys) from the resolved view."""
        keys = path.split(".") if isinstance(path, str) else list(path)
        node: Any = self.resolve()
        for key in keys:
            if not isinstance(node, Mapping) or key not in node:
                return default
            node = node[key]
        return node

    def __contains__(self, path: str) -> bool:
        sentinel = object()
        return self.get(path, sentinel) is not sentinel
