"""The chef-solo runner: converge a node's run-list in simulated time.

Converge cost of a resource is ``io_work / node.io_factor +
cpu_work / node.cpu_factor`` seconds; satisfied resources cost only the
verification constant.  This is the model behind Fig. 10's deployment
times (see :mod:`repro.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..simcore import SimContext
from .node import ChefNode
from .recipe import CookbookRepository
from .resources import SKIP_COST_S, ChefResource


class ConvergeError(Exception):
    """A resource failed to apply."""


@dataclass
class ResourceOutcome:
    resource: str
    recipe: str
    action: str              # "applied" | "skipped" | "guarded"
    duration_s: float


@dataclass
class ConvergeReport:
    """What one converge run did and how long it took."""

    node: str
    run_list: list[str]
    started_at: float
    finished_at: float = 0.0
    outcomes: list[ResourceOutcome] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at

    @property
    def applied(self) -> list[ResourceOutcome]:
        return [o for o in self.outcomes if o.action == "applied"]

    @property
    def skipped(self) -> list[ResourceOutcome]:
        return [o for o in self.outcomes if o.action != "applied"]


class ChefRunner:
    """Runs run-lists against nodes inside the simulation."""

    def __init__(self, ctx: SimContext, repo: CookbookRepository) -> None:
        self.ctx = ctx
        self.repo = repo

    def resource_cost_s(self, node: ChefNode, resource: ChefResource) -> float:
        io = resource.io_work / node.io_factor if resource.io_work else 0.0
        cpu = resource.cpu_work / node.cpu_factor if resource.cpu_work else 0.0
        return io + cpu

    def converge(self, node: ChefNode, run_list: Iterable[str], cause=None):
        """A simulation process: yields while work happens, returns report.

        Use as ``report = yield from runner.converge(node, run_list)`` inside
        another process, or ``ctx.sim.process(runner.converge(...))``.
        ``cause`` optionally names the obs span id this converge follows
        from (the deployer passes the node's ec2.boot span).
        """
        run_list = list(run_list)
        report = ConvergeReport(
            node=node.name, run_list=run_list, started_at=self.ctx.now
        )
        self.ctx.log("chef", "converge-start", node=node.name, run_list=run_list)
        obs = self.ctx.obs
        track = f"chef/{node.name}"
        span = obs.start("chef.converge", track=track, cause=cause, node=node.name)
        try:
            for item in run_list:
                recipe = self.repo.resolve(item)
                recipe_span = obs.start("chef.recipe", track=track, recipe=item)
                before = len(report.outcomes)
                for resource in recipe.compile(node):
                    if resource.only_if is not None and not resource.only_if(node):
                        report.outcomes.append(
                            ResourceOutcome(resource.describe(), item, "guarded", 0.0)
                        )
                        continue
                    if resource.is_satisfied(node):
                        cost = SKIP_COST_S / node.io_factor
                        yield self.ctx.sim.timeout(cost)
                        report.outcomes.append(
                            ResourceOutcome(resource.describe(), item, "skipped", cost)
                        )
                        continue
                    cost = self.resource_cost_s(node, resource)
                    yield self.ctx.sim.timeout(cost)
                    try:
                        resource.apply(node)
                    except Exception as exc:  # surface with context
                        raise ConvergeError(
                            f"{resource.describe()} failed on {node.name}: {exc}"
                        ) from exc
                    report.outcomes.append(
                        ResourceOutcome(resource.describe(), item, "applied", cost)
                    )
                applied = sum(
                    1 for o in report.outcomes[before:] if o.action == "applied"
                )
                obs.finish(recipe_span.set(applied=applied))
                obs.counter("chef.resources_applied").inc(applied)
        except BaseException as exc:
            obs.finish_open(track, status="error", error=repr(exc))
            raise
        obs.finish(span.set(applied=len(report.applied)))
        node.run_list = run_list
        report.finished_at = self.ctx.now
        node.converge_log.append(
            {
                "run_list": run_list,
                "duration": report.duration_s,
                "applied": len(report.applied),
                "skipped": len(report.skipped),
            }
        )
        self.ctx.log(
            "chef",
            "converge-done",
            node=node.name,
            duration=report.duration_s,
            applied=len(report.applied),
        )
        return report
