"""Chef resources: idempotent units of host configuration.

Each resource declares *what* should be true of the host plus how much
I/O-bound and CPU-bound work converging it costs on an m1.small (seconds).
The runner skips resources whose state already holds (idempotency), which
is what makes re-running a run-list after a topology update cheap, and
what makes a pre-loaded AMI deploy fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .node import ChefNode

#: Cost of verifying an already-satisfied resource (seconds on m1.small).
SKIP_COST_S = 2.0


@dataclass
class ChefResource:
    """Base resource.  Subclasses define state predicates and effects."""

    name: str
    io_work: float = 0.0
    cpu_work: float = 0.0
    #: Optional guard: resource is skipped unless this returns True.
    only_if: Optional[Callable[["ChefNode"], bool]] = None

    def is_satisfied(self, node: "ChefNode") -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def apply(self, node: "ChefNode") -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}[{self.name}]"


@dataclass
class Package(ChefResource):
    """An installed software package (apt/yum/pip/R package alike)."""

    version: str = "latest"

    def is_satisfied(self, node: "ChefNode") -> bool:
        return self.name in node.packages or self.name in node.preloaded

    def apply(self, node: "ChefNode") -> None:
        node.packages.add(self.name)


@dataclass
class UserAccount(ChefResource):
    """A local (or NIS-published) user account."""

    home: str = ""
    groups: tuple[str, ...] = ()

    def is_satisfied(self, node: "ChefNode") -> bool:
        return self.name in node.users

    def apply(self, node: "ChefNode") -> None:
        node.users[self.name] = {
            "home": self.home or f"/home/{self.name}",
            "groups": list(self.groups),
        }


@dataclass
class Directory(ChefResource):
    """A directory on the node's filesystem (mkdir -p semantics)."""

    owner: str = "root"

    def is_satisfied(self, node: "ChefNode") -> bool:
        return node.fs.isdir(self.name) if node.fs is not None else self.name in node.directories

    def apply(self, node: "ChefNode") -> None:
        if node.fs is not None:
            node.fs.mkdirs(self.name, owner=self.owner)
        node.directories.add(self.name)


@dataclass
class RemoteFile(ChefResource):
    """A file fetched from a remote source (tool tarball, dataset, ...)."""

    source: str = ""
    size_bytes: int = 0

    def is_satisfied(self, node: "ChefNode") -> bool:
        return self.name in node.files

    def apply(self, node: "ChefNode") -> None:
        node.files[self.name] = {"source": self.source, "size": self.size_bytes}
        if node.fs is not None:
            node.fs.write(self.name, size=self.size_bytes, owner="root")


@dataclass
class Template(ChefResource):
    """A rendered configuration file (content derives from attributes)."""

    variables: dict = field(default_factory=dict)
    content: str = ""

    def rendered(self) -> str:
        text = self.content
        for key, value in self.variables.items():
            text = text.replace("{{" + key + "}}", str(value))
        return text

    def is_satisfied(self, node: "ChefNode") -> bool:
        existing = node.files.get(self.name)
        return existing is not None and existing.get("content") == self.rendered()

    def apply(self, node: "ChefNode") -> None:
        body = self.rendered()
        node.files[self.name] = {"content": body, "size": len(body)}
        if node.fs is not None:
            node.fs.write(self.name, data=body.encode(), owner="root")


@dataclass
class Service(ChefResource):
    """A long-running daemon that must be enabled and started."""

    def is_satisfied(self, node: "ChefNode") -> bool:
        return node.services.get(self.name) == "running"

    def apply(self, node: "ChefNode") -> None:
        node.services[self.name] = "running"


@dataclass
class ServiceRestart(ChefResource):
    """Explicit restart (never satisfied in advance; always runs)."""

    def is_satisfied(self, node: "ChefNode") -> bool:
        return False

    def apply(self, node: "ChefNode") -> None:
        node.services[self.name] = "running"
        node.restarts[self.name] = node.restarts.get(self.name, 0) + 1


@dataclass
class Execute(ChefResource):
    """An arbitrary command whose completion is recorded by marker key."""

    command: str = ""
    #: Marker recorded on the node once run; reruns are skipped if set.
    creates: str = ""
    effect: Optional[Callable[["ChefNode"], None]] = None

    def is_satisfied(self, node: "ChefNode") -> bool:
        return bool(self.creates) and self.creates in node.markers

    def apply(self, node: "ChefNode") -> None:
        if self.creates:
            node.markers.add(self.creates)
        if self.effect is not None:
            self.effect(node)


@dataclass
class ScmCheckout(ChefResource):
    """A source checkout (the paper pulls the Galaxy fork from bitbucket)."""

    repo_url: str = ""
    revision: str = "default"

    def is_satisfied(self, node: "ChefNode") -> bool:
        existing = node.checkouts.get(self.name)
        return existing == (self.repo_url, self.revision)

    def apply(self, node: "ChefNode") -> None:
        node.checkouts[self.name] = (self.repo_url, self.revision)
