"""Recipes and cookbooks.

A *recipe* is a builder function that, given the node, emits the ordered
resource list to converge (mirroring a Ruby recipe's resource collection).
Similar recipes group into a *cookbook* with default attributes, exactly
as the paper describes GP's Chef usage (Sec. III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from .node import ChefNode
from .resources import ChefResource

RecipeBuilder = Callable[["RecipeContext", ChefNode], None]


class RecipeContext:
    """Collects resources as the builder runs; a tiny resource DSL."""

    def __init__(self, node: ChefNode) -> None:
        self.node = node
        self.resources: list[ChefResource] = []

    def add(self, resource: ChefResource) -> ChefResource:
        self.resources.append(resource)
        return resource

    # Convenience constructors mirroring Chef's DSL keywords ----------------
    def package(self, name: str, io_work: float = 0.0, cpu_work: float = 0.0, **kw):
        from .resources import Package

        return self.add(Package(name=name, io_work=io_work, cpu_work=cpu_work, **kw))

    def user(self, name: str, io_work: float = 1.0, **kw):
        from .resources import UserAccount

        return self.add(UserAccount(name=name, io_work=io_work, **kw))

    def directory(self, path: str, io_work: float = 0.5, **kw):
        from .resources import Directory

        return self.add(Directory(name=path, io_work=io_work, **kw))

    def remote_file(self, path: str, io_work: float = 0.0, **kw):
        from .resources import RemoteFile

        return self.add(RemoteFile(name=path, io_work=io_work, **kw))

    def template(self, path: str, io_work: float = 0.5, **kw):
        from .resources import Template

        return self.add(Template(name=path, io_work=io_work, **kw))

    def service(self, name: str, io_work: float = 1.0, **kw):
        from .resources import Service

        return self.add(Service(name=name, io_work=io_work, **kw))

    def restart(self, name: str, io_work: float = 2.0, **kw):
        from .resources import ServiceRestart

        return self.add(ServiceRestart(name=name, io_work=io_work, **kw))

    def execute(self, name: str, io_work: float = 0.0, cpu_work: float = 0.0, **kw):
        from .resources import Execute

        return self.add(Execute(name=name, io_work=io_work, cpu_work=cpu_work, **kw))

    def checkout(self, path: str, io_work: float = 0.0, **kw):
        from .resources import ScmCheckout

        return self.add(ScmCheckout(name=path, io_work=io_work, **kw))


@dataclass
class Recipe:
    """Named builder of a resource collection."""

    name: str
    builder: RecipeBuilder
    description: str = ""

    def compile(self, node: ChefNode) -> list[ChefResource]:
        ctx = RecipeContext(node)
        self.builder(ctx, node)
        return ctx.resources

    def total_work(self, node: ChefNode) -> tuple[float, float]:
        """(io_work, cpu_work) the recipe would cost if nothing is satisfied."""
        resources = self.compile(node)
        return (
            sum(r.io_work for r in resources),
            sum(r.cpu_work for r in resources),
        )


@dataclass
class Cookbook:
    """A named group of recipes plus cookbook-level default attributes."""

    name: str
    recipes: dict[str, Recipe] = field(default_factory=dict)
    default_attributes: dict = field(default_factory=dict)

    def recipe(self, name: str, description: str = "") -> Callable[[RecipeBuilder], Recipe]:
        """Decorator: register a builder function as a recipe."""

        def register(builder: RecipeBuilder) -> Recipe:
            rec = Recipe(name=name, builder=builder, description=description)
            self.add(rec)
            return rec

        return register

    def add(self, recipe: Recipe) -> None:
        if recipe.name in self.recipes:
            raise ValueError(f"duplicate recipe {recipe.name!r} in cookbook {self.name!r}")
        self.recipes[recipe.name] = recipe

    def get(self, name: str) -> Recipe:
        try:
            return self.recipes[name]
        except KeyError:
            raise KeyError(f"cookbook {self.name!r} has no recipe {name!r}") from None


class CookbookRepository:
    """All cookbooks known to a GP deployment, addressed ``cookbook::recipe``."""

    def __init__(self, cookbooks: Optional[Iterable[Cookbook]] = None) -> None:
        self._books: dict[str, Cookbook] = {}
        for book in cookbooks or ():
            self.register(book)

    def register(self, cookbook: Cookbook) -> None:
        if cookbook.name in self._books:
            raise ValueError(f"duplicate cookbook {cookbook.name!r}")
        self._books[cookbook.name] = cookbook

    def cookbook(self, name: str) -> Cookbook:
        try:
            return self._books[name]
        except KeyError:
            raise KeyError(f"unknown cookbook {name!r}") from None

    def resolve(self, item: str) -> Recipe:
        """Resolve a run-list item ``"cookbook::recipe"`` (or ``"cookbook"``
        meaning its ``default`` recipe)."""
        if "::" in item:
            book_name, recipe_name = item.split("::", 1)
        else:
            book_name, recipe_name = item, "default"
        return self.cookbook(book_name).get(recipe_name)
