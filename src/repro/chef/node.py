"""The Chef view of a host: converged state plus hardware speed factors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .attributes import NodeAttributes

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.nfs import SimFilesystem


@dataclass
class ChefNode:
    """Mutable converged state of one host.

    ``preloaded`` mirrors the AMI's pre-installed software so that
    :class:`~repro.chef.resources.Package` resources for that software are
    satisfied without work — the mechanism behind the paper's "create your
    own AMI to speed up deployment" advice (Fig. 1 step 8).
    """

    name: str
    cpu_factor: float = 1.0
    io_factor: float = 1.0
    preloaded: frozenset[str] = frozenset()
    attributes: NodeAttributes = field(default_factory=NodeAttributes)
    fs: Optional["SimFilesystem"] = None

    packages: set[str] = field(default_factory=set)
    users: dict[str, dict] = field(default_factory=dict)
    directories: set[str] = field(default_factory=set)
    files: dict[str, dict] = field(default_factory=dict)
    services: dict[str, str] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    markers: set[str] = field(default_factory=set)
    checkouts: dict[str, tuple[str, str]] = field(default_factory=dict)
    run_list: list[str] = field(default_factory=list)
    converge_log: list[dict] = field(default_factory=list)

    @property
    def installed_software(self) -> set[str]:
        """Everything present, whether converged here or baked into the AMI."""
        return set(self.packages) | set(self.preloaded)
