"""Elastic scaling: reacting to workload by reshaping the GP topology.

Sec. III-C: "the deployed workflow environment can be modified to respond
to workload changes by elastically adding or removing nodes from the
cluster and changing instance sizes to balance cost and performance."
The paper does this manually (``gp-instance-update``); its conclusion
lists automation as future work.  :class:`ElasticScaler` implements that
extension: a control loop watching the Condor queue that grows the pool
under backlog and shrinks it when idle, always through the same topology
-update path a human would use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..provision.instance import GlobusProvision
from ..provision.topology import with_extra_worker


@dataclass
class ScalerPolicy:
    """When to add or remove workers."""

    check_interval_s: float = 60.0
    #: add a worker when idle jobs exceed this for one check
    scale_up_queue_depth: int = 2
    #: remove a worker after this many consecutive fully-idle checks
    scale_down_idle_checks: int = 5
    min_workers: int = 1
    max_workers: int = 8
    worker_instance_type: str = "c1.medium"


@dataclass
class ScalerEvent:
    time: float
    action: str         # "scale-up" | "scale-down"
    workers: int
    queue_depth: int


class ElasticScaler:
    """Autoscaler bound to one running GP instance's single domain."""

    def __init__(
        self,
        gp: GlobusProvision,
        instance_id: str,
        domain: str = "simple",
        policy: ScalerPolicy | None = None,
    ) -> None:
        self.gp = gp
        self.instance_id = instance_id
        self.domain = domain
        self.policy = policy or ScalerPolicy()
        self.events: list[ScalerEvent] = []
        self._idle_checks = 0
        self._proc = None
        self._stopping = False
        self._stop_event = None

    # -- control -----------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            return
        ctx = self.gp.bed.ctx
        self._stopping = False
        self._proc = ctx.sim.process(self._loop(), name="elastic-scaler")

    def stop(self) -> None:
        """Ask the control loop to exit at its next wakeup."""
        self._stopping = True
        if self._stop_event is not None and not self._stop_event.triggered:
            self._stop_event.succeed()

    # -- internals ------------------------------------------------------------------
    @property
    def _deployment(self):
        return self.gp.get(self.instance_id).deployment

    def worker_count(self) -> int:
        return len(self._deployment.worker_nodes(self.domain))

    def _loop(self):
        ctx = self.gp.bed.ctx
        policy = self.policy
        while not self._stopping:
            self._stop_event = ctx.sim.event()
            yield ctx.sim.any_of(
                [ctx.sim.timeout(policy.check_interval_s), self._stop_event]
            )
            if self._stopping:
                return
            gpi = self.gp.get(self.instance_id)
            if gpi.deployment is None or gpi.state.value != "Running":
                continue
            pool = gpi.deployment.pool
            depth = pool.queue_depth
            workers = self.worker_count()
            if depth >= policy.scale_up_queue_depth and workers < policy.max_workers:
                self._idle_checks = 0
                yield from self._scale_up(depth)
            elif depth == 0 and pool.running_count == 0:
                self._idle_checks += 1
                if (
                    self._idle_checks >= policy.scale_down_idle_checks
                    and workers > policy.min_workers
                ):
                    yield from self._scale_down(depth)
                    self._idle_checks = 0
            else:
                self._idle_checks = 0

    def _scale_up(self, depth: int):
        new_topology = with_extra_worker(
            self.gp.get(self.instance_id).topology,
            self.domain,
            self.policy.worker_instance_type,
        )
        yield from self.gp.update(self.instance_id, new_topology)
        self.events.append(
            ScalerEvent(
                time=self.gp.bed.ctx.now,
                action="scale-up",
                workers=self.worker_count(),
                queue_depth=depth,
            )
        )

    def _scale_down(self, depth: int):
        gpi = self.gp.get(self.instance_id)
        topo = gpi.topology
        dom = topo.domain(self.domain)
        types = dom.worker_types(topo.ec2.instance_type)
        from dataclasses import replace

        new_dom = replace(
            dom,
            cluster_nodes=dom.cluster_nodes - 1,
            worker_instance_types=types[:-1],
        )
        new_topology = replace(
            topo,
            domains=tuple(new_dom if d.name == dom.name else d for d in topo.domains),
        )
        yield from self.gp.update(self.instance_id, new_topology)
        self.events.append(
            ScalerEvent(
                time=self.gp.bed.ctx.now,
                action="scale-down",
                workers=self.worker_count(),
                queue_depth=depth,
            )
        )


__all__ = ["ElasticScaler", "ScalerEvent", "ScalerPolicy"]
