"""The paper's contribution: Galaxy deployed and scaled on clouds via GP.

This package glues the substrates together: the Chef cookbooks for the
Galaxy/Globus/CRData stack (:mod:`repro.core.recipes`), the simulated
world (:mod:`repro.core.testbed`), the Sec. V-A use-case driver
(:mod:`repro.core.usecase`) and the elastic-scaling extension
(:mod:`repro.core.elastic`).
"""

from .elastic import ElasticScaler, ScalerEvent, ScalerPolicy
from .recipes import (
    GALAXY_HEAD_RUN_LIST,
    build_galaxy_cookbook,
    build_globus_cookbook,
    build_repository,
)
from .testbed import (
    AFFY_CEL_PATH,
    CVRG_DATA_ENDPOINT,
    FOUR_CEL_PATH,
    CloudTestbed,
)
from .usecase import UseCaseError, UseCaseResult, run_usecase, usecase_topology

__all__ = [
    "AFFY_CEL_PATH",
    "CVRG_DATA_ENDPOINT",
    "CloudTestbed",
    "ElasticScaler",
    "FOUR_CEL_PATH",
    "GALAXY_HEAD_RUN_LIST",
    "ScalerEvent",
    "ScalerPolicy",
    "UseCaseError",
    "UseCaseResult",
    "build_galaxy_cookbook",
    "build_globus_cookbook",
    "build_repository",
    "run_usecase",
    "usecase_topology",
]
