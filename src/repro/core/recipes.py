"""The GP cookbooks for Galaxy: the paper's Chef recipes (Sec. III-B).

Two cookbooks:

* ``globus`` — GP's standard host setup: common base, NFS/NIS servers,
  GridFTP, MyProxy, Condor head/worker.
* ``galaxy`` — the paper's contribution: ``galaxy-globus-common`` (galaxy
  user, Galaxy fork + Globus Transfer tools checked out from
  bitbucket.org, default configs; runs on the NFS/NIS server when the
  domain has one), ``galaxy-globus`` (installs the Globus fork of Galaxy
  and the Transfer API, sets up the Galaxy database, runs set-up scripts
  and restarts Galaxy; runs on ``simple-galaxy-condor``), and
  ``galaxy-globus-crdata`` (R, LibSBML, LibXML, GraphViz, cURL and the
  CRData R packages + tool definitions).

Work amounts (m1.small-seconds, split I/O vs CPU) are calibrated so the
galaxy head node's run-list on the GP public AMI totals
``calibration.GALAXY_RUNLIST_IO_WORK`` / ``GALAXY_RUNLIST_CPU_WORK``,
reproducing Fig. 10's deployment times; a test asserts the sum.
Packages pre-baked into the AMI converge at verification cost only, which
is what makes the paper's "create your own AMI" advice (Fig. 1 step 8)
pay off — the ablation benchmark measures exactly that.
"""

from __future__ import annotations

from ..chef import Cookbook, CookbookRepository

GALAXY_FORK_URL = "https://bitbucket.org/galaxy/galaxy-globus"
TRANSFER_TOOLS_URL = "https://bitbucket.org/cvrg/globus-transfer-tools"


def build_globus_cookbook() -> Cookbook:
    book = Cookbook("globus")

    @book.recipe("common", description="base host setup for every GP node")
    def common(r, node):
        r.package("python", io_work=20.0, cpu_work=4.0)
        r.package("globus-toolkit", io_work=90.0, cpu_work=15.0)
        r.package("ntp", io_work=4.0)
        r.directory("/opt/gp", io_work=1.0)
        r.template("/etc/gp/node.conf", content="node={{name}}",
                   variables={"name": node.name}, io_work=0.5)
        r.user("gp-admin", io_work=1.0, cpu_work=1.0)

    @book.recipe("nfs-server", description="exports the shared filesystem")
    def nfs_server(r, node):
        r.package("nfs-utils", io_work=15.0, cpu_work=2.0)
        r.directory("/export/home", io_work=1.0)
        r.template("/etc/exports", content="/export/home *(rw)", io_work=1.0)
        r.service("nfsd", io_work=3.0)

    @book.recipe("nis-server", description="serves cluster-wide user accounts")
    def nis_server(r, node):
        r.package("nis", io_work=10.0)
        r.template("/etc/ypserv.conf", content="dns: no", io_work=1.0)
        r.service("ypserv", io_work=2.0)

    @book.recipe("gridftp", description="Globus endpoint data mover")
    def gridftp(r, node):
        r.package("globus-toolkit", io_work=90.0, cpu_work=15.0)
        r.template("/etc/gridftp.conf", content="port 2811", io_work=1.0)
        r.execute("request-host-certificate", io_work=1.0, cpu_work=0.5,
                  creates="host-cert")
        r.service("gridftp", io_work=2.0)

    @book.recipe("myproxy", description="online credential repository")
    def myproxy(r, node):
        r.package("globus-toolkit", io_work=90.0, cpu_work=15.0)
        r.template("/etc/myproxy.conf", content="accepted_credentials *", io_work=1.0)
        r.service("myproxy", io_work=2.0)

    @book.recipe(
        "parallel-fs-data",
        description="stripe server of the GlusterFS/PVFS-style shared FS",
    )
    def parallel_fs_data(r, node):
        r.package("parallel-fs-server", io_work=25.0, cpu_work=4.0)
        r.directory("/export/stripe", io_work=1.0)
        r.template("/etc/parallel-fs/stripe.conf", content="role=data",
                   io_work=1.0)
        r.service("parallel-fs-data", io_work=2.0)

    @book.recipe("condor-head", description="Condor collector/negotiator/schedd")
    def condor_head(r, node):
        r.package("condor", io_work=45.0, cpu_work=6.0)
        r.template("/etc/condor/condor_config", content="DAEMON_LIST = MASTER, "
                   "COLLECTOR, NEGOTIATOR, SCHEDD", io_work=1.0)
        r.service("condor", io_work=2.0)
        r.execute("condor-pool-init", io_work=0.5, cpu_work=2.0, creates="condor-pool")

    @book.recipe("condor-worker", description="Condor execute node")
    def condor_worker(r, node):
        r.package("condor", io_work=45.0, cpu_work=6.0)
        r.template("/etc/condor/condor_config", content="DAEMON_LIST = MASTER, STARTD",
                   io_work=1.0)
        r.service("condor", io_work=2.0)
        r.execute("join-pool", io_work=0.5, cpu_work=1.0, creates="condor-joined")

    return book


def build_galaxy_cookbook() -> Cookbook:
    book = Cookbook("galaxy")

    @book.recipe(
        "galaxy-globus-common",
        description="galaxy user + Galaxy fork and Globus Transfer tools from bitbucket",
    )
    def galaxy_globus_common(r, node):
        r.user("galaxy", io_work=1.0, home="/home/galaxy")
        r.directory("/home/galaxy/galaxy-dist", io_work=1.0)
        r.directory("/home/galaxy/database", io_work=1.0)
        r.checkout("/home/galaxy/galaxy-dist", repo_url=GALAXY_FORK_URL,
                   revision="globus", io_work=60.0, cpu_work=2.0)
        r.checkout("/home/galaxy/globus-transfer-tools", repo_url=TRANSFER_TOOLS_URL,
                   revision="default", io_work=15.0, cpu_work=0.5)
        r.execute("copy-default-galaxy-configs", io_work=5.0, creates="galaxy-configs")

    @book.recipe(
        "galaxy-globus",
        description="install the Globus fork of Galaxy, Transfer API, DB; restart",
    )
    def galaxy_globus(r, node):
        r.package("postgresql", io_work=35.0, cpu_work=6.0)
        r.package("galaxy-dependencies", io_work=60.0, cpu_work=12.0)
        r.package("globus-transfer-api", io_work=25.0, cpu_work=3.0)
        r.execute("compile-galaxy-eggs", io_work=100.0, cpu_work=6.0,
                  creates="galaxy-eggs")
        r.execute("setup-galaxy-database", io_work=20.0, cpu_work=12.0,
                  creates="galaxy-db")
        r.execute("run-galaxy-setup-scripts", io_work=25.0, cpu_work=10.0,
                  creates="galaxy-setup")
        r.template("/home/galaxy/universe_wsgi.ini",
                   content="port=8080; globus={{endpoint}}",
                   variables={"endpoint": node.attributes.get("go_endpoint", "")},
                   io_work=2.0)
        r.package("galaxy", io_work=3.0)  # marks the app converged
        r.restart("galaxy", io_work=5.0, cpu_work=2.0)

    @book.recipe(
        "galaxy-globus-crdata",
        description="R, LibSBML, LibXML, GraphViz, cURL + CRData packages and tools",
    )
    def galaxy_globus_crdata(r, node):
        r.package("R", io_work=40.0, cpu_work=8.0)
        r.package("libsbml", io_work=10.0, cpu_work=2.0)
        r.package("libxml", io_work=8.0, cpu_work=1.0)
        r.package("graphviz", io_work=12.0, cpu_work=2.0)
        r.package("curl", io_work=5.0, cpu_work=0.5)
        r.package("crdata-tools", io_work=35.0, cpu_work=6.0)
        r.execute("install-crdata-tool-definitions", io_work=10.0, cpu_work=0.5,
                  creates="crdata-tool-defs")

    return book


def build_repository() -> CookbookRepository:
    """The cookbook repository a GP deployment converges from."""
    return CookbookRepository([build_globus_cookbook(), build_galaxy_cookbook()])


#: Run-list of the galaxy head node in the use-case topology (with NFS).
GALAXY_HEAD_RUN_LIST = (
    "globus::common",
    "globus::condor-head",
    "galaxy::galaxy-globus",
    "galaxy::galaxy-globus-crdata",
)
