"""CloudTestbed: the simulated world every experiment runs in.

One object owns the event kernel and all off-cluster infrastructure: the
mock EC2 region with billing, the certificate authority and MyProxy, the
site graph (laptop / EC2 / CVRG data repository), the Globus Online
service, the researcher's laptop endpoint, and the public CVRG data
endpoint hosting the paper's two use-case archives
(``fourCelFileSamples.zip`` and ``affyCelFileSamples.zip``).
"""

from __future__ import annotations

from typing import Optional

from ..chef import ChefRunner
from ..cloud import BillingMeter, MockEC2, PriceBook
from ..cluster import SimFilesystem
from ..security import CertificateAuthority, MyProxyServer
from ..simcore import SimContext
from ..transfer import GlobusOnline, GridFTPServer, SiteGraph
from ..workloads import make_affy_cel_archive, make_four_cel_archive
from .recipes import build_repository

#: endpoint the paper's use case pulls data from (Sec. V-A)
CVRG_DATA_ENDPOINT = "galaxy#CVRG-Galaxy"
#: paths of the use-case archives on that endpoint
FOUR_CEL_PATH = "/home/boliu/fourCelFileSamples.zip"
AFFY_CEL_PATH = "/home/boliu/affyCelFileSamples.zip"


class CloudTestbed:
    """The laboratory: everything outside the GP-deployed cluster."""

    def __init__(
        self,
        seed: int = 0,
        fault_rate: float = 0.0,
        price_book: Optional[PriceBook] = None,
        boot_jitter: float = 0.0,
        capacity_error_rate: float = 0.0,
    ) -> None:
        self.ctx = SimContext(seed=seed)
        self.meter = BillingMeter(book=price_book or PriceBook.paper())
        self.ec2 = MockEC2(
            self.ctx,
            meter=self.meter,
            boot_jitter=boot_jitter,
            capacity_error_rate=capacity_error_rate,
        )
        self.ca = CertificateAuthority("GP-CA")
        self.myproxy = MyProxyServer(ca=self.ca)
        self.sites = SiteGraph.paper_testbed()
        self.go = GlobusOnline(
            self.ctx, sites=self.sites, ca=self.ca, fault_rate=fault_rate
        )
        self.chef = ChefRunner(self.ctx, build_repository())

        # The researcher's laptop: a Globus Connect endpoint.
        self.laptop_fs = SimFilesystem("laptop")
        self.laptop_server = GridFTPServer(
            ctx=self.ctx, hostname="laptop.local", site="laptop", fs=self.laptop_fs
        )
        self.go.register_user("boliu", "boliu@uchicago.edu")
        self.boliu_cert = self.ca.issue_user_cert("boliu", now=self.ctx.now)
        self.go.add_user_credential("boliu", self.boliu_cert)
        self.myproxy.store("boliu", self.boliu_cert, "usecase-pass", now=self.ctx.now)
        self.go.create_endpoint("boliu#laptop", [self.laptop_server])

        # The CVRG data endpoint with the paper's archives.
        self.cvrg_fs = SimFilesystem("cvrg")
        self.cvrg_server = GridFTPServer(
            ctx=self.ctx, hostname="data.cvrg.org", site="cvrg", fs=self.cvrg_fs
        )
        self.go.register_user("galaxy", "admin@cvrgrid.org")
        galaxy_cert = self.ca.issue_user_cert("galaxy", now=self.ctx.now)
        self.go.add_user_credential("galaxy", galaxy_cert)
        self.go.create_endpoint(CVRG_DATA_ENDPOINT, [self.cvrg_server], public=True)
        self._stage_usecase_data()

    def _stage_usecase_data(self) -> None:
        four = make_four_cel_archive()
        affy = make_affy_cel_archive()
        self.cvrg_fs.write(
            FOUR_CEL_PATH, data=four.to_bytes(), size=four.declared_size
        )
        self.cvrg_fs.write(
            AFFY_CEL_PATH, data=affy.to_bytes(), size=affy.declared_size
        )

    # -- convenience --------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.ctx.now

    def run(self, until=None):
        return self.ctx.sim.run(until=until)

    def total_cost(self, mode: str = "proportional") -> float:
        return self.meter.cost(self.ctx.now, mode=mode)

    def ensure_go_user(self, username: str) -> None:
        """Register a GO account with a valid credential if absent."""
        if username not in self.go.users:
            self.go.register_user(username)
        user = self.go.users[username]
        if not any(
            self.ca.is_valid(c, self.ctx.now) for c in user.credentials
        ):
            cert = self.ca.issue_user_cert(username, now=self.ctx.now)
            self.go.add_user_credential(username, cert)
