"""The paper's use case (Sec. V-A, Fig. 6): the cardiovascular workflow.

Steps:

1. deploy a Galaxy instance from the ``galaxy.conf`` topology via GP;
2. *Get Data via Globus Online*: ``fourCelFileSamples.zip`` (10.7 MB)
   from the ``galaxy#CVRG-Galaxy`` endpoint into the Galaxy history;
3. run ``affyDifferentialExpression.R`` on it;
4. (optionally) ``gp-instance-update`` adds a c1.medium worker, then the
   larger ``affyCelFileSamples.zip`` (190.3 MB) is transferred and
   analysed the same way.

``run_usecase`` drives the whole scenario inside the simulation and
returns every number the evaluation section reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..galaxy import Job, JobState
from ..provision.instance import GlobusProvision, GPInstance
from ..provision.topology import DomainSpec, Topology, with_extra_worker
from ..tools_globus import GET_DATA_TOOL_ID
from ..crdata import USECASE_TOOL_ID
from .testbed import AFFY_CEL_PATH, CVRG_DATA_ENDPOINT, FOUR_CEL_PATH, CloudTestbed


class UseCaseError(Exception):
    pass


def usecase_topology(
    instance_type: str = "m1.small",
    cluster_nodes: int = 1,
    users: tuple[str, ...] = ("boliu", "user2"),
    storage: str = "nfs",
    storage_nodes: int = 0,
) -> Topology:
    """The paper's galaxy.conf, parameterised by instance type/count."""
    from ..provision.topology import EC2Spec

    return Topology(
        domains=(
            DomainSpec(
                name="simple",
                users=users,
                gridftp=True,
                condor=True,
                galaxy=True,
                crdata=True,
                cluster_nodes=cluster_nodes,
                go_endpoint="cvrg#galaxy",
                storage=storage,
                storage_nodes=storage_nodes,
            ),
        ),
        ec2=EC2Spec(instance_type=instance_type),
    )


@dataclass
class UseCaseResult:
    """Everything Sec. V reports, as measured in this run."""

    instance: GPInstance
    deploy_seconds: float
    transfer_small_seconds: float
    transfer_large_seconds: Optional[float]
    step3_job: Job
    step4_job: Optional[Job]
    update_seconds: Optional[float]
    history_panel: list[str] = field(default_factory=list)
    top_table_head: str = ""

    @property
    def steps34_seconds(self) -> float:
        total = self.step3_job.wall_s or 0.0
        if self.step4_job is not None:
            total += self.step4_job.wall_s or 0.0
        return total

    @property
    def steps34_minutes(self) -> float:
        return self.steps34_seconds / 60.0

    @property
    def deploy_minutes(self) -> float:
        return self.deploy_seconds / 60.0

    def steps34_cost_usd(self, bed: CloudTestbed) -> float:
        """Cost of the executing machine over the steps-3+4 span (Fig. 10)."""
        jobs = [self.step3_job] + ([self.step4_job] if self.step4_job else [])
        total = 0.0
        for job in jobs:
            node = self.instance.deployment.nodes.get(job.machine)
            itype = node.instance_type if node is not None else "m1.small"
            rate = bed.meter.book.hourly(itype)
            total += rate * (job.wall_s or 0.0) / 3600.0
        return total


def run_usecase(
    bed: Optional[CloudTestbed] = None,
    instance_type: str = "m1.small",
    cluster_nodes: int = 1,
    scale_up_with: Optional[str] = "c1.medium",
    run_large: bool = True,
    seed: int = 0,
    storage: str = "nfs",
) -> UseCaseResult:
    """Execute the full scenario; returns once the simulation settles.

    ``scale_up_with=None`` keeps the original cluster for step 4 (the
    Fig. 10 configuration: both analyses on one instance type).
    ``storage`` picks the data-sharing backend (``repro.storage``).
    """
    bed = bed if bed is not None else CloudTestbed(seed=seed)
    gp = GlobusProvision(bed)
    holder: dict = {}

    def scenario():
        topology = usecase_topology(instance_type, cluster_nodes, storage=storage)
        gpi = gp.create(topology)
        yield from gp.start(gpi.id)
        deployment = gpi.deployment
        app = deployment.galaxy
        history = app.create_history("boliu", "Cardiovascular use case")

        # Step 1-2: Get Data via Globus Online (10.7 MB archive).
        t0 = bed.ctx.now
        get_small = app.run_tool(
            "boliu", history, GET_DATA_TOOL_ID,
            params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
        )
        yield app.jobs.when_done(get_small)
        if get_small.state != JobState.OK:
            raise UseCaseError(f"step 1 transfer failed: {get_small.stderr}")
        transfer_small = bed.ctx.now - t0
        small_ds = get_small.outputs["output"]

        # Step 3: affyDifferentialExpression.R on the small archive.
        step3 = app.run_tool(
            "boliu", history, USECASE_TOOL_ID, params={"top_n": 50},
            inputs=[small_ds],
        )
        yield app.jobs.when_done(step3)
        if step3.state != JobState.OK:
            raise UseCaseError(f"step 3 failed: {step3.stderr}")

        # Optional: expand the cluster with a faster worker (Sec. V-A).
        update_seconds = None
        if scale_up_with is not None:
            new_topology = with_extra_worker(topology, "simple", scale_up_with)
            report = yield from gp.update(gpi.id, new_topology)
            update_seconds = report.seconds

        # Step 4: the 190.3 MB archive, transferred then analysed.
        transfer_large = None
        step4 = None
        if run_large:
            t1 = bed.ctx.now
            get_large = app.run_tool(
                "boliu", history, GET_DATA_TOOL_ID,
                params={"endpoint": CVRG_DATA_ENDPOINT, "path": AFFY_CEL_PATH},
            )
            yield app.jobs.when_done(get_large)
            if get_large.state != JobState.OK:
                raise UseCaseError(f"step 4 transfer failed: {get_large.stderr}")
            transfer_large = bed.ctx.now - t1
            large_ds = get_large.outputs["output"]
            step4 = app.run_tool(
                "boliu", history, USECASE_TOOL_ID, params={"top_n": 50},
                inputs=[large_ds],
            )
            yield app.jobs.when_done(step4)
            if step4.state != JobState.OK:
                raise UseCaseError(f"step 4 failed: {step4.stderr}")

        top_table_ds = step3.outputs["top_table"]
        top_table = app.fs.read(top_table_ds.file_path).decode()
        holder["result"] = UseCaseResult(
            instance=gpi,
            deploy_seconds=gpi.start_seconds or 0.0,
            transfer_small_seconds=transfer_small,
            transfer_large_seconds=transfer_large,
            step3_job=step3,
            step4_job=step4,
            update_seconds=update_seconds,
            history_panel=app.history_panel(history),
            top_table_head="\n".join(top_table.splitlines()[:6]),
        )

    proc = bed.ctx.sim.process(scenario(), name="usecase")
    bed.ctx.sim.run(until=proc)
    return holder["result"]
