"""On-disk formats for the synthetic bioinformatics data.

The paper's datasets (``fourCelFileSamples.zip``, ``affyCelFileSamples.zip``,
BAM files) are proprietary-instrument outputs we cannot ship, so we use
*generative archives*: a small JSON descriptor carrying a seed and the
planted biological signal.  Loading an archive deterministically
regenerates the full numeric data, so tools compute on real matrices while
files stay small; the archive's *declared* size (what transfer tools and
work models see) matches the paper's dataset sizes.

Formats:

* **CEL archive** — N microarray samples × P probe sets, two groups, with
  ``n_diff`` probes planted as differentially expressed at ``effect``
  log2-fold-change.
* **Expression matrix** — TSV with a ``#groups:`` annotation line.
* **BAM-sim archive** — reads drawn over a transcript annotation with
  per-transcript abundances; two-condition archives plant differential
  transcripts.
* **Transcript annotation** — TSV of (name, chrom, start, end).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class FormatError(Exception):
    pass


# ---------------------------------------------------------------------------
# CEL archives
# ---------------------------------------------------------------------------


@dataclass
class CelArchive:
    """Descriptor of a bundle of synthetic Affymetrix CEL files."""

    n_arrays: int
    n_probes: int
    seed: int
    groups: list[str]                  # per-array group label, len == n_arrays
    n_diff: int = 0                    # planted differentially expressed probes
    effect: float = 1.5                # log2 fold change of planted probes
    array_names: list[str] = field(default_factory=list)
    declared_size: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.groups) != self.n_arrays:
            raise FormatError("groups must have one label per array")
        if self.n_diff > self.n_probes:
            raise FormatError("cannot plant more differential probes than probes")
        if not self.array_names:
            self.array_names = [
                f"sample_{i + 1:02d}.CEL" for i in range(self.n_arrays)
            ]

    # -- serialisation --------------------------------------------------------
    def to_bytes(self) -> bytes:
        doc = {
            "format": "cel-archive-v1",
            "n_arrays": self.n_arrays,
            "n_probes": self.n_probes,
            "seed": self.seed,
            "groups": self.groups,
            "n_diff": self.n_diff,
            "effect": self.effect,
            "array_names": self.array_names,
            "declared_size": self.declared_size,
        }
        return json.dumps(doc).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CelArchive":
        try:
            doc = json.loads(data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError(f"not a CEL archive: {exc}") from exc
        if doc.get("format") != "cel-archive-v1":
            raise FormatError(f"not a CEL archive (format={doc.get('format')!r})")
        return cls(
            n_arrays=doc["n_arrays"],
            n_probes=doc["n_probes"],
            seed=doc["seed"],
            groups=list(doc["groups"]),
            n_diff=doc.get("n_diff", 0),
            effect=doc.get("effect", 1.5),
            array_names=list(doc.get("array_names", [])),
            declared_size=doc.get("declared_size"),
        )

    # -- data regeneration -------------------------------------------------------
    def probe_names(self) -> list[str]:
        return [f"probe_{i:05d}_at" for i in range(self.n_probes)]

    def planted_probes(self) -> np.ndarray:
        """Indices of the probes carrying the planted signal."""
        rng = np.random.default_rng(self.seed)
        return rng.choice(self.n_probes, size=self.n_diff, replace=False)

    def intensities(self) -> np.ndarray:
        """Raw probe intensities, shape (n_probes, n_arrays).

        Log-normal background (mean log2 intensity ~ 7, sd 1) with
        per-array multiplicative scaling (what normalization must remove)
        and the planted effect added to group-2 arrays.
        """
        rng = np.random.default_rng(self.seed)
        base = rng.normal(7.0, 1.0, size=(self.n_probes, 1))
        noise = rng.normal(0.0, 0.35, size=(self.n_probes, self.n_arrays))
        log2 = base + noise
        # per-array technical scale factors
        scale = rng.normal(0.0, 0.25, size=(1, self.n_arrays))
        log2 = log2 + scale
        if self.n_diff:
            planted = self.planted_probes()
            labels = self.group_labels()
            group2 = np.array([g == labels[1] for g in self.groups])
            signs = np.where(
                rng.random(self.n_diff) < 0.5, 1.0, -1.0
            )  # up and down regulation
            log2[np.ix_(planted, np.where(group2)[0])] += (
                signs[:, None] * self.effect
            )
        return np.exp2(log2)

    def group_labels(self) -> list[str]:
        """Distinct group labels in first-appearance order."""
        seen: list[str] = []
        for g in self.groups:
            if g not in seen:
                seen.append(g)
        return seen

    def group_masks(self) -> dict[str, np.ndarray]:
        return {
            label: np.array([g == label for g in self.groups])
            for label in self.group_labels()
        }


# ---------------------------------------------------------------------------
# Expression matrices
# ---------------------------------------------------------------------------


@dataclass
class ExpressionMatrix:
    """A probes × samples matrix with group annotations."""

    values: np.ndarray          # shape (n_probes, n_samples), log2 scale
    probe_names: list[str]
    sample_names: list[str]
    groups: list[str]

    def __post_init__(self) -> None:
        p, s = self.values.shape
        if len(self.probe_names) != p:
            raise FormatError("probe_names length mismatch")
        if len(self.sample_names) != s or len(self.groups) != s:
            raise FormatError("sample annotation length mismatch")

    def to_bytes(self) -> bytes:
        lines = ["#groups: " + "\t".join(self.groups)]
        lines.append("probe\t" + "\t".join(self.sample_names))
        for name, row in zip(self.probe_names, self.values):
            lines.append(name + "\t" + "\t".join(f"{v:.6g}" for v in row))
        return ("\n".join(lines) + "\n").encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "ExpressionMatrix":
        try:
            text = data.decode()
        except UnicodeDecodeError as exc:
            raise FormatError("not an expression matrix") from exc
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if len(lines) < 3 or not lines[0].startswith("#groups:"):
            raise FormatError("expression matrix needs a #groups line and data")
        groups = lines[0][len("#groups:"):].strip().split("\t")
        header = lines[1].split("\t")
        if header[0] != "probe":
            raise FormatError("expression matrix header must start with 'probe'")
        sample_names = header[1:]
        probe_names: list[str] = []
        rows: list[list[float]] = []
        for ln in lines[2:]:
            parts = ln.split("\t")
            if len(parts) != len(sample_names) + 1:
                raise FormatError(f"row width mismatch: {parts[0]}")
            probe_names.append(parts[0])
            rows.append([float(x) for x in parts[1:]])
        return cls(
            values=np.asarray(rows, dtype=float),
            probe_names=probe_names,
            sample_names=sample_names,
            groups=groups,
        )

    def group_masks(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for label in dict.fromkeys(self.groups):
            out[label] = np.array([g == label for g in self.groups])
        return out


# ---------------------------------------------------------------------------
# Transcript annotation + BAM-sim archives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transcript:
    name: str
    chrom: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise FormatError(f"transcript {self.name}: end <= start")

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class TranscriptAnnotation:
    """A UCSC-browser-style transcript table."""

    transcripts: list[Transcript]

    def to_bytes(self) -> bytes:
        lines = ["#name\tchrom\tstart\tend"]
        for t in self.transcripts:
            lines.append(f"{t.name}\t{t.chrom}\t{t.start}\t{t.end}")
        return ("\n".join(lines) + "\n").encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "TranscriptAnnotation":
        lines = [ln for ln in data.decode().splitlines() if ln.strip()]
        if not lines or not lines[0].startswith("#name"):
            raise FormatError("not a transcript annotation")
        out = []
        for ln in lines[1:]:
            name, chrom, start, end = ln.split("\t")
            out.append(Transcript(name=name, chrom=chrom, start=int(start), end=int(end)))
        return cls(out)

    @classmethod
    def synthetic(
        cls, n_transcripts: int = 200, seed: int = 0, chrom: str = "chr1",
        mean_length: int = 2000, gap: int = 500,
    ) -> "TranscriptAnnotation":
        rng = np.random.default_rng(seed)
        lengths = np.maximum(
            200, rng.normal(mean_length, mean_length / 4, n_transcripts).astype(int)
        )
        gaps = np.maximum(0, rng.normal(gap, gap / 3, n_transcripts).astype(int))
        starts = np.cumsum(gaps + np.concatenate([[0], lengths[:-1]]))
        return cls(
            [
                Transcript(
                    name=f"tx_{i:04d}", chrom=chrom,
                    start=int(s), end=int(s + L),
                )
                for i, (s, L) in enumerate(zip(starts, lengths))
            ]
        )


@dataclass
class BamArchive:
    """Descriptor of synthetic aligned reads over a transcript annotation.

    ``conditions`` maps sample name -> condition label; per-transcript
    abundances are drawn from the seed, and ``n_diff`` transcripts get an
    abundance fold change of ``effect`` in the second condition.
    """

    n_reads_per_sample: int
    seed: int
    samples: list[str]
    conditions: list[str]
    annotation_seed: int = 0
    n_transcripts: int = 200
    n_diff: int = 0
    effect: float = 2.0
    read_length: int = 75
    declared_size: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.samples) != len(self.conditions):
            raise FormatError("one condition per sample required")

    def to_bytes(self) -> bytes:
        doc = {
            "format": "bam-sim-v1",
            "n_reads_per_sample": self.n_reads_per_sample,
            "seed": self.seed,
            "samples": self.samples,
            "conditions": self.conditions,
            "annotation_seed": self.annotation_seed,
            "n_transcripts": self.n_transcripts,
            "n_diff": self.n_diff,
            "effect": self.effect,
            "read_length": self.read_length,
            "declared_size": self.declared_size,
        }
        return json.dumps(doc).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "BamArchive":
        try:
            doc = json.loads(data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FormatError(f"not a BAM-sim archive: {exc}") from exc
        if doc.get("format") != "bam-sim-v1":
            raise FormatError("not a BAM-sim archive")
        return cls(
            n_reads_per_sample=doc["n_reads_per_sample"],
            seed=doc["seed"],
            samples=list(doc["samples"]),
            conditions=list(doc["conditions"]),
            annotation_seed=doc.get("annotation_seed", 0),
            n_transcripts=doc.get("n_transcripts", 200),
            n_diff=doc.get("n_diff", 0),
            effect=doc.get("effect", 2.0),
            read_length=doc.get("read_length", 75),
            declared_size=doc.get("declared_size"),
        )

    def annotation(self) -> TranscriptAnnotation:
        return TranscriptAnnotation.synthetic(
            n_transcripts=self.n_transcripts, seed=self.annotation_seed
        )

    def condition_labels(self) -> list[str]:
        return list(dict.fromkeys(self.conditions))

    def planted_transcripts(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.choice(self.n_transcripts, size=self.n_diff, replace=False)

    def abundances(self) -> np.ndarray:
        """Relative transcript abundances, shape (n_transcripts, n_samples)."""
        rng = np.random.default_rng(self.seed)
        rng.choice(self.n_transcripts, size=self.n_diff, replace=False)  # align stream
        base = rng.lognormal(mean=0.0, sigma=1.0, size=self.n_transcripts)
        ab = np.tile(base[:, None], (1, len(self.samples))).astype(float)
        if self.n_diff:
            planted = self.planted_transcripts()
            labels = self.condition_labels()
            cond2 = np.array([c == labels[-1] for c in self.conditions])
            ab[np.ix_(planted, np.where(cond2)[0])] *= self.effect
        # biological noise
        ab *= rng.lognormal(0.0, 0.1, size=ab.shape)
        return ab

    def read_starts(self, sample_index: int) -> np.ndarray:
        """Aligned read start positions for one sample (sorted)."""
        ann = self.annotation()
        ab = self.abundances()[:, sample_index]
        # expected reads per transcript ~ abundance * length
        lengths = np.array([t.length for t in ann.transcripts], dtype=float)
        weights = ab * lengths
        weights /= weights.sum()
        rng = np.random.default_rng((self.seed + 1) * 1000003 + sample_index)
        counts = rng.multinomial(self.n_reads_per_sample, weights)
        starts = []
        for t, c in zip(ann.transcripts, counts):
            if c:
                span = max(1, t.length - self.read_length)
                starts.append(t.start + rng.integers(0, span, size=c))
        if not starts:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(starts))


def sniff(data: bytes) -> str:
    """Identify which format a payload is ("cel", "bam", "matrix", ...)."""
    head = data[:512]
    if head.lstrip().startswith(b"{"):
        try:
            doc = json.loads(data.decode())
            fmt = doc.get("format", "")
            if fmt.startswith("cel-archive"):
                return "cel"
            if fmt.startswith("bam-sim"):
                return "bam"
        except (UnicodeDecodeError, json.JSONDecodeError):
            return "unknown"
        return "unknown"
    if head.startswith(b"#groups:"):
        return "matrix"
    if head.startswith(b"#name\tchrom"):
        return "annotation"
    return "unknown"
