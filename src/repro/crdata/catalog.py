"""The CRData toolset: 35 R-script tools exposed as Galaxy tools.

"The CRData toolset consists of 35 tools with various functions"
(Sec. IV-B).  Each tool here corresponds to one ``*.R`` script: a
declarative config (the Galaxy tool XML), a work model giving its
simulated cost, and a real ``execute`` implementation running the
statistics in :mod:`repro.crdata.engines` on the synthetic data formats.

Every tool requires the software the ``galaxy-globus-crdata`` recipe
installs (R + the CRData packages), so Condor only matches nodes that
recipe has converged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .. import calibration
from ..galaxy.jobs import InputHandle, ToolRunContext
from ..galaxy.tools import Tool, Toolbox, ToolError
from . import plots
from .engines import classify, clustering, diffexpr, normalize, qc, rnaseq, survival
from .formats import (
    BamArchive,
    CelArchive,
    ExpressionMatrix,
    sniff,
)

MB = float(calibration.MB)

#: software every CRData tool needs on the executing node
CRDATA_REQUIREMENTS = ("R", "crdata-tools")

TOOL_SECTION = "CRData"


# ---------------------------------------------------------------------------
# Input decoding helpers
# ---------------------------------------------------------------------------


def load_expression(handle: InputHandle) -> ExpressionMatrix:
    """Accept either a CEL archive (RMA-normalised on the fly) or a matrix."""
    data = handle.read()
    kind = sniff(data)
    if kind == "cel":
        arch = CelArchive.from_bytes(data)
        values = normalize.rma(arch.intensities())
        return ExpressionMatrix(
            values=values,
            probe_names=arch.probe_names(),
            sample_names=arch.array_names,
            groups=list(arch.groups),
        )
    if kind == "matrix":
        return ExpressionMatrix.from_bytes(data)
    raise ToolError(
        f"input {handle.name!r} is neither a CEL archive nor an expression matrix"
    )


def load_cel(handle: InputHandle) -> CelArchive:
    data = handle.read()
    if sniff(data) != "cel":
        raise ToolError(f"input {handle.name!r} is not a CEL archive")
    return CelArchive.from_bytes(data)


def load_bam(handle: InputHandle) -> BamArchive:
    data = handle.read()
    if sniff(data) != "bam":
        raise ToolError(f"input {handle.name!r} is not a BAM archive")
    return BamArchive.from_bytes(data)


def two_group_mask(groups: list[str]) -> np.ndarray:
    labels = list(dict.fromkeys(groups))
    if len(labels) != 2:
        raise ToolError(
            f"two-group analysis needs exactly two groups, found {labels}"
        )
    return np.array([g == labels[1] for g in groups])


# ---------------------------------------------------------------------------
# Work models
#
# Each family has a scalar per-job model (what the job machinery calls)
# and a vectorized batch variant taking an ``(n_jobs, n_inputs)`` byte
# matrix and returning ``(cpu_work, io_work)`` arrays.  Both read the
# same ``calibration`` coefficients and sum input sizes the same way, so
# the batch path is bit-for-bit equal to looping the scalar model.
# ---------------------------------------------------------------------------


def _total_mb(sizes) -> float:
    """Total input volume of one job in MB (numpy-summed, to match batch)."""
    return float(np.asarray(sizes, dtype=float).sum()) / MB


def _batch_mb(sizes) -> np.ndarray:
    """Per-job total input volume in MB for an (n_jobs, n_inputs) matrix."""
    arr = np.asarray(sizes, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr.sum(axis=1) / MB


def affy_work(params: dict, sizes) -> tuple[float, float]:
    """Heavy CEL processing: the calibrated use-case cost."""
    mb = _total_mb(sizes)
    return (calibration.AFFY_CPU_SECONDS_PER_MB * mb + calibration.AFFY_FIXED_CPU_S, 0.0)


def affy_work_batch(params: dict, sizes) -> tuple[np.ndarray, np.ndarray]:
    mb = _batch_mb(sizes)
    cpu = calibration.AFFY_CPU_SECONDS_PER_MB * mb + calibration.AFFY_FIXED_CPU_S
    return cpu, np.zeros_like(mb)


def matrix_work(params: dict, sizes) -> tuple[float, float]:
    mb = _total_mb(sizes)
    return (
        calibration.MATRIX_CPU_BASE_S + calibration.MATRIX_CPU_S_PER_MB * mb,
        calibration.MATRIX_IO_S,
    )


def matrix_work_batch(params: dict, sizes) -> tuple[np.ndarray, np.ndarray]:
    mb = _batch_mb(sizes)
    cpu = calibration.MATRIX_CPU_BASE_S + calibration.MATRIX_CPU_S_PER_MB * mb
    return cpu, np.full_like(mb, calibration.MATRIX_IO_S)


def seq_work(params: dict, sizes) -> tuple[float, float]:
    mb = _total_mb(sizes)
    return (
        calibration.SEQ_CPU_BASE_S + calibration.SEQ_CPU_S_PER_MB * mb,
        calibration.SEQ_IO_S,
    )


def seq_work_batch(params: dict, sizes) -> tuple[np.ndarray, np.ndarray]:
    mb = _batch_mb(sizes)
    cpu = calibration.SEQ_CPU_BASE_S + calibration.SEQ_CPU_S_PER_MB * mb
    return cpu, np.full_like(mb, calibration.SEQ_IO_S)


def plot_work(params: dict, sizes) -> tuple[float, float]:
    mb = _total_mb(sizes)
    return (
        calibration.PLOT_CPU_BASE_S + calibration.PLOT_CPU_S_PER_MB * mb,
        calibration.PLOT_IO_S,
    )


def plot_work_batch(params: dict, sizes) -> tuple[np.ndarray, np.ndarray]:
    mb = _batch_mb(sizes)
    cpu = calibration.PLOT_CPU_BASE_S + calibration.PLOT_CPU_S_PER_MB * mb
    return cpu, np.full_like(mb, calibration.PLOT_IO_S)


#: scalar model -> its native array implementation; ``_tool`` wires the
#: matching batch variant onto every catalog tool automatically
BATCH_WORK_MODELS: dict[Callable, Callable] = {
    affy_work: affy_work_batch,
    matrix_work: matrix_work_batch,
    seq_work: seq_work_batch,
    plot_work: plot_work_batch,
}


# ---------------------------------------------------------------------------
# Execute bodies (each implements one R script)
# ---------------------------------------------------------------------------


def _write_top_table(run: ToolRunContext, result: diffexpr.ModeratedTResult, n: int):
    run.output("top_table").write(result.as_tsv(n).encode())
    sig = result.significant(0.05)
    run.output("top_table").set_info(
        f"{len(sig)} probes at FDR<=0.05 (prior df={result.d0:.2f})"
    )
    if "figure" in run.outputs:
        neglog = -np.log10(np.maximum([r.p_value for r in result.rows], 1e-300))
        lfc = np.array([r.log_fc for r in result.rows])
        hot = np.array([r.adj_p_value <= 0.05 for r in result.rows])
        run.output("figure").write(
            plots.scatter_svg(lfc, neglog, "Differential expression volcano", hot).encode()
        )


def affy_differential_expression(run: ToolRunContext) -> None:
    """affyDifferentialExpression.R — the use-case tool (Fig. 7-9)."""
    em = load_expression(run.input(0))
    mask = two_group_mask(em.groups)
    result = diffexpr.moderated_t_test(em.values, mask, em.probe_names)
    n = int(run.params.get("top_n", 50))
    _write_top_table(run, result, n)
    run.log(f"moderated t-test on {em.values.shape[0]} probes, "
            f"{mask.sum()} vs {(~mask).sum()} arrays")


def affy_classify(run: ToolRunContext) -> None:
    """affyClassify.R — statistical classification of CEL files into groups."""
    em = load_expression(run.input(0))
    method = run.params.get("method", "centroid")
    result = classify.cross_validate(em.values, em.groups, method=method)
    lines = ["sample\tactual\tpredicted"]
    lines += [
        f"{s}\t{a}\t{p}"
        for s, a, p in zip(em.sample_names, result.actual, result.predicted)
    ]
    lines.append(f"# leave-one-out accuracy: {result.accuracy:.3f}")
    run.output("predictions").write(("\n".join(lines) + "\n").encode())
    run.output("confusion").write(result.confusion_tsv().encode())
    run.output("predictions").set_info(f"LOO accuracy {result.accuracy:.1%}")


def affy_normalize(run: ToolRunContext) -> None:
    """affyNormalize.R — RMA normalization to an expression matrix."""
    arch = load_cel(run.input(0))
    values = normalize.rma(arch.intensities())
    em = ExpressionMatrix(
        values=values,
        probe_names=arch.probe_names(),
        sample_names=arch.array_names,
        groups=list(arch.groups),
    )
    run.output("matrix").write(em.to_bytes())
    run.log(f"RMA on {arch.n_arrays} arrays x {arch.n_probes} probes")


def heatmap_plot_demo(run: ToolRunContext) -> None:
    """heatmap_plot_demo.R — hierarchical clustering + heatmap (Sec. IV-B)."""
    em = load_expression(run.input(0))
    axis = run.params.get("cluster_by", "samples")
    top = int(run.params.get("top_n", 40))
    values, names = qc.variance_filter(em.values, em.probe_names, top_n=top)
    res = clustering.hierarchical_cluster(
        values, labels=em.sample_names if axis == "samples" else names, axis=axis
    )
    if axis == "samples":
        ordered = values[:, res.order]
        svg = plots.heatmap_svg(ordered, names, res.ordered_labels())
    else:
        ordered = values[res.order]
        svg = plots.heatmap_svg(ordered, res.ordered_labels(), em.sample_names)
    run.output("figure").write(svg.encode())
    run.output("clusters").write(
        (
            "label\tcluster\n"
            + "\n".join(
                f"{lab}\t{cl}" for lab, cl in zip(res.labels, res.cluster_assignments)
            )
            + "\n"
        ).encode()
    )


def affy_hierarchical(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    res = clustering.hierarchical_cluster(
        em.values, labels=em.sample_names, axis="samples",
        n_clusters=int(run.params.get("n_clusters", 2)),
    )
    run.output("clusters").write(
        (
            "sample\tcluster\n"
            + "\n".join(
                f"{s}\t{c}" for s, c in zip(res.labels, res.cluster_assignments)
            )
            + "\n"
        ).encode()
    )
    run.output("clusters").set_info(f"leaf order: {res.ordered_labels()}")


def affy_kmeans(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    k = int(run.params.get("k", 3))
    res = clustering.kmeans(em.values, k=k, seed=int(run.params.get("seed", 0)))
    run.output("clusters").write(
        (
            "probe\tcluster\n"
            + "\n".join(
                f"{p}\t{c}" for p, c in zip(em.probe_names, res.assignments)
            )
            + f"\n# inertia: {res.inertia:.2f} after {res.n_iter} iterations\n"
        ).encode()
    )


def affy_qc(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    rows = qc.array_qc(em.values, em.sample_names)
    body = "\n".join([qc.QC_HEADER] + [r.as_tsv() for r in rows]) + "\n"
    run.output("report").write(body.encode())
    n_out = sum(r.outlier for r in rows)
    run.output("report").set_info(
        f"{n_out} outlier array(s)" if n_out else "all arrays pass QC"
    )


def affy_pca(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    res = qc.pca(em.values, n_components=int(run.params.get("n_components", 2)))
    run.output("scores").write(res.scores_tsv(em.sample_names).encode())
    mask = two_group_mask(em.groups) if len(set(em.groups)) == 2 else None
    run.output("figure").write(
        plots.scatter_svg(
            res.scores[:, 0],
            res.scores[:, 1] if res.scores.shape[1] > 1 else np.zeros(len(em.sample_names)),
            f"PCA ({res.explained_variance_ratio[0]:.0%} PC1)",
            highlight=mask,
        ).encode()
    )


def affy_boxplot(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    s = qc.boxplot_summary(em.values)
    run.output("figure").write(
        plots.boxplot_svg(s, em.sample_names, "Array intensity boxplots").encode()
    )
    run.output("summary").write(
        (
            "stat\t" + "\t".join(em.sample_names) + "\n"
            + "\n".join(
                name + "\t" + "\t".join(f"{v:.4f}" for v in s[i])
                for i, name in enumerate(["min", "q1", "median", "q3", "max"])
            )
            + "\n"
        ).encode()
    )


def affy_ma_plot(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    i = int(run.params.get("array_a", 0))
    j = int(run.params.get("array_b", 1))
    m_vals, a_vals = qc.ma_values(em.values, i, j)
    run.output("figure").write(
        plots.scatter_svg(
            a_vals, m_vals,
            f"MA plot: {em.sample_names[i]} vs {em.sample_names[j]}",
        ).encode()
    )


def affy_volcano(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    mask = two_group_mask(em.groups)
    res = diffexpr.moderated_t_test(em.values, mask, em.probe_names)
    lfc = np.array([r.log_fc for r in res.rows])
    neglog = -np.log10(np.maximum([r.p_value for r in res.rows], 1e-300))
    hot = np.array([r.adj_p_value <= float(run.params.get("fdr", 0.05)) for r in res.rows])
    run.output("figure").write(
        plots.scatter_svg(lfc, neglog, "Volcano plot", hot).encode()
    )


def affy_density(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    dens, edges = qc.density_summary(em.values)
    centers = 0.5 * (edges[:-1] + edges[1:])
    series = {
        name: (centers, dens[i]) for i, name in enumerate(em.sample_names)
    }
    run.output("figure").write(
        plots.lines_svg(series, "Intensity densities").encode()
    )


def affy_filter(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    top_n = run.params.get("top_n")
    values, names = qc.variance_filter(
        em.values,
        em.probe_names,
        top_n=int(top_n) if top_n else None,
        min_var=float(run.params.get("min_variance", 0.0)),
    )
    out = ExpressionMatrix(values, names, em.sample_names, em.groups)
    run.output("matrix").write(out.to_bytes())
    run.output("matrix").set_info(f"kept {len(names)}/{len(em.probe_names)} probes")


def affy_top_genes(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    n = int(run.params.get("top_n", 25))
    var = em.values.var(axis=1, ddof=1)
    idx = np.argsort(var)[::-1][:n]
    lines = ["probe\tvariance\tmean"]
    lines += [
        f"{em.probe_names[i]}\t{var[i]:.4f}\t{em.values[i].mean():.4f}" for i in idx
    ]
    run.output("table").write(("\n".join(lines) + "\n").encode())


def affy_correlation(run: ToolRunContext) -> None:
    em = load_expression(run.input(0))
    corr = clustering.correlation_matrix(em.values)
    run.output("figure").write(
        plots.heatmap_svg(corr, em.sample_names, em.sample_names, "Sample correlation").encode()
    )
    lines = ["sample\t" + "\t".join(em.sample_names)]
    for name, row in zip(em.sample_names, corr):
        lines.append(name + "\t" + "\t".join(f"{v:.4f}" for v in row))
    run.output("table").write(("\n".join(lines) + "\n").encode())


# -- matrix tools ------------------------------------------------------------


def matrix_diffexpr(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    mask = two_group_mask(em.groups)
    res = diffexpr.moderated_t_test(em.values, mask, em.probe_names)
    _write_top_table(run, res, int(run.params.get("top_n", 50)))


def matrix_ttest(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    mask = two_group_mask(em.groups)
    res = diffexpr.student_t_test(em.values, mask, em.probe_names)
    run.output("top_table").write(res.as_tsv(int(run.params.get("top_n", 50))).encode())


def matrix_moderated(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    mask = two_group_mask(em.groups)
    res = diffexpr.moderated_t_test(em.values, mask, em.probe_names)
    _write_top_table(run, res, int(run.params.get("top_n", 50)))


def matrix_anova(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    rows = diffexpr.one_way_anova(em.values, em.groups, em.probe_names)
    n = int(run.params.get("top_n", 50))
    lines = ["probe\tF\tP.Value\tadj.P.Val"]
    lines += [f"{r[0]}\t{r[1]:.4f}\t{r[2]:.3e}\t{r[3]:.3e}" for r in rows[:n]]
    run.output("table").write(("\n".join(lines) + "\n").encode())


def matrix_fold_change(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    mask = two_group_mask(em.groups)
    rows = diffexpr.fold_change(em.values, mask, em.probe_names)
    cutoff = float(run.params.get("min_abs_fc", 0.0))
    lines = ["probe\tlogFC"]
    lines += [f"{n}\t{fc:.4f}" for n, fc in rows if abs(fc) >= cutoff]
    run.output("table").write(("\n".join(lines) + "\n").encode())


def matrix_zscore(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    out = ExpressionMatrix(
        normalize.zscore(em.values), em.probe_names, em.sample_names, em.groups
    )
    run.output("matrix").write(out.to_bytes())


def matrix_quantile(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    out = ExpressionMatrix(
        normalize.quantile_normalize(em.values), em.probe_names, em.sample_names, em.groups
    )
    run.output("matrix").write(out.to_bytes())


def matrix_log2(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    out = ExpressionMatrix(
        normalize.log2_transform(em.values), em.probe_names, em.sample_names, em.groups
    )
    run.output("matrix").write(out.to_bytes())


def matrix_heatmap(run: ToolRunContext) -> None:
    heatmap_plot_demo(run)


def matrix_pca(run: ToolRunContext) -> None:
    affy_pca(run)


def classify_nearest_centroid(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    result = classify.cross_validate(em.values, em.groups, method="centroid")
    run.output("predictions").write(
        (
            "sample\tactual\tpredicted\n"
            + "\n".join(
                f"{s}\t{a}\t{p}"
                for s, a, p in zip(em.sample_names, result.actual, result.predicted)
            )
            + f"\n# accuracy: {result.accuracy:.3f}\n"
        ).encode()
    )


# -- sequence tools ------------------------------------------------------------


def sequence_counts(run: ToolRunContext) -> None:
    """sequenceCountsPerTranscript.R (named in the paper)."""
    arch = load_bam(run.input(0))
    counts, tx_names, samples = rnaseq.count_matrix(arch)
    lines = ["transcript\t" + "\t".join(samples)]
    for name, row in zip(tx_names, counts):
        lines.append(name + "\t" + "\t".join(str(int(v)) for v in row))
    run.output("counts").write(("\n".join(lines) + "\n").encode())
    run.log(f"counted {counts.sum()} reads over {len(tx_names)} transcripts")


def sequence_diffexpr(run: ToolRunContext) -> None:
    """sequenceDifferentialExperssion.R [sic] (named in the paper)."""
    arch = load_bam(run.input(0))
    counts, tx_names, _samples = rnaseq.count_matrix(arch)
    labels = arch.condition_labels()
    if len(labels) != 2:
        raise ToolError("two-sample test needs exactly two conditions")
    mask = np.array([c == labels[1] for c in arch.conditions])
    rows = rnaseq.two_sample_count_test(counts, mask, tx_names)
    n = int(run.params.get("top_n", 50))
    body = "\n".join([rnaseq.COUNT_DE_HEADER] + [r.as_tsv() for r in rows[:n]]) + "\n"
    run.output("top_table").write(body.encode())
    sig = [r for r in rows if r.adj_p_value <= 0.05]
    run.output("top_table").set_info(f"{len(sig)} transcripts at FDR<=0.05")


def sequence_coverage(run: ToolRunContext) -> None:
    arch = load_bam(run.input(0))
    ann = arch.annotation()
    series = {}
    for i, sample in enumerate(arch.samples):
        hist, edges = rnaseq.coverage_histogram(arch.read_starts(i), ann)
        centers = 0.5 * (edges[:-1] + edges[1:])
        series[sample] = (centers, hist)
    run.output("figure").write(plots.lines_svg(series, "Read coverage").encode())


def sequence_align_stats(run: ToolRunContext) -> None:
    arch = load_bam(run.input(0))
    rows = rnaseq.alignment_stats(arch)
    body = "\n".join([rnaseq.ALIGN_STATS_HEADER] + [r.as_tsv() for r in rows]) + "\n"
    run.output("report").write(body.encode())


def sequence_filter_reads(run: ToolRunContext) -> None:
    arch = load_bam(run.input(0))
    keep_fraction = float(run.params.get("keep_fraction", 0.9))
    if not (0.0 < keep_fraction <= 1.0):
        raise ToolError("keep_fraction must be in (0, 1]")
    filtered = BamArchive(
        n_reads_per_sample=int(arch.n_reads_per_sample * keep_fraction),
        seed=arch.seed,
        samples=arch.samples,
        conditions=arch.conditions,
        annotation_seed=arch.annotation_seed,
        n_transcripts=arch.n_transcripts,
        n_diff=arch.n_diff,
        effect=arch.effect,
        read_length=arch.read_length,
    )
    run.output("bam").write(filtered.to_bytes())
    run.output("bam").set_info(
        f"kept {filtered.n_reads_per_sample}/{arch.n_reads_per_sample} reads per sample"
    )


def sequence_normalize_counts(run: ToolRunContext) -> None:
    arch = load_bam(run.input(0))
    counts, tx_names, samples = rnaseq.count_matrix(arch)
    log = bool(run.params.get("log", True))
    values = normalize.cpm(counts, log=log)
    em = ExpressionMatrix(values, tx_names, samples, list(arch.conditions))
    run.output("matrix").write(em.to_bytes())


def sequence_gene_body(run: ToolRunContext) -> None:
    arch = load_bam(run.input(0))
    series = {}
    bins = int(run.params.get("n_bins", 20))
    x = (np.arange(bins) + 0.5) / bins
    for i, sample in enumerate(arch.samples):
        series[sample] = (x, rnaseq.gene_body_coverage(arch, i, n_bins=bins))
    run.output("figure").write(
        plots.lines_svg(series, "Gene body coverage").encode()
    )


# -- misc tools -------------------------------------------------------------------


def survival_km(run: ToolRunContext) -> None:
    times, events, groups = survival.parse_clinical_table(run.input(0).read())
    labels = list(dict.fromkeys(groups))
    curves = []
    series = {}
    for lab in labels:
        mask = np.array([g == lab for g in groups])
        curve = survival.kaplan_meier(times[mask], events[mask], group=lab)
        curves.append(curve)
        if curve.times.size:
            series[lab] = (
                np.concatenate([[0.0], curve.times]),
                np.concatenate([[1.0], curve.survival]),
            )
    run.output("curves").write(
        ("".join(c.as_tsv() for c in curves)).encode()
    )
    if len(labels) == 2:
        chi2, p = survival.logrank_test(times, events, groups)
        run.output("curves").set_info(f"log-rank chi2={chi2:.3f} p={p:.3e}")
    if series:
        run.output("figure").write(
            plots.lines_svg(series, "Kaplan-Meier survival").encode()
        )
    else:
        run.output("figure").write(
            plots.lines_svg({"none": (np.array([0, 1]), np.array([1, 1]))},
                            "Kaplan-Meier survival (no events)").encode()
        )


def correlation_test_tool(run: ToolRunContext) -> None:
    em = ExpressionMatrix.from_bytes(run.input(0).read())
    a = run.params.get("probe_a") or em.probe_names[0]
    b = run.params.get("probe_b") or em.probe_names[-1]
    try:
        xi = em.probe_names.index(a)
        yi = em.probe_names.index(b)
    except ValueError as exc:
        raise ToolError(f"unknown probe: {exc}") from exc
    method = run.params.get("method", "pearson")
    r, p = qc.correlation_test(em.values[xi], em.values[yi], method=method)
    run.output("result").write(
        f"probe_a\tprobe_b\tmethod\tr\tp\n{a}\t{b}\t{method}\t{r:.4f}\t{p:.3e}\n".encode()
    )


# ---------------------------------------------------------------------------
# Catalog assembly
# ---------------------------------------------------------------------------


def _tool(
    script: str,
    description: str,
    execute: Callable[[ToolRunContext], None],
    outputs: list[dict],
    parameters: list[dict] | None = None,
    work: Callable = matrix_work,
) -> Tool:
    config = {
        "id": f"crdata_{script.replace('.R', '')}",
        "name": script,
        "version": "1.0.0",
        "description": description,
        "parameters": (
            [{"name": "input", "type": "data", "label": "Input dataset"}]
            + (parameters or [])
        ),
        "outputs": outputs,
        "requirements": list(CRDATA_REQUIREMENTS),
    }
    return Tool.from_config(
        config,
        execute=execute,
        work_model=work,
        work_model_batch=BATCH_WORK_MODELS.get(work),
    )


_TOP_N = {"name": "top_n", "type": "integer", "default": 50, "label": "Rows in top table"}
_FIG = {"name": "figure", "ext": "html", "label": "Figure"}


def build_crdata_tools() -> list[Tool]:
    """All 35 CRData tools, in catalog order."""
    t = _tool
    return [
        # -- Affymetrix CEL tools (1-15) --------------------------------------
        t("affyDifferentialExpression.R",
          "Two-group differential expression on Affymetrix CEL files",
          affy_differential_expression,
          outputs=[{"name": "top_table", "ext": "tabular", "label": "Top table"}, _FIG],
          parameters=[_TOP_N], work=affy_work),
        t("affyClassify.R",
          "Statistical classification of Affymetrix CEL files into groups",
          affy_classify,
          outputs=[{"name": "predictions", "ext": "tabular"},
                   {"name": "confusion", "ext": "tabular"}],
          parameters=[{"name": "method", "type": "select",
                       "options": ("centroid", "lda"), "default": "centroid"}],
          work=affy_work),
        t("affyNormalize.R", "RMA normalization of CEL files",
          affy_normalize,
          outputs=[{"name": "matrix", "ext": "tabular"}], work=affy_work),
        t("affyQualityControl.R", "Per-array quality metrics and outlier flags",
          affy_qc, outputs=[{"name": "report", "ext": "tabular"}], work=affy_work),
        t("affyPCA.R", "Principal component analysis of arrays",
          affy_pca,
          outputs=[{"name": "scores", "ext": "tabular"}, _FIG],
          parameters=[{"name": "n_components", "type": "integer", "default": 2}],
          work=affy_work),
        t("affyHierarchicalClustering.R", "Hierarchical clustering of arrays",
          affy_hierarchical,
          outputs=[{"name": "clusters", "ext": "tabular"}],
          parameters=[{"name": "n_clusters", "type": "integer", "default": 2}],
          work=affy_work),
        t("heatmap_plot_demo.R",
          "Hierarchical clustering by genes or samples, plotted as a heatmap",
          heatmap_plot_demo,
          outputs=[_FIG, {"name": "clusters", "ext": "tabular"}],
          parameters=[{"name": "cluster_by", "type": "select",
                       "options": ("samples", "genes"), "default": "samples"},
                      {"name": "top_n", "type": "integer", "default": 40}],
          work=plot_work),
        t("affyBoxplot.R", "Intensity boxplots per array",
          affy_boxplot,
          outputs=[_FIG, {"name": "summary", "ext": "tabular"}], work=plot_work),
        t("affyMAPlot.R", "MA plot between two arrays",
          affy_ma_plot,
          outputs=[_FIG],
          parameters=[{"name": "array_a", "type": "integer", "default": 0},
                      {"name": "array_b", "type": "integer", "default": 1}],
          work=plot_work),
        t("affyVolcanoPlot.R", "Volcano plot of two-group differential expression",
          affy_volcano, outputs=[_FIG],
          parameters=[{"name": "fdr", "type": "float", "default": 0.05}],
          work=affy_work),
        t("affyDensityPlot.R", "Per-array intensity density curves",
          affy_density, outputs=[_FIG], work=plot_work),
        t("affyFilterProbes.R", "Variance/intensity probe filtering",
          affy_filter,
          outputs=[{"name": "matrix", "ext": "tabular"}],
          parameters=[{"name": "top_n", "type": "integer", "optional": True},
                      {"name": "min_variance", "type": "float", "default": 0.0}],
          work=matrix_work),
        t("affyTopGenes.R", "Most variable probes",
          affy_top_genes,
          outputs=[{"name": "table", "ext": "tabular"}],
          parameters=[{"name": "top_n", "type": "integer", "default": 25}],
          work=matrix_work),
        t("affyCorrelationMatrix.R", "Sample-sample correlation heatmap",
          affy_correlation,
          outputs=[_FIG, {"name": "table", "ext": "tabular"}], work=plot_work),
        t("affyKMeansClustering.R", "K-means clustering of probes",
          affy_kmeans,
          outputs=[{"name": "clusters", "ext": "tabular"}],
          parameters=[{"name": "k", "type": "integer", "default": 3},
                      {"name": "seed", "type": "integer", "default": 0}],
          work=affy_work),
        # -- expression-matrix tools (16-25) ------------------------------------
        t("matrixDifferentialExpression.R",
          "Two-group differential expression on an expression matrix",
          matrix_diffexpr,
          outputs=[{"name": "top_table", "ext": "tabular"}, _FIG],
          parameters=[_TOP_N], work=matrix_work),
        t("matrixTTest.R", "Per-probe Welch t-test",
          matrix_ttest,
          outputs=[{"name": "top_table", "ext": "tabular"}],
          parameters=[_TOP_N], work=matrix_work),
        t("matrixModeratedTTest.R", "Per-probe empirical-Bayes moderated t-test",
          matrix_moderated,
          outputs=[{"name": "top_table", "ext": "tabular"}, _FIG],
          parameters=[_TOP_N], work=matrix_work),
        t("matrixANOVA.R", "One-way ANOVA across groups",
          matrix_anova,
          outputs=[{"name": "table", "ext": "tabular"}],
          parameters=[_TOP_N], work=matrix_work),
        t("matrixFoldChange.R", "Per-probe log2 fold changes",
          matrix_fold_change,
          outputs=[{"name": "table", "ext": "tabular"}],
          parameters=[{"name": "min_abs_fc", "type": "float", "default": 0.0}],
          work=matrix_work),
        t("matrixZScore.R", "Row-standardise a matrix",
          matrix_zscore, outputs=[{"name": "matrix", "ext": "tabular"}],
          work=matrix_work),
        t("matrixQuantileNormalize.R", "Quantile normalization",
          matrix_quantile, outputs=[{"name": "matrix", "ext": "tabular"}],
          work=matrix_work),
        t("matrixLog2.R", "Log2 transform",
          matrix_log2, outputs=[{"name": "matrix", "ext": "tabular"}],
          work=matrix_work),
        t("matrixHeatmap.R", "Clustered heatmap of a matrix",
          matrix_heatmap,
          outputs=[_FIG, {"name": "clusters", "ext": "tabular"}],
          parameters=[{"name": "cluster_by", "type": "select",
                       "options": ("samples", "genes"), "default": "samples"},
                      {"name": "top_n", "type": "integer", "default": 40}],
          work=plot_work),
        t("matrixPCA.R", "PCA of a matrix",
          matrix_pca,
          outputs=[{"name": "scores", "ext": "tabular"}, _FIG],
          parameters=[{"name": "n_components", "type": "integer", "default": 2}],
          work=matrix_work),
        # -- sequence tools (26-32) ------------------------------------------------
        t("sequenceCountsPerTranscript.R",
          "Reads per genomic feature from BAM files over a UCSC-style annotation",
          sequence_counts,
          outputs=[{"name": "counts", "ext": "tabular"}], work=seq_work),
        t("sequenceDifferentialExperssion.R",
          "Two-sample test for RNA-sequence differential expression",
          sequence_diffexpr,
          outputs=[{"name": "top_table", "ext": "tabular"}],
          parameters=[_TOP_N], work=seq_work),
        t("sequenceCoveragePlot.R", "Genome-window read coverage",
          sequence_coverage, outputs=[_FIG], work=seq_work),
        t("sequenceAlignmentStats.R", "Per-sample mapping statistics",
          sequence_align_stats,
          outputs=[{"name": "report", "ext": "tabular"}], work=seq_work),
        t("sequenceFilterReads.R", "Downsample/filter reads",
          sequence_filter_reads,
          outputs=[{"name": "bam", "ext": "bam"}],
          parameters=[{"name": "keep_fraction", "type": "float", "default": 0.9}],
          work=seq_work),
        t("sequenceNormalizeCounts.R", "Library-size (CPM) normalization",
          sequence_normalize_counts,
          outputs=[{"name": "matrix", "ext": "tabular"}],
          parameters=[{"name": "log", "type": "boolean", "default": True}],
          work=seq_work),
        t("sequenceGeneBodyCoverage.R", "Read position bias along transcripts",
          sequence_gene_body,
          outputs=[_FIG],
          parameters=[{"name": "n_bins", "type": "integer", "default": 20}],
          work=seq_work),
        # -- misc (33-35) --------------------------------------------------------------
        t("survivalKaplanMeier.R",
          "Kaplan-Meier curves and log-rank test from a clinical table",
          survival_km,
          outputs=[{"name": "curves", "ext": "tabular"}, _FIG],
          work=matrix_work),
        t("correlationTest.R", "Correlation between two probes",
          correlation_test_tool,
          outputs=[{"name": "result", "ext": "tabular"}],
          parameters=[{"name": "probe_a", "type": "text", "optional": True},
                      {"name": "probe_b", "type": "text", "optional": True},
                      {"name": "method", "type": "select",
                       "options": ("pearson", "spearman"), "default": "pearson"}],
          work=matrix_work),
        t("classifyNearestCentroid.R", "Nearest-centroid classification of samples",
          classify_nearest_centroid,
          outputs=[{"name": "predictions", "ext": "tabular"}],
          work=matrix_work),
    ]


def install_crdata_tools(toolbox: Toolbox) -> list[Tool]:
    """Register the full catalog (what the crdata recipe does to Galaxy)."""
    tools = build_crdata_tools()
    for tool in tools:
        toolbox.register(tool, section=TOOL_SECTION)
    return tools


#: name the paper uses for the use-case tool
USECASE_TOOL_ID = "crdata_affyDifferentialExpression"
