"""CRData: the 35-tool BioConductor-style statistical toolset (Sec. IV-B)."""

from .catalog import (
    CRDATA_REQUIREMENTS,
    TOOL_SECTION,
    USECASE_TOOL_ID,
    build_crdata_tools,
    install_crdata_tools,
)
from .formats import (
    BamArchive,
    CelArchive,
    ExpressionMatrix,
    FormatError,
    Transcript,
    TranscriptAnnotation,
    sniff,
)

__all__ = [
    "BamArchive",
    "CRDATA_REQUIREMENTS",
    "CelArchive",
    "ExpressionMatrix",
    "FormatError",
    "TOOL_SECTION",
    "Transcript",
    "TranscriptAnnotation",
    "USECASE_TOOL_ID",
    "build_crdata_tools",
    "install_crdata_tools",
    "sniff",
]
