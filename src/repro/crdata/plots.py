"""Figure rendering without matplotlib: SVG documents and ASCII previews.

CRData tools "return output files and figures after running R"
(Sec. IV-B); Galaxy shows both in the history panel.  We render real SVG
(inspectable, deterministic) for the figure outputs plus a text preview.
"""

from __future__ import annotations

import numpy as np

SVG_W, SVG_H = 640, 420
MARGIN = 50


def _svg_header(title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{SVG_W}" height="{SVG_H}">',
        f'<title>{title}</title>',
        f'<rect width="{SVG_W}" height="{SVG_H}" fill="white"/>',
        f'<text x="{SVG_W // 2}" y="24" text-anchor="middle" '
        f'font-size="16" font-family="sans-serif">{title}</text>',
    ]


def _scale(values: np.ndarray, lo_px: float, hi_px: float) -> np.ndarray:
    v = np.asarray(values, dtype=float)
    vmin, vmax = float(v.min()), float(v.max())
    if vmax == vmin:
        return np.full(v.shape, 0.5 * (lo_px + hi_px))
    return lo_px + (v - vmin) / (vmax - vmin) * (hi_px - lo_px)


def scatter_svg(
    x: np.ndarray,
    y: np.ndarray,
    title: str,
    highlight: np.ndarray | None = None,
    max_points: int = 2000,
) -> str:
    """Scatter plot (volcano, MA, PCA).  ``highlight`` marks points red."""
    x, y = np.asarray(x, float), np.asarray(y, float)
    if x.shape != y.shape:
        raise ValueError("x/y shape mismatch")
    if highlight is None:
        highlight = np.zeros(x.shape, dtype=bool)
    if x.size > max_points:  # deterministic thinning for huge inputs
        idx = np.linspace(0, x.size - 1, max_points).astype(int)
        x, y, highlight = x[idx], y[idx], highlight[idx]
    px = _scale(x, MARGIN, SVG_W - MARGIN)
    py = _scale(y, SVG_H - MARGIN, MARGIN)  # y axis grows upward
    parts = _svg_header(title)
    parts.append(
        f'<line x1="{MARGIN}" y1="{SVG_H - MARGIN}" x2="{SVG_W - MARGIN}" '
        f'y2="{SVG_H - MARGIN}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{MARGIN}" y1="{MARGIN}" x2="{MARGIN}" '
        f'y2="{SVG_H - MARGIN}" stroke="black"/>'
    )
    for xi, yi, hot in zip(px, py, highlight):
        color = "#cc3333" if hot else "#3366aa"
        parts.append(f'<circle cx="{xi:.1f}" cy="{yi:.1f}" r="2.5" fill="{color}"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def heatmap_svg(
    matrix: np.ndarray,
    row_labels: list[str],
    col_labels: list[str],
    title: str = "Heatmap",
    max_rows: int = 60,
) -> str:
    """Blue-white-red heatmap of a (rows × cols) matrix."""
    m = np.asarray(matrix, dtype=float)
    if m.shape[0] > max_rows:
        m = m[:max_rows]
        row_labels = row_labels[:max_rows]
    rows, cols = m.shape
    if len(row_labels) != rows or len(col_labels) != cols:
        raise ValueError("label length mismatch")
    # symmetric scaling around the median
    center = np.median(m)
    spread = max(1e-9, np.abs(m - center).max())
    cell_w = (SVG_W - 2 * MARGIN) / cols
    cell_h = (SVG_H - 2 * MARGIN) / rows
    parts = _svg_header(title)
    for i in range(rows):
        for j in range(cols):
            z = float(np.clip((m[i, j] - center) / spread, -1, 1))
            if z >= 0:
                r, g, b = 255, int(255 * (1 - z)), int(255 * (1 - z))
            else:
                r, g, b = int(255 * (1 + z)), int(255 * (1 + z)), 255
            parts.append(
                f'<rect x="{MARGIN + j * cell_w:.1f}" y="{MARGIN + i * cell_h:.1f}" '
                f'width="{cell_w:.1f}" height="{cell_h:.1f}" fill="rgb({r},{g},{b})"/>'
            )
    for j, lab in enumerate(col_labels):
        parts.append(
            f'<text x="{MARGIN + (j + 0.5) * cell_w:.1f}" y="{SVG_H - MARGIN + 16}" '
            f'text-anchor="middle" font-size="9" font-family="sans-serif">{lab}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def lines_svg(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    title: str,
) -> str:
    """Step/line chart (KM curves, density plots, coverage)."""
    if not series:
        raise ValueError("no series")
    all_x = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    parts = _svg_header(title)
    colors = ["#3366aa", "#cc3333", "#33aa66", "#aa8833", "#8833aa"]
    xmin, xmax = float(all_x.min()), float(all_x.max()) or 1.0
    ymin, ymax = float(all_y.min()), float(all_y.max())
    if xmax == xmin:
        xmax = xmin + 1
    if ymax == ymin:
        ymax = ymin + 1
    for k, (name, (x, y)) in enumerate(series.items()):
        x, y = np.asarray(x, float), np.asarray(y, float)
        px = MARGIN + (x - xmin) / (xmax - xmin) * (SVG_W - 2 * MARGIN)
        py = SVG_H - MARGIN - (y - ymin) / (ymax - ymin) * (SVG_H - 2 * MARGIN)
        points = " ".join(f"{a:.1f},{b:.1f}" for a, b in zip(px, py))
        color = colors[k % len(colors)]
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{SVG_W - MARGIN}" y="{MARGIN + 14 * (k + 1)}" text-anchor="end" '
            f'font-size="11" fill="{color}" font-family="sans-serif">{name}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def boxplot_svg(summaries: np.ndarray, labels: list[str], title: str) -> str:
    """Boxplots from five-number summaries, shape (5 × n)."""
    s = np.asarray(summaries, dtype=float)
    if s.shape[0] != 5 or s.shape[1] != len(labels):
        raise ValueError("summaries must be (5 × n) matching labels")
    n = s.shape[1]
    lo, hi = float(s.min()), float(s.max())
    if hi == lo:
        hi = lo + 1
    width = (SVG_W - 2 * MARGIN) / n

    def ypix(v: float) -> float:
        return SVG_H - MARGIN - (v - lo) / (hi - lo) * (SVG_H - 2 * MARGIN)

    parts = _svg_header(title)
    for j in range(n):
        cx = MARGIN + (j + 0.5) * width
        w = width * 0.6
        mn, q1, med, q3, mx = s[:, j]
        parts.append(
            f'<line x1="{cx:.1f}" y1="{ypix(mn):.1f}" x2="{cx:.1f}" '
            f'y2="{ypix(mx):.1f}" stroke="black"/>'
        )
        parts.append(
            f'<rect x="{cx - w / 2:.1f}" y="{ypix(q3):.1f}" width="{w:.1f}" '
            f'height="{max(1.0, ypix(q1) - ypix(q3)):.1f}" fill="#99bbdd" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{cx - w / 2:.1f}" y1="{ypix(med):.1f}" x2="{cx + w / 2:.1f}" '
            f'y2="{ypix(med):.1f}" stroke="black" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{SVG_H - MARGIN + 16}" text-anchor="middle" '
            f'font-size="9" font-family="sans-serif">{labels[j]}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def ascii_heatmap(matrix: np.ndarray, max_rows: int = 20, max_cols: int = 40) -> str:
    """Terminal-friendly preview (the dataset 'peek')."""
    chars = " .:-=+*#%@"
    m = np.asarray(matrix, dtype=float)[:max_rows, :max_cols]
    lo, hi = float(m.min()), float(m.max())
    span = (hi - lo) or 1.0
    lines = []
    for row in m:
        idx = ((row - lo) / span * (len(chars) - 1)).astype(int)
        lines.append("".join(chars[i] for i in idx))
    return "\n".join(lines)
