"""RNA-seq engines: read counting and count-based differential expression.

Backs the paper's named sequence tools: ``sequenceCountsPerTranscript.R``
("summarizes the number of reads ... aligning to different genomic
features retrieved from the UCSC genome browser") and
``sequenceDifferentialExperssion.R`` [sic] ("performs a two-sample test
for RNA-sequence differential expression").

Counting is vectorised with ``searchsorted`` over sorted read starts —
the NumPy idiom the HPC guides recommend over Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..formats import BamArchive, TranscriptAnnotation
from .diffexpr import benjamini_hochberg


def count_reads_per_transcript(
    read_starts: np.ndarray, annotation: TranscriptAnnotation
) -> np.ndarray:
    """Reads whose start falls inside each transcript's span.

    ``read_starts`` must be sorted ascending (as BamArchive produces).
    """
    starts = np.asarray(read_starts)
    if starts.size and np.any(np.diff(starts) < 0):
        starts = np.sort(starts)
    tx_start = np.array([t.start for t in annotation.transcripts])
    tx_end = np.array([t.end for t in annotation.transcripts])
    lo = np.searchsorted(starts, tx_start, side="left")
    hi = np.searchsorted(starts, tx_end, side="left")
    return (hi - lo).astype(int)


def count_matrix(archive: BamArchive) -> tuple[np.ndarray, list[str], list[str]]:
    """(transcripts × samples) count matrix for a whole archive."""
    ann = archive.annotation()
    counts = np.column_stack(
        [
            count_reads_per_transcript(archive.read_starts(i), ann)
            for i in range(len(archive.samples))
        ]
    )
    return counts, [t.name for t in ann.transcripts], list(archive.samples)


@dataclass
class CountDERow:
    name: str
    log_fc: float
    mean_count: float
    statistic: float
    p_value: float
    adj_p_value: float

    def as_tsv(self) -> str:
        return (
            f"{self.name}\t{self.log_fc:.4f}\t{self.mean_count:.1f}"
            f"\t{self.statistic:.4f}\t{self.p_value:.3e}\t{self.adj_p_value:.3e}"
        )


COUNT_DE_HEADER = "transcript\tlogFC\tmeanCount\tstat\tP.Value\tadj.P.Val"


def two_sample_count_test(
    counts: np.ndarray,
    condition_mask: np.ndarray,
    names: list[str] | None = None,
) -> list[CountDERow]:
    """Two-sample differential expression on count data.

    Library sizes are normalised away; each transcript gets an exact
    binomial test comparing its pooled condition-2 share of reads against
    the expectation under no differential expression (the classic Poisson
    /binomial exact test for two-library RNA-seq, cf. Marioni 2008).
    """
    c = np.asarray(counts, dtype=float)
    mask = np.asarray(condition_mask, dtype=bool)
    if c.shape[1] != mask.size:
        raise ValueError("condition mask length mismatch")
    if mask.all() or (~mask).all():
        raise ValueError("need samples in both conditions")
    pooled1 = c[:, ~mask].sum(axis=1)
    pooled2 = c[:, mask].sum(axis=1)
    lib1, lib2 = pooled1.sum(), pooled2.sum()
    if lib1 == 0 or lib2 == 0:
        raise ValueError("a condition has zero total counts")
    expected_share2 = lib2 / (lib1 + lib2)
    totals = (pooled1 + pooled2).astype(int)
    k2 = pooled2.astype(int)
    p = np.ones(c.shape[0])
    nonzero = totals > 0
    p[nonzero] = [
        stats.binomtest(int(k), int(n), expected_share2).pvalue
        for k, n in zip(k2[nonzero], totals[nonzero])
    ]
    # normalised log fold change (pseudo-count stabilised)
    cpm1 = (pooled1 + 0.5) / (lib1 + 1.0)
    cpm2 = (pooled2 + 0.5) / (lib2 + 1.0)
    log_fc = np.log2(cpm2 / cpm1)
    adj = benjamini_hochberg(p)
    if names is None:
        names = [f"tx_{i:04d}" for i in range(c.shape[0])]
    with np.errstate(divide="ignore", invalid="ignore"):
        stat = np.where(
            totals > 0,
            (k2 - totals * expected_share2)
            / np.sqrt(np.maximum(totals * expected_share2 * (1 - expected_share2), 1e-12)),
            0.0,
        )
    rows = [
        CountDERow(
            name=names[i],
            log_fc=float(log_fc[i]),
            mean_count=float(c[i].mean()),
            statistic=float(stat[i]),
            p_value=float(p[i]),
            adj_p_value=float(adj[i]),
        )
        for i in range(c.shape[0])
    ]
    rows.sort(key=lambda r: r.p_value)
    return rows


@dataclass
class AlignmentStats:
    sample: str
    n_reads: int
    n_in_transcripts: int
    fraction_in_transcripts: float
    mean_coverage: float

    def as_tsv(self) -> str:
        return (
            f"{self.sample}\t{self.n_reads}\t{self.n_in_transcripts}"
            f"\t{self.fraction_in_transcripts:.4f}\t{self.mean_coverage:.4f}"
        )


ALIGN_STATS_HEADER = "sample\treads\tin_transcripts\tfraction\tmean_coverage"


def alignment_stats(archive: BamArchive) -> list[AlignmentStats]:
    """Per-sample mapping summary."""
    ann = archive.annotation()
    tx_len = sum(t.length for t in ann.transcripts)
    out = []
    for i, sample in enumerate(archive.samples):
        starts = archive.read_starts(i)
        counts = count_reads_per_transcript(starts, ann)
        in_tx = int(counts.sum())
        out.append(
            AlignmentStats(
                sample=sample,
                n_reads=int(starts.size),
                n_in_transcripts=in_tx,
                fraction_in_transcripts=in_tx / starts.size if starts.size else 0.0,
                mean_coverage=in_tx * archive.read_length / tx_len if tx_len else 0.0,
            )
        )
    return out


def coverage_histogram(
    read_starts: np.ndarray,
    annotation: TranscriptAnnotation,
    n_bins: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Genome-window read-start histogram (the coverage plot series)."""
    if not annotation.transcripts:
        raise ValueError("empty annotation")
    lo = min(t.start for t in annotation.transcripts)
    hi = max(t.end for t in annotation.transcripts)
    hist, edges = np.histogram(read_starts, bins=n_bins, range=(lo, hi))
    return hist, edges


def gene_body_coverage(
    archive: BamArchive, sample_index: int, n_bins: int = 20
) -> np.ndarray:
    """Mean relative position of read starts within their transcript.

    Uniform fragmentation should give a flat profile; the QC tool plots it.
    """
    ann = archive.annotation()
    starts = archive.read_starts(sample_index)
    tx_start = np.array([t.start for t in ann.transcripts])
    tx_end = np.array([t.end for t in ann.transcripts])
    idx = np.searchsorted(tx_start, starts, side="right") - 1
    valid = (idx >= 0) & (starts < tx_end[np.clip(idx, 0, None)])
    idx, pos = idx[valid], starts[valid]
    rel = (pos - tx_start[idx]) / (tx_end[idx] - tx_start[idx])
    hist, _ = np.histogram(rel, bins=n_bins, range=(0.0, 1.0))
    return hist
