"""Differential expression: moderated t statistics with FDR control.

The engine behind ``affyDifferentialExpression.R`` — "conducts two-group
differential expression on Affymetrix CEL files ... and creates a 'top
table' of probe sets that are differentially expressed" (paper Sec. V-A).

Implements a limma-style empirical-Bayes moderated t-test (Smyth 2004):
per-gene variances are shrunk toward a pooled prior estimated by the
method of moments, improving power for small sample sizes (the use case
has 2 arrays per group), plus Benjamini-Hochberg FDR and one-way ANOVA
for multi-group designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special, stats


@dataclass
class TopTableRow:
    name: str
    log_fc: float
    mean_expr: float
    t_stat: float
    p_value: float
    adj_p_value: float

    def as_tsv(self) -> str:
        return (
            f"{self.name}\t{self.log_fc:.4f}\t{self.mean_expr:.4f}"
            f"\t{self.t_stat:.4f}\t{self.p_value:.3e}\t{self.adj_p_value:.3e}"
        )


TOP_TABLE_HEADER = "probe\tlogFC\tAveExpr\tt\tP.Value\tadj.P.Val"


def benjamini_hochberg(p_values: np.ndarray) -> np.ndarray:
    """BH step-up FDR adjustment."""
    p = np.asarray(p_values, dtype=float)
    n = p.size
    order = np.argsort(p)
    ranked = p[order] * n / (np.arange(n) + 1)
    # enforce monotonicity from the largest p downwards
    ranked = np.minimum.accumulate(ranked[::-1])[::-1]
    out = np.empty(n)
    out[order] = np.clip(ranked, 0.0, 1.0)
    return out


def _moment_match_prior(s2: np.ndarray, df: float) -> tuple[float, float]:
    """Estimate the inverse-chi-square prior (d0, s0^2) from sample variances.

    Method of moments on log variances, following limma's fitFDist.
    """
    s2 = np.maximum(s2, 1e-12)
    z = np.log(s2)
    e_z = z.mean()
    v_z = z.var(ddof=1) if z.size > 1 else 0.0
    # var(log s^2) = trigamma(df/2) + trigamma(d0/2)
    rest = v_z - special.polygamma(1, df / 2.0)
    if rest <= 1e-8:
        return np.inf, float(np.exp(e_z))  # variances essentially equal
    # invert trigamma by bisection
    lo, hi = 1e-6, 1e6
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if special.polygamma(1, mid) > rest:
            lo = mid
        else:
            hi = mid
    d0 = 2.0 * 0.5 * (lo + hi)
    s02 = np.exp(
        e_z + special.digamma(df / 2.0) - np.log(df / 2.0)
        - special.digamma(d0 / 2.0) + np.log(d0 / 2.0)
    )
    return float(d0), float(s02)


@dataclass
class ModeratedTResult:
    rows: list[TopTableRow]
    d0: float
    s0_sq: float

    def top(self, n: int = 10) -> list[TopTableRow]:
        return self.rows[:n]

    def significant(self, fdr: float = 0.05) -> list[TopTableRow]:
        return [r for r in self.rows if r.adj_p_value <= fdr]

    def as_tsv(self, n: int | None = None) -> str:
        rows = self.rows if n is None else self.rows[:n]
        return "\n".join([TOP_TABLE_HEADER] + [r.as_tsv() for r in rows]) + "\n"


def moderated_t_test(
    values: np.ndarray,
    group_mask: np.ndarray,
    names: list[str] | None = None,
) -> ModeratedTResult:
    """Two-group moderated t-test on a log2 (probes × samples) matrix.

    ``group_mask`` is True for group-2 samples; logFC is group2 - group1.
    """
    m = np.asarray(values, dtype=float)
    mask = np.asarray(group_mask, dtype=bool)
    n2 = int(mask.sum())
    n1 = int((~mask).sum())
    if n1 < 2 or n2 < 2:
        raise ValueError("need at least two samples in each group")
    if names is None:
        names = [f"row_{i}" for i in range(m.shape[0])]
    g1, g2 = m[:, ~mask], m[:, mask]
    mean1, mean2 = g1.mean(axis=1), g2.mean(axis=1)
    log_fc = mean2 - mean1
    df = n1 + n2 - 2
    pooled_var = (
        g1.var(axis=1, ddof=1) * (n1 - 1) + g2.var(axis=1, ddof=1) * (n2 - 1)
    ) / df
    d0, s02 = _moment_match_prior(pooled_var, df)
    if np.isinf(d0):
        post_var = np.full_like(pooled_var, s02)
        df_total = np.inf
    else:
        post_var = (d0 * s02 + df * pooled_var) / (d0 + df)
        df_total = d0 + df
    se = np.sqrt(post_var * (1.0 / n1 + 1.0 / n2))
    t = log_fc / se
    if np.isinf(df_total):
        p = 2.0 * stats.norm.sf(np.abs(t))
    else:
        p = 2.0 * stats.t.sf(np.abs(t), df_total)
    adj = benjamini_hochberg(p)
    ave = m.mean(axis=1)
    rows = [
        TopTableRow(
            name=names[i],
            log_fc=float(log_fc[i]),
            mean_expr=float(ave[i]),
            t_stat=float(t[i]),
            p_value=float(p[i]),
            adj_p_value=float(adj[i]),
        )
        for i in range(m.shape[0])
    ]
    rows.sort(key=lambda r: r.p_value)
    return ModeratedTResult(rows=rows, d0=d0, s0_sq=s02)


def student_t_test(
    values: np.ndarray, group_mask: np.ndarray, names: list[str] | None = None
) -> ModeratedTResult:
    """Plain (unmoderated) Welch t-test, for the matrixTTest tool."""
    m = np.asarray(values, dtype=float)
    mask = np.asarray(group_mask, dtype=bool)
    if names is None:
        names = [f"row_{i}" for i in range(m.shape[0])]
    g1, g2 = m[:, ~mask], m[:, mask]
    t, p = stats.ttest_ind(g2, g1, axis=1, equal_var=False)
    adj = benjamini_hochberg(p)
    log_fc = g2.mean(axis=1) - g1.mean(axis=1)
    ave = m.mean(axis=1)
    rows = [
        TopTableRow(names[i], float(log_fc[i]), float(ave[i]), float(t[i]),
                    float(p[i]), float(adj[i]))
        for i in range(m.shape[0])
    ]
    rows.sort(key=lambda r: r.p_value)
    return ModeratedTResult(rows=rows, d0=0.0, s0_sq=0.0)


def one_way_anova(
    values: np.ndarray, groups: list[str], names: list[str] | None = None
) -> list[tuple[str, float, float, float]]:
    """Per-row one-way ANOVA across >= 2 groups.

    Returns rows of (name, F, p, adj_p) sorted by p.
    """
    m = np.asarray(values, dtype=float)
    labels = list(dict.fromkeys(groups))
    if len(labels) < 2:
        raise ValueError("ANOVA needs at least two groups")
    masks = [np.array([g == lab for g in groups]) for lab in labels]
    if any(mask.sum() < 2 for mask in masks):
        raise ValueError("each group needs at least two samples")
    samples = [m[:, mask] for mask in masks]
    f, p = stats.f_oneway(*samples, axis=1)
    adj = benjamini_hochberg(p)
    if names is None:
        names = [f"row_{i}" for i in range(m.shape[0])]
    rows = [
        (names[i], float(f[i]), float(p[i]), float(adj[i])) for i in range(m.shape[0])
    ]
    rows.sort(key=lambda r: r[2])
    return rows


def fold_change(
    values: np.ndarray, group_mask: np.ndarray, names: list[str] | None = None
) -> list[tuple[str, float]]:
    """Per-row log2 fold change (group2 - group1), sorted by |FC| desc."""
    m = np.asarray(values, dtype=float)
    mask = np.asarray(group_mask, dtype=bool)
    fc = m[:, mask].mean(axis=1) - m[:, ~mask].mean(axis=1)
    if names is None:
        names = [f"row_{i}" for i in range(m.shape[0])]
    rows = [(names[i], float(fc[i])) for i in range(m.shape[0])]
    rows.sort(key=lambda r: -abs(r[1]))
    return rows
