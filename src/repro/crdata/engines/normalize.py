"""Normalization: the RMA-style pipeline behind the Affy tools.

Implements the standard steps on probe intensity matrices:

* background correction (shifted-log stabilisation),
* quantile normalization (Bolstad et al. 2003) — every array gets the
  same empirical distribution,
* log2 transform and median-polish summarisation,
* library-size (CPM) normalization for count data.

All operations are vectorised over (probes × samples) matrices.
"""

from __future__ import annotations

import numpy as np


def background_correct(intensities: np.ndarray, offset: float = 16.0) -> np.ndarray:
    """Shifted-log background stabilisation of raw intensities."""
    if np.any(intensities < 0):
        raise ValueError("intensities must be non-negative")
    return intensities + offset


def quantile_normalize(matrix: np.ndarray) -> np.ndarray:
    """Force every column to the mean empirical distribution.

    Classic Bolstad quantile normalization: sort each column, average
    across columns rank-wise, then map values back through each column's
    rank order.  Ties inherit the value of their rank position.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ValueError("matrix must be 2-D")
    order = np.argsort(m, axis=0, kind="stable")
    ranks = np.empty_like(order)
    rows = np.arange(m.shape[0])[:, None]
    np.put_along_axis(ranks, order, rows, axis=0)
    sorted_vals = np.take_along_axis(m, order, axis=0)
    mean_dist = sorted_vals.mean(axis=1)
    return mean_dist[ranks]


def log2_transform(matrix: np.ndarray) -> np.ndarray:
    if np.any(matrix <= 0):
        raise ValueError("log2 requires positive values")
    return np.log2(matrix)


def median_polish(matrix: np.ndarray, max_iter: int = 10, tol: float = 1e-4):
    """Tukey median polish: decompose into overall + row + column effects.

    Returns ``(overall, row_effects, col_effects, residuals)``.  RMA uses
    the column effects as per-sample probe-set summaries.
    """
    resid = np.asarray(matrix, dtype=float).copy()
    overall = 0.0
    row_eff = np.zeros(resid.shape[0])
    col_eff = np.zeros(resid.shape[1])
    for _ in range(max_iter):
        row_med = np.median(resid, axis=1)
        resid -= row_med[:, None]
        row_eff += row_med
        col_med_of_row = np.median(row_eff)
        row_eff -= col_med_of_row
        overall += col_med_of_row

        col_med = np.median(resid, axis=0)
        resid -= col_med[None, :]
        col_eff += col_med
        row_med_of_col = np.median(col_eff)
        col_eff -= row_med_of_col
        overall += row_med_of_col
        if np.abs(row_med).max(initial=0.0) < tol and np.abs(col_med).max(initial=0.0) < tol:
            break
    return overall, row_eff, col_eff, resid


def rma(intensities: np.ndarray) -> np.ndarray:
    """RMA-style normalization of raw probe intensities.

    background-correct -> quantile-normalize -> log2.  Probe-to-probeset
    summarisation is identity here because the synthetic arrays are
    generated at probe-set resolution.
    """
    return log2_transform(quantile_normalize(background_correct(intensities)))


def cpm(counts: np.ndarray, log: bool = False, prior: float = 0.5) -> np.ndarray:
    """Counts-per-million library-size normalization."""
    counts = np.asarray(counts, dtype=float)
    libsize = counts.sum(axis=0, keepdims=True)
    if np.any(libsize == 0):
        raise ValueError("a sample has zero total counts")
    out = (counts + (prior if log else 0.0)) / (libsize + (2 * prior if log else 0.0)) * 1e6
    return np.log2(out) if log else out


def zscore(matrix: np.ndarray, axis: int = 1) -> np.ndarray:
    """Standardise along ``axis`` (default: per probe across samples)."""
    m = np.asarray(matrix, dtype=float)
    mean = m.mean(axis=axis, keepdims=True)
    sd = m.std(axis=axis, ddof=1, keepdims=True)
    sd[sd == 0] = 1.0
    return (m - mean) / sd
