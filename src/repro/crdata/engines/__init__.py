"""Statistical engines backing the 35 CRData tools."""

from . import classify, clustering, diffexpr, normalize, qc, rnaseq, survival

__all__ = [
    "classify",
    "clustering",
    "diffexpr",
    "normalize",
    "qc",
    "rnaseq",
    "survival",
]
