"""Survival analysis: Kaplan-Meier estimation and the log-rank test.

CRData's cardiovascular tool set includes survival analyses; this engine
backs ``survivalKaplanMeier.R``.  Input is a clinical table of
(time, event, group) rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


class SurvivalError(Exception):
    pass


@dataclass
class KMCurve:
    group: str
    times: np.ndarray          # event times (ascending)
    survival: np.ndarray       # S(t) after each event time
    at_risk: np.ndarray
    events: np.ndarray
    median_survival: float | None

    def as_tsv(self) -> str:
        lines = [f"# group: {self.group}", "time\tn_risk\tn_event\tsurvival"]
        for t, r, d, s in zip(self.times, self.at_risk, self.events, self.survival):
            lines.append(f"{t:g}\t{int(r)}\t{int(d)}\t{s:.4f}")
        return "\n".join(lines) + "\n"


def kaplan_meier(times: np.ndarray, events: np.ndarray, group: str = "all") -> KMCurve:
    """Kaplan-Meier product-limit estimator.

    ``events`` is 1 for an observed event, 0 for censoring.
    """
    t = np.asarray(times, dtype=float)
    e = np.asarray(events, dtype=int)
    if t.size == 0 or t.shape != e.shape:
        raise SurvivalError("times and events must be same-length non-empty arrays")
    if np.any(t < 0):
        raise SurvivalError("negative survival time")
    if not set(np.unique(e)) <= {0, 1}:
        raise SurvivalError("events must be 0/1")
    order = np.argsort(t, kind="stable")
    t, e = t[order], e[order]
    event_times = np.unique(t[e == 1])
    n = t.size
    at_risk, deaths, surv = [], [], []
    s = 1.0
    for et in event_times:
        r = int((t >= et).sum())
        d = int(((t == et) & (e == 1)).sum())
        s *= 1.0 - d / r
        at_risk.append(r)
        deaths.append(d)
        surv.append(s)
    surv_arr = np.array(surv)
    median = None
    below = np.where(surv_arr <= 0.5)[0]
    if below.size:
        median = float(event_times[below[0]])
    return KMCurve(
        group=group,
        times=event_times,
        survival=surv_arr,
        at_risk=np.array(at_risk),
        events=np.array(deaths),
        median_survival=median,
    )


def logrank_test(
    times: np.ndarray,
    events: np.ndarray,
    groups: list[str],
) -> tuple[float, float]:
    """Two-group log-rank test; returns (chi2, p)."""
    t = np.asarray(times, dtype=float)
    e = np.asarray(events, dtype=int)
    g = np.asarray(groups)
    labels = list(dict.fromkeys(groups))
    if len(labels) != 2:
        raise SurvivalError("log-rank test implemented for exactly two groups")
    mask2 = g == labels[1]
    event_times = np.unique(t[e == 1])
    observed2 = 0.0
    expected2 = 0.0
    var2 = 0.0
    for et in event_times:
        at_risk = t >= et
        n = int(at_risk.sum())
        n2 = int((at_risk & mask2).sum())
        d = int(((t == et) & (e == 1)).sum())
        d2 = int(((t == et) & (e == 1) & mask2).sum())
        observed2 += d2
        expected2 += d * n2 / n
        if n > 1:
            var2 += d * (n2 / n) * (1 - n2 / n) * (n - d) / (n - 1)
    if var2 == 0:
        return 0.0, 1.0
    chi2 = (observed2 - expected2) ** 2 / var2
    p = float(stats.chi2.sf(chi2, df=1))
    return float(chi2), p


def parse_clinical_table(data: bytes) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Parse a TSV of ``time<TAB>event<TAB>group`` rows (with header)."""
    lines = [ln for ln in data.decode().splitlines() if ln.strip()]
    if not lines or not lines[0].lower().startswith("time"):
        raise SurvivalError("clinical table needs a 'time\\tevent\\tgroup' header")
    times, events, groups = [], [], []
    for ln in lines[1:]:
        parts = ln.split("\t")
        if len(parts) != 3:
            raise SurvivalError(f"bad clinical row: {ln!r}")
        times.append(float(parts[0]))
        events.append(int(parts[1]))
        groups.append(parts[2])
    return np.array(times), np.array(events), groups
