"""Classification: the engine behind ``affyClassify.R``.

"The affyClassify.R tool conducts statistical classification of
affymetrix CEL Files into groups" (Sec. IV-B).  Implements a nearest
(shrunken-free) centroid classifier and Fisher linear discriminant
analysis on (probes × samples) matrices, plus leave-one-out
cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ClassifyError(Exception):
    pass


@dataclass
class ClassifierResult:
    predicted: list[str]
    actual: list[str]
    accuracy: float
    confusion: dict[tuple[str, str], int]

    def confusion_tsv(self) -> str:
        labels = sorted({a for a, _ in self.confusion} | {b for _, b in self.confusion})
        lines = ["actual\\predicted\t" + "\t".join(labels)]
        for a in labels:
            lines.append(
                a + "\t" + "\t".join(str(self.confusion.get((a, p), 0)) for p in labels)
            )
        return "\n".join(lines) + "\n"


def _check(matrix: np.ndarray, groups: list[str]) -> tuple[np.ndarray, list[str]]:
    m = np.asarray(matrix, dtype=float)
    if m.shape[1] != len(groups):
        raise ClassifyError("one group label per sample required")
    labels = list(dict.fromkeys(groups))
    if len(labels) < 2:
        raise ClassifyError("need at least two classes")
    for lab in labels:
        if groups.count(lab) < 2:
            raise ClassifyError(f"class {lab!r} needs at least two samples")
    return m, labels


def nearest_centroid_fit(matrix: np.ndarray, groups: list[str]):
    """Fit: per-class centroid in expression space.  Returns a predictor."""
    m, labels = _check(matrix, groups)
    centroids = {
        lab: m[:, [g == lab for g in groups]].mean(axis=1) for lab in labels
    }

    def predict(sample: np.ndarray) -> str:
        dists = {
            lab: float(np.linalg.norm(sample - c)) for lab, c in centroids.items()
        }
        return min(dists, key=dists.get)

    return predict


def lda_fit(matrix: np.ndarray, groups: list[str], shrinkage: float = 0.1):
    """Fisher LDA with diagonal-shrunk pooled covariance (high-dim safe)."""
    m, labels = _check(matrix, groups)
    n_features = m.shape[0]
    means = {}
    pooled = np.zeros((n_features,))
    total = 0
    for lab in labels:
        cols = m[:, [g == lab for g in groups]]
        means[lab] = cols.mean(axis=1)
        pooled += cols.var(axis=1, ddof=1) * (cols.shape[1] - 1)
        total += cols.shape[1] - 1
    pooled /= max(1, total)
    pooled = (1 - shrinkage) * pooled + shrinkage * pooled.mean()
    pooled = np.maximum(pooled, 1e-12)
    priors = {lab: groups.count(lab) / len(groups) for lab in labels}

    def predict(sample: np.ndarray) -> str:
        scores = {}
        for lab in labels:
            diff = sample - means[lab]
            scores[lab] = -0.5 * float((diff * diff / pooled).sum()) + np.log(
                priors[lab]
            )
        return max(scores, key=scores.get)

    return predict


def cross_validate(
    matrix: np.ndarray,
    groups: list[str],
    method: str = "centroid",
) -> ClassifierResult:
    """Leave-one-out cross-validation accuracy."""
    m, _labels = _check(matrix, groups)
    fit = {"centroid": nearest_centroid_fit, "lda": lda_fit}.get(method)
    if fit is None:
        raise ClassifyError(f"unknown method {method!r}")
    n = m.shape[1]
    predicted: list[str] = []
    for held in range(n):
        keep = [i for i in range(n) if i != held]
        train_groups = [groups[i] for i in keep]
        # skip folds that would leave a class with < 2 samples
        try:
            predictor = fit(m[:, keep], train_groups)
        except ClassifyError:
            predictor = fit(m, groups)  # degenerate fold: train on all
        predicted.append(predictor(m[:, held]))
    correct = sum(p == a for p, a in zip(predicted, groups))
    confusion: dict[tuple[str, str], int] = {}
    for a, p in zip(groups, predicted):
        confusion[(a, p)] = confusion.get((a, p), 0) + 1
    return ClassifierResult(
        predicted=predicted,
        actual=list(groups),
        accuracy=correct / n,
        confusion=confusion,
    )
