"""Clustering engines: hierarchical (heatmap ordering) and k-means.

Backs ``heatmap_plot_demo.R`` ("performs hierarchical clustering by genes
or samples, and then plots a heatmap", Sec. IV-B) and the clustering
tools.  Uses SciPy's linkage on correlation or Euclidean distances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import pdist


@dataclass
class HierarchicalResult:
    order: list[int]              # leaf order for display
    labels: list[str]
    linkage: np.ndarray
    cluster_assignments: np.ndarray

    def ordered_labels(self) -> list[str]:
        return [self.labels[i] for i in self.order]


def hierarchical_cluster(
    matrix: np.ndarray,
    labels: list[str] | None = None,
    axis: str = "samples",
    metric: str = "correlation",
    method: str = "average",
    n_clusters: int = 2,
) -> HierarchicalResult:
    """Cluster rows ("genes") or columns ("samples") of a matrix."""
    m = np.asarray(matrix, dtype=float)
    if axis == "samples":
        data = m.T
    elif axis == "genes":
        data = m
    else:
        raise ValueError("axis must be 'samples' or 'genes'")
    if data.shape[0] < 2:
        raise ValueError("need at least two observations to cluster")
    if labels is None:
        labels = [f"{axis[:-1]}_{i}" for i in range(data.shape[0])]
    if len(labels) != data.shape[0]:
        raise ValueError("labels length mismatch")
    if metric == "correlation":
        # guard constant rows, which make correlation distance undefined
        sd = data.std(axis=1)
        safe = data.copy()
        safe[sd == 0] += np.random.default_rng(0).normal(0, 1e-9, safe.shape[1])
        dists = pdist(safe, metric="correlation")
    else:
        dists = pdist(data, metric=metric)
    link = hierarchy.linkage(dists, method=method)
    order = hierarchy.leaves_list(link).tolist()
    assign = hierarchy.fcluster(link, t=n_clusters, criterion="maxclust")
    return HierarchicalResult(
        order=order, labels=list(labels), linkage=link, cluster_assignments=assign
    )


@dataclass
class KMeansResult:
    assignments: np.ndarray
    centroids: np.ndarray
    inertia: float
    n_iter: int


def kmeans(
    matrix: np.ndarray, k: int, seed: int = 0, max_iter: int = 100
) -> KMeansResult:
    """Plain Lloyd's k-means on rows, vectorised (no scikit-learn offline)."""
    x = np.asarray(matrix, dtype=float)
    n = x.shape[0]
    if not (1 <= k <= n):
        raise ValueError(f"k must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    centroids = x[rng.choice(n, size=k, replace=False)].copy()
    assignments = np.zeros(n, dtype=int)
    for it in range(1, max_iter + 1):
        d2 = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assign = d2.argmin(axis=1)
        if it > 1 and np.array_equal(new_assign, assignments):
            break
        assignments = new_assign
        for j in range(k):
            members = x[assignments == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the farthest point
                centroids[j] = x[d2.min(axis=1).argmax()]
    inertia = float(
        ((x - centroids[assignments]) ** 2).sum()
    )
    return KMeansResult(
        assignments=assignments, centroids=centroids, inertia=inertia, n_iter=it
    )


def correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """Sample-by-sample Pearson correlation of a (probes × samples) matrix."""
    m = np.asarray(matrix, dtype=float)
    if m.shape[1] < 2:
        raise ValueError("need at least two samples")
    return np.corrcoef(m.T)
