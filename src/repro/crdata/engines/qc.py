"""Quality control and dimensionality reduction engines.

Backs affyQualityControl / affyPCA / density / boxplot / MA-plot tools.
The PCA uses the economy SVD (``full_matrices=False``) — the optimisation
the scientific-python guide singles out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sstats


@dataclass
class ArrayQC:
    sample: str
    median: float
    iqr: float
    mad: float
    dynamic_range: float
    outlier: bool

    def as_tsv(self) -> str:
        return (
            f"{self.sample}\t{self.median:.4f}\t{self.iqr:.4f}"
            f"\t{self.mad:.4f}\t{self.dynamic_range:.4f}\t{int(self.outlier)}"
        )


QC_HEADER = "sample\tmedian\tIQR\tMAD\tdynamic_range\toutlier"


def array_qc(matrix: np.ndarray, sample_names: list[str]) -> list[ArrayQC]:
    """Per-array robust summary stats; arrays whose median deviates from
    the cohort by > 3 cohort-MADs are flagged as outliers."""
    m = np.asarray(matrix, dtype=float)
    if m.shape[1] != len(sample_names):
        raise ValueError("one name per column required")
    medians = np.median(m, axis=0)
    cohort_med = float(np.median(medians))
    cohort_mad = float(sstats.median_abs_deviation(medians)) or 1e-9
    out = []
    for j, name in enumerate(sample_names):
        col = m[:, j]
        q1, q3 = np.percentile(col, [25, 75])
        out.append(
            ArrayQC(
                sample=name,
                median=float(medians[j]),
                iqr=float(q3 - q1),
                mad=float(sstats.median_abs_deviation(col)),
                dynamic_range=float(col.max() - col.min()),
                outlier=bool(abs(medians[j] - cohort_med) > 3 * cohort_mad),
            )
        )
    return out


@dataclass
class PCAResult:
    scores: np.ndarray              # (samples × components)
    explained_variance_ratio: np.ndarray
    components: np.ndarray          # (components × probes)

    def scores_tsv(self, sample_names: list[str], n: int = 2) -> str:
        lines = ["sample\t" + "\t".join(f"PC{i+1}" for i in range(n))]
        for name, row in zip(sample_names, self.scores[:, :n]):
            lines.append(name + "\t" + "\t".join(f"{v:.4f}" for v in row))
        return "\n".join(lines) + "\n"


def pca(matrix: np.ndarray, n_components: int = 2) -> PCAResult:
    """PCA of samples in probe space via economy SVD."""
    m = np.asarray(matrix, dtype=float)
    x = m.T - m.T.mean(axis=0, keepdims=True)   # samples × probes, centred
    n_components = min(n_components, min(x.shape))
    u, s, vt = np.linalg.svd(x, full_matrices=False)
    scores = u * s
    var = s**2 / max(1, x.shape[0] - 1)
    ratio = var / var.sum() if var.sum() else var
    return PCAResult(
        scores=scores[:, :n_components],
        explained_variance_ratio=ratio[:n_components],
        components=vt[:n_components],
    )


def density_summary(matrix: np.ndarray, n_points: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample intensity histograms on a shared grid (density plot)."""
    m = np.asarray(matrix, dtype=float)
    lo, hi = float(m.min()), float(m.max())
    edges = np.linspace(lo, hi, n_points + 1)
    dens = np.stack(
        [np.histogram(m[:, j], bins=edges, density=True)[0] for j in range(m.shape[1])]
    )
    return dens, edges


def boxplot_summary(matrix: np.ndarray) -> np.ndarray:
    """Five-number summaries per column: (5 × samples)."""
    m = np.asarray(matrix, dtype=float)
    return np.percentile(m, [0, 25, 50, 75, 100], axis=0)


def ma_values(matrix: np.ndarray, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
    """MA-plot coordinates between two arrays of a log2 matrix."""
    m = np.asarray(matrix, dtype=float)
    if not (0 <= i < m.shape[1] and 0 <= j < m.shape[1]):
        raise ValueError("array index out of range")
    if i == j:
        raise ValueError("MA plot needs two distinct arrays")
    a = 0.5 * (m[:, i] + m[:, j])
    diff = m[:, i] - m[:, j]
    return diff, a


def variance_filter(
    matrix: np.ndarray, names: list[str], top_n: int | None = None, min_var: float = 0.0
) -> tuple[np.ndarray, list[str]]:
    """Keep the most variable probes (standard pre-filtering)."""
    m = np.asarray(matrix, dtype=float)
    var = m.var(axis=1, ddof=1)
    keep = var >= min_var
    idx = np.where(keep)[0]
    if top_n is not None:
        idx = idx[np.argsort(var[idx])[::-1][:top_n]]
        idx = np.sort(idx)
    return m[idx], [names[i] for i in idx]


def correlation_test(x: np.ndarray, y: np.ndarray, method: str = "pearson"):
    """Correlation between two vectors; returns (r, p)."""
    x, y = np.asarray(x, float), np.asarray(y, float)
    if x.shape != y.shape or x.size < 3:
        raise ValueError("x and y must be same-length vectors of size >= 3")
    if method == "pearson":
        r, p = sstats.pearsonr(x, y)
    elif method == "spearman":
        r, p = sstats.spearmanr(x, y)
    else:
        raise ValueError(f"unknown method {method!r}")
    return float(r), float(p)
