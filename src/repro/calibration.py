"""Calibration constants tying the simulation to the paper's reported numbers.

Every constant that exists only to make the simulated testbed land near the
numbers reported in the paper lives here, with the paper anchor it serves.
The benchmarks assert *shape* (orderings, ratios, crossovers), not exact
equality; EXPERIMENTS.md records paper-vs-measured values.

Paper anchors (Liu et al., SC Companion 2012):

* Use case (Sec. V-A): steps 3+4 of the cardiovascular workflow take
  10.7 min on a *small* cluster and 6.9 min after `gp-instance-update`
  adds one c1.medium worker.
* Fig. 10: execution time of steps 3+4 per instance type —
  small 10.7 min, medium 6.9 min, large 5.4 min, extra-large 4.6 min;
  deployment time — small 8.8 min, medium 7.2 min, extra-large 4.9 min;
  cost — 0.007 USD (small) rising to 0.024 USD (extra-large), roughly
  doubling per size step.
* Fig. 11: laptop -> Galaxy-server (c1.medium) average transfer rate:
  Globus Transfer 1.8 -> 37 Mbit/s over the file-size range, FTP
  0.2 -> 5.9 Mbit/s, HTTP below 0.03 Mbit/s with a hard 2 GB upload cap.
"""

from __future__ import annotations

MINUTE = 60.0
MB = 1024 * 1024
GB = 1024 * MB

# ---------------------------------------------------------------------------
# Instance performance factors (Fig. 10 execution times)
#
# The CRData R jobs are dominated by single-threaded statistics.  We model
# each job's wall time as
#     T = T_FIXED + W / cpu_factor
# and fit the factors to the paper's four step-3+4 anchors.  Steps 3 and 4
# are two differential-expression jobs (10.7 MB and 190.3 MB archives), so
# with a 75 s fixed overhead per job the anchors solve to
#   total fixed = 150 s, total work W = 10.7*60 - 150 = 492 small-seconds:
#   small : 150 + 492/1.00 = 642 s = 10.7 min  (anchor)
#   medium: 150 + 492/1.86 = 414 s =  6.9 min  (anchor)
#   large : 150 + 492/2.83 = 324 s =  5.4 min  (anchor)
#   xlarge: 150 + 492/3.90 = 276 s =  4.6 min  (anchor)
# ---------------------------------------------------------------------------

#: Non-scalable overhead of one Galaxy/Condor job round trip (seconds),
#: split into pre-dispatch (input staging, job script creation) and
#: post-completion (output collection, history import) parts.
JOB_PREP_OVERHEAD_S = 45.0
JOB_FINALIZE_OVERHEAD_S = 30.0
JOB_FIXED_OVERHEAD_S = JOB_PREP_OVERHEAD_S + JOB_FINALIZE_OVERHEAD_S

#: Total compute of use-case steps 3+4 in m1.small-seconds (both archives).
USECASE_STEPS34_CPU_WORK = 492.0

#: The differential-expression tool's CPU cost per MB of CEL archive:
#: 492 small-seconds over 10.7 MB + 190.3 MB = 201 MB of input.
AFFY_CPU_SECONDS_PER_MB = USECASE_STEPS34_CPU_WORK / 201.0

# ---------------------------------------------------------------------------
# CRData work-model coefficients (m1.small-seconds)
#
# The scalar per-job models and their vectorized batch variants in
# ``repro.crdata.catalog`` — and the closed-form estimator in
# ``repro.cloud.estimator`` — all read these, so the three code paths
# cannot drift apart.  ``*_CPU_BASE_S`` is the fixed R-session cost,
# ``*_CPU_S_PER_MB`` scales with total input volume, ``*_IO_S`` is the
# (size-independent) staging I/O cost.
# ---------------------------------------------------------------------------

#: Constant per-job CPU cost of the heavy CEL tools on top of the per-MB
#: term (R startup + library load).
AFFY_FIXED_CPU_S = 4.0

MATRIX_CPU_BASE_S = 3.0
MATRIX_CPU_S_PER_MB = 0.4
MATRIX_IO_S = 0.2

SEQ_CPU_BASE_S = 6.0
SEQ_CPU_S_PER_MB = 1.2
SEQ_IO_S = 0.5

PLOT_CPU_BASE_S = 2.0
PLOT_CPU_S_PER_MB = 0.15
PLOT_IO_S = 0.1

# Relative speed factors fit to the Fig. 10 anchors (m1.small == 1.0).
CPU_FACTORS = {
    "t1.micro": 0.45,
    "m1.small": 1.0,
    "c1.medium": 1.86,
    "m1.large": 2.83,
    "m1.xlarge": 3.90,
}

# ---------------------------------------------------------------------------
# Deployment model (Fig. 10 deployment times)
#
#     deploy = BOOT + converge_io / io_factor + converge_cpu / cpu_factor
#
# Installation is I/O-bound (package downloads, untar, database init), so it
# scales with io_factor, which grows slower than cpu_factor.  Anchors:
# small 8.8 min, medium 7.2 min, xlarge 4.9 min (large is not reported; our
# model interpolates to ~6 min).
# ---------------------------------------------------------------------------

#: EC2 boot + GP orchestration latency before Chef starts (seconds).
BOOT_LATENCY_S = {
    "t1.micro": 95.0,
    "m1.small": 90.0,
    "c1.medium": 80.0,
    "m1.large": 75.0,
    "m1.xlarge": 70.0,
}

IO_FACTORS = {
    "t1.micro": 0.55,
    "m1.small": 1.0,
    "c1.medium": 1.24,
    "m1.large": 1.55,
    "m1.xlarge": 2.05,
}

#: Chef converge work for the full Galaxy+Globus+CRData run-list on a stock
#: AMI, split into an I/O-bound and a CPU-bound part (small-instance secs).
#: small: 90 + 370/1.0 + 68/1.0 = 528 s = 8.8 min  (anchor)
#: medium: 80 + 370/1.24 + 68/1.86 = 415 s ~ 6.9 min (paper: 7.2)
#: xlarge: 70 + 370/2.05 + 68/3.90 = 268 s ~ 4.5 min (paper: 4.9)
GALAXY_RUNLIST_IO_WORK = 370.0
GALAXY_RUNLIST_CPU_WORK = 68.0

#: Using the GP-provided pre-loaded AMI (Sec. III-A step 8) skips package
#: download/compile, cutting converge work by this factor.
AMI_PRELOAD_SPEEDUP = 4.0

# ---------------------------------------------------------------------------
# Price book (Fig. 10 costs)
#
# Under proportional (per-second) billing these prices reproduce the paper's
# reported step-3+4 costs: small 10.7 min * 0.04/h = 0.0071 USD; xlarge
# 4.6 min * 0.32/h = 0.0245 USD.  2012 on-demand list prices (us-east-1:
# m1.small 0.08, c1.medium 0.165, m1.large 0.32, m1.xlarge 0.64 USD/h) are
# kept as an alternative book for the billing ablation.
# ---------------------------------------------------------------------------

PAPER_PRICE_BOOK = {
    "t1.micro": 0.02,
    "m1.small": 0.04,
    "c1.medium": 0.08,
    "m1.large": 0.16,
    "m1.xlarge": 0.32,
}

EC2_2012_ONDEMAND_PRICE_BOOK = {
    "t1.micro": 0.02,
    "m1.small": 0.08,
    "c1.medium": 0.165,
    "m1.large": 0.32,
    "m1.xlarge": 0.64,
}

# ---------------------------------------------------------------------------
# Network / transfer model (Fig. 11)
#
# Laptop -> EC2 WAN path and per-protocol parameters.  The steady rate of a
# TCP stream is min(window/RTT, Mathis MSS/(RTT*sqrt(loss))*C, bottleneck).
# With RTT 50 ms and loss 1e-3 the Mathis limit is ~9 Mbit/s per stream;
# Globus Transfer with 4 tuned streams approaches the paper's 37 Mbit/s.
# Effective rate for a file adds per-transfer overhead, which dominates for
# small files (GO ~ 4 s -> 1.8 Mbit/s at 1 MB, as in the paper).
# ---------------------------------------------------------------------------

WAN_RTT_S = 0.05
WAN_LOSS = 1.0e-3
WAN_BOTTLENECK_BPS = 100e6  # 100 Mbit/s access link
TCP_MSS_BYTES = 1460
MATHIS_C = 1.22

#: Globus Transfer: GridFTP with tuned parallel streams and large windows.
GO_STREAMS = 4
GO_WINDOW_BYTES = 1 * MB
GO_OVERHEAD_S = 2.5           # per-task setup: job submit + endpoint checks
#: control-plane latency the hosted service adds on top (REST round trips)
GO_AUTOTUNE_MIN_STREAMS = 1   # small files are not striped

#: Galaxy FTP upload: stock single-stream TCP with a 36 KiB window (caps at
#: ~5.9 Mbit/s over this path, the paper's large-file FTP rate) plus
#: Galaxy's periodic import scan, a large constant latency that crushes
#: small-file rates to ~0.2 Mbit/s.
FTP_WINDOW_BYTES = 36 * 1024
FTP_OVERHEAD_S = 38.0

#: Galaxy HTTP form upload: the 2012 single-threaded CGI handler processed
#: the multipart payload synchronously in 64 KiB chunks; the paper measured
#: < 0.03 Mbit/s, which implies ~17 s of server-side handling per chunk.
#: Files over 2 GB are refused outright (paper Sec. IV-A).
HTTP_CHUNK_BYTES = 64 * 1024
HTTP_SECONDS_PER_CHUNK = 18.0
HTTP_OVERHEAD_S = 5.0
HTTP_MAX_BYTES = 2 * GB

#: File sizes plotted in Fig. 11 (bytes).
FIGURE11_FILE_SIZES = [1 * MB, 10 * MB, 100 * MB, 512 * MB, 1 * GB, 2 * GB]

# ---------------------------------------------------------------------------
# Shared-storage backends (Juve et al., "Data Sharing Options for
# Scientific Workflows on Amazon EC2")
#
# The NFS model charges job I/O inside the work model (the paper's
# configuration), so the alternative backends are expressed as explicit
# per-job stage-in/stage-out surcharges.  Constants are set to reproduce
# Juve's qualitative ordering on the use-case workload: object stores pay
# per-request latency and modest per-connection bandwidth (S3), parallel
# filesystems aggregate stripe-server bandwidth at a small metadata cost
# (GlusterFS/PVFS), and local-disk staging pays a GridFTP setup per file
# but streams at near-disk rate.
# ---------------------------------------------------------------------------

#: S3-style object store: REST round-trip per request (issued in waves of
#: ``STORAGE_OBJECT_PARALLEL`` concurrent connections).
STORAGE_OBJECT_REQUEST_S = 0.12
STORAGE_OBJECT_CONN_MBPS = 200.0
STORAGE_OBJECT_PARALLEL = 4

#: Striped parallel FS: per-file metadata operation + per-data-node stripe
#: bandwidth, aggregated up to the client NIC cap.
STORAGE_STRIPE_META_S = 0.003
STORAGE_STRIPE_NODE_MBPS = 600.0
STORAGE_STRIPE_CLIENT_MBPS = 900.0
STORAGE_STRIPE_DEFAULT_NODES = 2

#: Local-disk staging: one GridFTP control-channel setup per file, then a
#: single LAN stream.
STORAGE_LOCAL_SETUP_S = 0.05
STORAGE_LOCAL_STREAM_MBPS = 800.0

# ---------------------------------------------------------------------------
# Use-case datasets (Sec. V-A)
# ---------------------------------------------------------------------------

FOUR_CEL_ZIP_BYTES = int(10.7 * MB)      # fourCelFileSamples.zip
AFFY_CEL_ZIP_BYTES = int(190.3 * MB)     # affyCelFileSamples.zip
FOUR_CEL_N_ARRAYS = 4
AFFY_CEL_N_ARRAYS = 72

#: Condor negotiation cycle period (s); matches Condor's default order of
#: magnitude and bounds job-dispatch latency in the use case.
CONDOR_NEGOTIATION_INTERVAL_S = 20.0

# ---------------------------------------------------------------------------
# Provenance: the calibration surface as data
#
# A provenance bundle (see ``repro.provenance``) must pin the exact
# calibration a run was produced under, so a replay on drifted constants
# fails loudly instead of quietly reproducing different numbers.  The
# snapshot captures every UPPERCASE module constant; the digest is the
# identity replays compare against.
# ---------------------------------------------------------------------------


def snapshot() -> dict:
    """JSON-safe mapping of every named calibration constant above."""
    import sys

    out: dict = {}
    for name, value in sorted(vars(sys.modules[__name__]).items()):
        if not name.isupper():
            continue
        if isinstance(value, dict):
            out[name] = dict(value)
        elif isinstance(value, (list, tuple)):
            out[name] = list(value)
        elif isinstance(value, (bool, int, float, str)):
            out[name] = value
    return out


def digest() -> str:
    """SHA-256 over the canonical JSON form of :func:`snapshot`."""
    import hashlib
    import json

    doc = json.dumps(snapshot(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode()).hexdigest()
