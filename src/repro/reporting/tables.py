"""ASCII tables: the benchmarks print the paper's figures as rows/series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Fixed-width table with a box around it."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt(cells[0]))
    lines.append(sep)
    lines.extend(fmt(r) for r in cells[1:])
    lines.append(sep)
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str = "",
) -> str:
    """One row per x value, one column per named series (a figure's data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)


@dataclass
class Comparison:
    """Paper-vs-measured rows for EXPERIMENTS.md and benchmark output."""

    title: str
    rows: list[tuple[str, Any, Any]] = field(default_factory=list)

    def add(self, metric: str, paper: Any, measured: Any) -> None:
        self.rows.append((metric, paper, measured))

    def render(self) -> str:
        def _fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.3g}"
            return str(v) if v is not None else "-"

        return render_table(
            ["metric", "paper", "measured"],
            [(m, _fmt(p), _fmt(x)) for m, p, x in self.rows],
            title=self.title,
        )

    def ratios(self) -> dict[str, Optional[float]]:
        out = {}
        for metric, paper, measured in self.rows:
            try:
                out[metric] = float(measured) / float(paper)
            except (TypeError, ValueError, ZeroDivisionError):
                out[metric] = None
        return out
