"""Structured JSON divergence and counterfactual comparison rendering.

Two consumers share this module:

* ``gp-replay``'s verifier — when a replayed run's sim JSON is not
  byte-identical to the bundled original, :func:`first_divergence` walks
  both documents in deterministic order and names the first differing
  path, so the failure report says *where* reproduction broke instead of
  dumping two multi-kilobyte blobs;
* counterfactual replay — :func:`comparison_rows` /
  :func:`render_comparison` turn a baseline payload and a what-if payload
  into a per-metric delta table (makespans, costs, event counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .tables import render_table

__all__ = [
    "Divergence",
    "first_divergence",
    "render_divergence",
    "flatten_numeric",
    "comparison_rows",
    "render_comparison",
]


@dataclass(frozen=True)
class Divergence:
    """The first point where two JSON documents disagree."""

    path: str
    expected: Any
    actual: Any

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "expected": _describe(self.expected),
            "actual": _describe(self.actual),
        }


def _describe(value: Any, limit: int = 120) -> str:
    """Short, type-revealing rendering of one side of a divergence."""
    if isinstance(value, (dict, list)):
        text = f"<{type(value).__name__} of {len(value)} entries>"
    else:
        text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def first_divergence(expected: Any, actual: Any, path: str = "$") -> Optional[Divergence]:
    """Deterministic first difference between two JSON-safe documents.

    Dicts are walked in sorted key order (a missing key diverges at that
    key's path), lists by index; the first scalar mismatch wins.  Returns
    ``None`` when the documents are equal.
    """
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}"
            if key not in expected:
                return Divergence(sub, "<absent>", actual[key])
            if key not in actual:
                return Divergence(sub, expected[key], "<absent>")
            found = first_divergence(expected[key], actual[key], sub)
            if found is not None:
                return found
        return None
    if isinstance(expected, list) and isinstance(actual, list):
        for i in range(min(len(expected), len(actual))):
            found = first_divergence(expected[i], actual[i], f"{path}[{i}]")
            if found is not None:
                return found
        if len(expected) != len(actual):
            i = min(len(expected), len(actual))
            longer = expected if len(expected) > len(actual) else actual
            extra = longer[i]
            if longer is expected:
                return Divergence(f"{path}[{i}]", extra, "<absent>")
            return Divergence(f"{path}[{i}]", "<absent>", extra)
        return None
    # scalar (or type-mismatched) leaves; bool is not interchangeable
    # with int here because JSON round-trips preserve the distinction
    if type(expected) is not type(actual) and not (
        isinstance(expected, (int, float))
        and isinstance(actual, (int, float))
        and not isinstance(expected, bool)
        and not isinstance(actual, bool)
    ):
        return Divergence(path, expected, actual)
    if expected != actual:
        return Divergence(path, expected, actual)
    return None


def render_divergence(div: Divergence, title: str = "first divergence") -> str:
    return "\n".join(
        [
            f"{title}:",
            f"  path:     {div.path}",
            f"  expected: {_describe(div.expected)}",
            f"  actual:   {_describe(div.actual)}",
        ]
    )


# ---------------------------------------------------------------------------
# Counterfactual comparison
# ---------------------------------------------------------------------------


def flatten_numeric(doc: Any, prefix: str = "") -> dict[str, float]:
    """Flatten a payload to dotted-path -> numeric leaf (bools excluded)."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            sub = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(doc[key], sub))
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            out.update(flatten_numeric(item, f"{prefix}[{i}]"))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = float(doc)
    return out


#: payload keys worth showing even when unchanged — the makespan / cost /
#: event-count axes a counterfactual replay exists to compare (matched on
#: the final dotted-path component)
HEADLINE_KEYS = frozenset(
    {
        "sim_seconds",
        "deploy_sim_seconds",
        "events_processed",
        "exec_min",
        "deploy_min",
        "cost_usd",
        "cost_proportional_usd",
        "cost_hourly_usd",
        "sla_attainment",
        "makespan_p50_s",
        "makespan_p95_s",
        "baseline_min",
        "scaled_min",
    }
)


def comparison_rows(
    baseline: dict, replayed: dict, include_unchanged_headlines: bool = True
) -> list[dict]:
    """Per-metric deltas between a baseline payload and a what-if payload.

    Rows cover every numeric path that changed, plus (optionally) the
    headline metrics even when equal — an all-zero table is itself the
    result when a counterfactual knob provably does not matter.
    """
    base = flatten_numeric(baseline)
    new = flatten_numeric(replayed)
    rows: list[dict] = []
    for path in sorted(set(base) | set(new)):
        b, n = base.get(path), new.get(path)
        changed = b != n
        leaf = path.rsplit(".", 1)[-1]
        if not changed and not (include_unchanged_headlines and leaf in HEADLINE_KEYS):
            continue
        rows.append(
            {
                "metric": path,
                "baseline": b,
                "replayed": n,
                "delta": (n - b) if (b is not None and n is not None) else None,
                "pct": (
                    100.0 * (n - b) / b
                    if (b not in (None, 0.0) and n is not None)
                    else None
                ),
            }
        )
    return rows


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_comparison(rows: list[dict], title: str = "counterfactual comparison") -> str:
    if not rows:
        return "(no numeric metrics to compare)"
    return render_table(
        ["metric", "baseline", "replayed", "delta", "delta %"],
        [
            (
                r["metric"],
                _fmt(r["baseline"]),
                _fmt(r["replayed"]),
                _fmt(r["delta"]),
                "-" if r["pct"] is None else f"{r['pct']:+.1f}%",
            )
            for r in rows
        ],
        title=title,
    )
