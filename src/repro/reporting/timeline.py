"""Deployment timeline: a text Gantt chart from the simulation trace.

Renders what happened when during a GP deployment — instance boots and
Chef converges per host — which makes the Fig. 10 deployment-time
structure visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore import TraceLog


@dataclass
class Interval:
    label: str
    start: float
    end: float


def collect_intervals(trace: TraceLog) -> list[Interval]:
    """Boot and converge intervals from the standard trace events."""
    intervals: list[Interval] = []
    boot_starts: dict[str, float] = {}
    for rec in trace.records:
        if rec.source == "ec2" and rec.kind == "launch":
            boot_starts[rec.detail["instance"]] = rec.time
        elif rec.source == "ec2" and rec.kind == "running":
            iid = rec.detail["instance"]
            if iid in boot_starts:
                intervals.append(Interval(f"boot {iid}", boot_starts.pop(iid), rec.time))
        elif rec.source == "chef" and rec.kind == "converge-done":
            node = rec.detail["node"]
            duration = rec.detail["duration"]
            intervals.append(Interval(f"chef {node}", rec.time - duration, rec.time))
    return intervals


def render_timeline(trace: TraceLog, width: int = 50) -> str:
    """Gantt-style bars, one per interval, on a shared time axis."""
    intervals = collect_intervals(trace)
    if not intervals:
        return "(no deployment activity recorded)"
    t0 = min(iv.start for iv in intervals)
    t1 = max(iv.end for iv in intervals)
    span = max(1e-9, t1 - t0)
    label_w = max(len(iv.label) for iv in intervals)
    lines = [f"deployment timeline ({t1 - t0:.0f}s total)"]
    for iv in sorted(intervals, key=lambda i: (i.start, i.label)):
        lead = int((iv.start - t0) / span * width)
        length = max(1, int((iv.end - iv.start) / span * width))
        bar = " " * lead + "#" * min(length, width - lead)
        lines.append(
            f"{iv.label.ljust(label_w)} |{bar.ljust(width)}| "
            f"{iv.start - t0:6.0f}s..{iv.end - t0:6.0f}s"
        )
    return "\n".join(lines)
