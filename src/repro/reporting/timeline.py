"""Deployment timeline: a text Gantt chart from trace records or spans.

Renders what happened when during a GP deployment — instance boots,
Chef converges per host, and Globus Online transfer tasks — which makes
the Fig. 10 deployment-time structure visible at a glance.

Two input forms are accepted everywhere a trace is:

* a :class:`~repro.simcore.TraceLog` (the classic path, reconstructed
  from ``ec2``/``chef``/``globus`` records);
* anything :func:`repro.obs.export.as_docs` understands — an
  :class:`~repro.obs.ObsRecorder`, a :class:`~repro.obs.Capture`, or
  exported doc dicts — in which case intervals come straight from the
  recorded ``ec2.boot`` / ``chef.converge`` / ``go.task`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.export import as_docs
from ..simcore import TraceLog


@dataclass
class Interval:
    label: str
    start: float
    end: float

    @property
    def duration_s(self) -> float:
        return self.end - self.start


def collect_intervals(source: "TraceLog | object") -> list[Interval]:
    """Boot, converge, and transfer intervals from a trace or from spans."""
    if hasattr(source, "records"):
        return _intervals_from_trace(source)
    return _intervals_from_spans(source)


#: obs span name -> (label prefix, attribute naming the entity)
_SPAN_ROWS = {
    "ec2.boot": ("boot", "instance"),
    "chef.converge": ("chef", "node"),
    "go.task": ("go", "task"),
}


def _intervals_from_spans(source) -> list[Interval]:
    intervals: list[Interval] = []
    for doc in as_docs(source):
        for span in doc.get("spans", ()):
            row = _SPAN_ROWS.get(span["name"])
            if row is None or span.get("end") is None:
                continue
            prefix, key = row
            entity = (span.get("attrs") or {}).get(key, "?")
            intervals.append(
                Interval(f"{prefix} {entity}", float(span["start"]), float(span["end"]))
            )
    return intervals


def _intervals_from_trace(trace: TraceLog) -> list[Interval]:
    intervals: list[Interval] = []
    boot_starts: dict[str, float] = {}
    go_starts: dict[str, float] = {}
    trace_start = trace.records[0].time if trace.records else 0.0
    for rec in trace.records:
        if rec.source == "ec2" and rec.kind == "launch":
            boot_starts[rec.detail["instance"]] = rec.time
        elif rec.source == "ec2" and rec.kind == "running":
            iid = rec.detail["instance"]
            # A launch that predates the trace window still produces a
            # (clamped) boot bar rather than vanishing from the chart.
            start = boot_starts.pop(iid, trace_start)
            intervals.append(Interval(f"boot {iid}", min(start, rec.time), rec.time))
        elif rec.source == "chef" and rec.kind == "converge-done":
            node = rec.detail["node"]
            duration = rec.detail["duration"]
            intervals.append(Interval(f"chef {node}", rec.time - duration, rec.time))
        elif rec.source == "globus" and rec.kind == "task-submit":
            go_starts[rec.detail["task"]] = rec.time
        elif rec.source == "globus" and rec.kind == "task-done":
            task = rec.detail["task"]
            start = go_starts.pop(task, trace_start)
            intervals.append(Interval(f"go {task}", min(start, rec.time), rec.time))
    return intervals


def render_timeline(source: "TraceLog | object", width: int = 50) -> str:
    """Gantt-style bars, one per interval, on a shared time axis."""
    intervals = collect_intervals(source)
    if not intervals:
        return "(no deployment activity recorded)"
    t0 = min(iv.start for iv in intervals)
    t1 = max(iv.end for iv in intervals)
    span = max(1e-9, t1 - t0)
    label_w = max(len(iv.label) for iv in intervals)
    lines = [f"deployment timeline ({t1 - t0:.0f}s total)"]
    for iv in sorted(intervals, key=lambda i: (i.start, i.label)):
        lead = int((iv.start - t0) / span * width)
        length = max(1, int((iv.end - iv.start) / span * width))
        bar = " " * lead + "#" * min(length, width - lead)
        lines.append(
            f"{iv.label.ljust(label_w)} |{bar.ljust(width)}| "
            f"{iv.start - t0:6.0f}s..{iv.end - t0:6.0f}s"
        )
    return "\n".join(lines)
