"""Text rendering of critical-path attribution (the Fig. 10 view).

Consumes the ``.critpath.json`` document built by
:func:`repro.obs.critpath.critpath_doc` and renders the per-layer phase
breakdown the paper reports — boot / converge / transfer / queue /
execute seconds and their share of the critical path — plus, optionally,
the dominating chain segment by segment.
"""

from __future__ import annotations

from .tables import render_table

__all__ = ["critpath_rows", "render_critpath", "render_critpath_chain"]


def critpath_rows(doc: dict) -> list[dict]:
    """Layer attribution rows (layer, seconds, percent), largest first."""
    total = float(doc.get("critical_path_s") or 0.0)
    rows = []
    for layer, seconds in (doc.get("layers") or {}).items():
        rows.append(
            {
                "layer": layer,
                "seconds": seconds,
                "percent": 100.0 * seconds / total if total else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r["seconds"], r["layer"]))
    return rows


def render_critpath(doc: dict, title: str | None = None) -> str:
    """Per-layer critical-path attribution table for one critpath doc."""
    rows = critpath_rows(doc)
    if title is None:
        suite = doc.get("suite") or doc.get("label") or "run"
        title = f"critical-path attribution ({suite})"
    if not rows:
        return "(no critical path: nothing recorded)"
    body = [
        (r["layer"], f"{r['seconds']:.2f}", f"{r['percent']:.1f}%") for r in rows
    ]
    body.append(
        ("total", f"{float(doc.get('critical_path_s') or 0.0):.2f}", "100.0%")
    )
    return render_table(["layer", "seconds", "share"], body, title=title)


def render_critpath_chain(ctx_doc: dict, limit: int = 20) -> str:
    """The dominating chain of one context, earliest segment first.

    ``ctx_doc`` is one entry of a critpath doc's ``contexts`` list (or
    the output of :func:`repro.obs.critpath.critical_path`).  Long
    chains truncate to the ``limit`` largest segments, keeping time
    order and saying how much was elided.
    """
    segments = list(ctx_doc.get("segments") or [])
    if not segments:
        return "(no critical path: nothing recorded)"
    elided = 0.0
    if len(segments) > limit:
        keep = sorted(segments, key=lambda s: -s["duration_s"])[:limit]
        kept_ids = {id(s) for s in keep}
        elided = sum(s["duration_s"] for s in segments if id(s) not in kept_ids)
        segments = [s for s in segments if id(s) in kept_ids]
    body = [
        (
            f"{s['start']:.2f}",
            f"{s['duration_s']:.2f}",
            s["layer"],
            s["name"],
            s["track"],
        )
        for s in segments
    ]
    if elided:
        n_elided = len(ctx_doc["segments"]) - limit
        body.append(
            ("...", f"{elided:.2f}", "", f"({n_elided} smaller segments)", "")
        )
    label = ctx_doc.get("label") or "sim"
    return render_table(
        ["t (s)", "dur (s)", "layer", "span", "track"],
        body,
        title=f"critical path ({label}): {ctx_doc.get('makespan_s', 0.0):.2f}s makespan",
    )
