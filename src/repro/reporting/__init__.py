"""Plain-text reporting used by benchmarks and examples."""

from .tables import Comparison, render_series, render_table
from .timeline import collect_intervals, render_timeline

__all__ = [
    "Comparison",
    "collect_intervals",
    "render_series",
    "render_table",
    "render_timeline",
]
