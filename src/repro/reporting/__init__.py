"""Plain-text reporting used by benchmarks, replay, and examples."""

from .critpath import critpath_rows, render_critpath, render_critpath_chain
from .divergence import (
    Divergence,
    comparison_rows,
    first_divergence,
    flatten_numeric,
    render_comparison,
    render_divergence,
)
from .tables import Comparison, render_series, render_table
from .timeline import collect_intervals, render_timeline

__all__ = [
    "Comparison",
    "Divergence",
    "collect_intervals",
    "comparison_rows",
    "critpath_rows",
    "first_divergence",
    "flatten_numeric",
    "render_comparison",
    "render_critpath",
    "render_critpath_chain",
    "render_divergence",
    "render_series",
    "render_table",
    "render_timeline",
]
