"""Simulated NIS (Network Information Service): cluster-wide user directory.

GP "generates user accounts ... and sets up NIS to provide a robust shared
file system across nodes" (Sec. III-A).  Here NIS owns the authoritative
user/group maps; nodes *bind* to a domain and resolve users through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class NISError(Exception):
    pass


@dataclass
class NISUser:
    name: str
    uid: int
    home: str
    shell: str = "/bin/bash"
    groups: tuple[str, ...] = ()


@dataclass
class NISGroup:
    name: str
    gid: int
    members: set[str] = field(default_factory=set)


class NISDomain:
    """One NIS domain served by the simple-server node."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.users: dict[str, NISUser] = {}
        self.groups: dict[str, NISGroup] = {}
        self._next_uid = 1000
        self._next_gid = 1000
        self.add_group("users")

    def add_group(self, name: str) -> NISGroup:
        if name in self.groups:
            raise NISError(f"group {name!r} exists")
        group = NISGroup(name=name, gid=self._next_gid)
        self._next_gid += 1
        self.groups[name] = group
        return group

    def add_user(
        self, name: str, home: Optional[str] = None, groups: tuple[str, ...] = ("users",)
    ) -> NISUser:
        if name in self.users:
            raise NISError(f"user {name!r} exists")
        for g in groups:
            if g not in self.groups:
                raise NISError(f"no such group {g!r}")
        user = NISUser(
            name=name,
            uid=self._next_uid,
            home=home or f"/home/{name}",
            groups=tuple(groups),
        )
        self._next_uid += 1
        self.users[name] = user
        for g in groups:
            self.groups[g].members.add(name)
        return user

    def remove_user(self, name: str) -> None:
        user = self.users.pop(name, None)
        if user is None:
            raise NISError(f"no such user {name!r}")
        for g in user.groups:
            self.groups[g].members.discard(name)

    def lookup(self, name: str) -> NISUser:
        try:
            return self.users[name]
        except KeyError:
            raise NISError(f"no such user {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.users


class NISBinding:
    """A node's view of user accounts: local accounts shadow NIS."""

    def __init__(self, domain: Optional[NISDomain] = None) -> None:
        self.domain = domain
        self.local: dict[str, NISUser] = {}
        self._next_local_uid = 1

    def bind(self, domain: NISDomain) -> None:
        self.domain = domain

    def add_local(self, name: str, home: Optional[str] = None) -> NISUser:
        user = NISUser(name=name, uid=self._next_local_uid, home=home or f"/home/{name}")
        self._next_local_uid += 1
        self.local[name] = user
        return user

    def lookup(self, name: str) -> NISUser:
        if name in self.local:
            return self.local[name]
        if self.domain is not None and name in self.domain:
            return self.domain.lookup(name)
        raise NISError(f"unknown user {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except NISError:
            return False
