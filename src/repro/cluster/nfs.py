"""Simulated filesystem and NFS sharing.

:class:`SimFilesystem` is a hierarchical namespace of files that carry a
size, an owner, and optionally real bytes (small files — tool outputs,
configs — keep content; bulk data keeps only size + checksum).  An
:class:`NFSServer` exports a subtree of one filesystem; mounting it on a
node splices that subtree into the node's namespace, which is how every
Condor worker sees the Galaxy datasets (paper Fig. 2: the NFS node
"supplies a shared file system for all the other nodes").
"""

from __future__ import annotations

import hashlib
import posixpath
from dataclasses import dataclass
from typing import Iterator, Optional


class FilesystemError(Exception):
    pass


def _norm(path: str) -> str:
    if not path.startswith("/"):
        raise FilesystemError(f"path must be absolute: {path!r}")
    norm = posixpath.normpath(path)
    return norm


def _mount_rel(path: str, mount_point: str) -> Optional[str]:
    """Relative path of ``path`` under ``mount_point``, or ``None``.

    Both arguments must already be normalized absolute paths.  A mount
    at ``/`` covers everything; for any other mount point the match is a
    whole-component prefix (``/home`` covers ``/home/x`` but not
    ``/homes``).
    """
    if mount_point == "/":
        return path.lstrip("/")
    if path == mount_point:
        return ""
    if path.startswith(mount_point + "/"):
        return path[len(mount_point) + 1:]
    return None


def bulk_checksum(path: str, size: int, mtime: float) -> str:
    """Content token for a size-only (bulk) file.

    Two bulk files are only "the same bytes" if one was copied from the
    other (movers propagate the token via ``write(checksum=...)``).  The
    token is derived from the identity of the original write — path,
    declared size, and write time — so re-writing a same-size file mints
    a fresh token and ``sync_level="checksum"`` re-transfers it, unlike
    the old ``bulk:{size}`` scheme under which any two equal-size bulk
    files compared equal.
    """
    h = hashlib.sha256(f"{path}|{size}|{mtime!r}".encode()).hexdigest()[:24]
    return f"bulk:{h}"


@dataclass
class FileNode:
    """Metadata (and optionally content) of one file."""

    path: str
    size: int
    owner: str = "root"
    mtime: float = 0.0
    data: Optional[bytes] = None
    checksum: str = ""

    def read(self) -> bytes:
        if self.data is None:
            raise FilesystemError(
                f"{self.path} is a bulk (size-only) file with no stored bytes"
            )
        return self.data


class SimFilesystem:
    """One tree of directories and files."""

    def __init__(self, name: str = "fs") -> None:
        self.name = name
        self._dirs: set[str] = {"/"}
        self._files: dict[str, FileNode] = {}
        self._dir_owners: dict[str, str] = {"/": "root"}

    # -- directories ---------------------------------------------------------
    def mkdirs(self, path: str, owner: str = "root") -> None:
        """Create ``path`` and any missing parents, owned by ``owner``.

        Ownership is recorded only for directories this call creates;
        re-running over an existing tree never rewrites it (mkdir -p
        semantics: EEXIST is not an error and does not chown).
        """
        path = _norm(path)
        if path in self._files:
            raise FilesystemError(f"{path} exists as a file")
        parts = path.strip("/").split("/") if path != "/" else []
        cur = ""
        for part in parts:
            cur += "/" + part
            if cur in self._files:
                raise FilesystemError(f"{cur} exists as a file")
            if cur not in self._dirs:
                self._dirs.add(cur)
                self._dir_owners[cur] = owner

    def isdir(self, path: str) -> bool:
        return _norm(path) in self._dirs

    def dir_owner(self, path: str) -> str:
        """Owner recorded when the directory was created."""
        path = _norm(path)
        if path not in self._dirs:
            raise FilesystemError(f"no such directory: {path}")
        return self._dir_owners.get(path, "root")

    # -- files ----------------------------------------------------------------
    def write(
        self,
        path: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        owner: str = "root",
        mtime: float = 0.0,
        checksum: Optional[str] = None,
    ) -> FileNode:
        """Create or replace a file.

        Pass ``data`` for real content (size derived), ``size`` alone for
        bulk data tracked by metadata only, or both for a *bulk file with an
        embedded descriptor*: the declared size is what transfers and work
        models see, while ``data`` holds a small generative header (how the
        synthetic CEL/BAM archives carry semantics without gigabytes).

        ``checksum`` lets a data mover propagate the source file's content
        token to the copy it materialises; without it, content files hash
        their bytes and bulk files mint a fresh :func:`bulk_checksum`
        token, so an independently re-written file never compares equal to
        a stale copy under ``sync_level="checksum"``.
        """
        path = _norm(path)
        if path in self._dirs:
            raise FilesystemError(f"{path} is a directory")
        if data is None and size is None:
            raise FilesystemError("write needs data or size")
        self.mkdirs(posixpath.dirname(path) or "/")
        actual_size = int(size) if size is not None else len(data)  # type: ignore[arg-type]
        if checksum is None:
            checksum = (
                hashlib.sha256(data).hexdigest()
                if data is not None
                else bulk_checksum(path, actual_size, mtime)
            )
        node = FileNode(
            path=path, size=actual_size, owner=owner, mtime=mtime, data=data, checksum=checksum
        )
        self._files[path] = node
        return node

    def exists(self, path: str) -> bool:
        path = _norm(path)
        return path in self._files or path in self._dirs

    def isfile(self, path: str) -> bool:
        return _norm(path) in self._files

    def stat(self, path: str) -> FileNode:
        path = _norm(path)
        try:
            return self._files[path]
        except KeyError:
            raise FilesystemError(f"no such file: {path}") from None

    def read(self, path: str) -> bytes:
        return self.stat(path).read()

    def remove(self, path: str) -> None:
        path = _norm(path)
        if path in self._files:
            del self._files[path]
            return
        if path in self._dirs:
            children = [p for p in self._files if p.startswith(path + "/")]
            subdirs = [d for d in self._dirs if d != path and d.startswith(path + "/")]
            if children or subdirs:
                raise FilesystemError(f"directory not empty: {path}")
            self._dirs.discard(path)
            self._dir_owners.pop(path, None)
            return
        raise FilesystemError(f"no such path: {path}")

    def rename(self, src: str, dst: str) -> None:
        src, dst = _norm(src), _norm(dst)
        node = self.stat(src)
        if dst in self._dirs:
            raise FilesystemError(f"{dst} is a directory")
        # validate/create the destination parent *before* touching the
        # source, so a failed rename never loses data
        self.mkdirs(posixpath.dirname(dst) or "/")
        del self._files[src]
        node.path = dst
        self._files[dst] = node

    def listdir(self, path: str) -> list[str]:
        path = _norm(path)
        if path not in self._dirs:
            raise FilesystemError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/"
        names = set()
        for p in list(self._files) + list(self._dirs):
            if p != path and p.startswith(prefix):
                names.add(p[len(prefix):].split("/")[0])
        return sorted(names)

    def walk_files(self, root: str = "/") -> Iterator[FileNode]:
        root = _norm(root)
        prefix = root.rstrip("/") + "/" if root != "/" else "/"
        for p in sorted(self._files):
            if p == root or p.startswith(prefix):
                yield self._files[p]

    def total_size(self, root: str = "/") -> int:
        return sum(f.size for f in self.walk_files(root))


@dataclass
class NFSServer:
    """Exports a subtree of a filesystem to any number of mounts."""

    fs: SimFilesystem
    export: str = "/"
    hostname: str = "nfs"

    def __post_init__(self) -> None:
        self.fs.mkdirs(self.export)


@dataclass
class Mount:
    """One mount of an NFS export at a mount point in a node namespace."""

    server: NFSServer
    mount_point: str

    def translate(self, path: str) -> str:
        """Node-namespace path -> server-filesystem path."""
        path = _norm(path)
        mp = _norm(self.mount_point)
        rel = _mount_rel(path, mp)
        if rel is None:
            raise FilesystemError(f"{path} is not under mount {mp}")
        if not rel:
            return _norm(self.server.export)
        return _norm(posixpath.join(self.server.export, rel))


class MountTable:
    """Per-node mount resolution: local fs plus any NFS mounts.

    The longest matching mount point wins, as in a real VFS.
    """

    def __init__(self, local: SimFilesystem) -> None:
        self.local = local
        self.mounts: list[Mount] = []

    def mount(self, server: NFSServer, at: str) -> Mount:
        at = _norm(at)
        if any(m.mount_point == at for m in self.mounts):
            raise FilesystemError(f"mount point busy: {at}")
        self.local.mkdirs(at)
        m = Mount(server=server, mount_point=at)
        self.mounts.append(m)
        return m

    def umount(self, at: str) -> None:
        at = _norm(at)
        for m in self.mounts:
            if m.mount_point == at:
                self.mounts.remove(m)
                return
        raise FilesystemError(f"nothing mounted at {at}")

    def resolve(self, path: str) -> tuple[SimFilesystem, str]:
        """Return (filesystem, translated-path) for a node-namespace path."""
        path = _norm(path)
        best: Optional[Mount] = None
        for m in self.mounts:
            mp = _norm(m.mount_point)
            if _mount_rel(path, mp) is not None:
                if best is None or len(mp) > len(_norm(best.mount_point)):
                    best = m
        if best is None:
            return self.local, path
        return best.server.fs, best.translate(path)

    def is_mount_point(self, path: str) -> bool:
        path = _norm(path)
        return any(_norm(m.mount_point) == path for m in self.mounts)

    # Thin pass-through helpers so callers can use node.vfs like a fs --------
    def write(self, path: str, **kw) -> FileNode:
        fs, p = self.resolve(path)
        return fs.write(p, **kw)

    def read(self, path: str) -> bytes:
        fs, p = self.resolve(path)
        return fs.read(p)

    def stat(self, path: str) -> FileNode:
        fs, p = self.resolve(path)
        return fs.stat(p)

    def exists(self, path: str) -> bool:
        fs, p = self.resolve(path)
        return fs.exists(p)

    def isfile(self, path: str) -> bool:
        fs, p = self.resolve(path)
        return fs.isfile(p)

    def isdir(self, path: str) -> bool:
        fs, p = self.resolve(path)
        return fs.isdir(p)

    def mkdirs(self, path: str, owner: str = "root") -> None:
        fs, p = self.resolve(path)
        fs.mkdirs(p, owner=owner)

    def listdir(self, path: str) -> list[str]:
        fs, p = self.resolve(path)
        return fs.listdir(p)

    def remove(self, path: str) -> None:
        # removing the mount point itself would resolve into (and, when
        # empty, delete) the server's export root out from under every
        # other client — a real VFS answers EBUSY
        if self.is_mount_point(path):
            raise FilesystemError(f"mount point busy: {_norm(path)}")
        fs, p = self.resolve(path)
        fs.remove(p)

    def rename(self, src: str, dst: str) -> None:
        """Rename within one filesystem, or move across a mount boundary.

        A same-filesystem rename delegates to the backing store; when the
        two paths resolve to different filesystems (local -> NFS or the
        reverse) the node copies then removes, as ``mv`` does for EXDEV —
        preserving the file's content token so checksum-level sync still
        recognises the moved copy.
        """
        src_fs, src_p = self.resolve(src)
        dst_fs, dst_p = self.resolve(dst)
        if src_fs is dst_fs:
            src_fs.rename(src_p, dst_p)
            return
        node = src_fs.stat(src_p)
        dst_fs.write(
            dst_p,
            data=node.data,
            size=node.size,
            owner=node.owner,
            mtime=node.mtime,
            checksum=node.checksum,
        )
        src_fs.remove(src_p)
