"""Cluster substrate: Condor pool, NFS shared filesystem, NIS users, nodes."""

from .condor import (
    CondorError,
    CondorJob,
    CondorPool,
    JobState,
    MachineAd,
    Schedd,
    Startd,
)
from .nfs import (
    FileNode,
    FilesystemError,
    Mount,
    MountTable,
    NFSServer,
    SimFilesystem,
)
from .nis import NISBinding, NISDomain, NISError, NISGroup, NISUser
from .node import ClusterNode
from .shell import CommandResult, RemoteShell, SSHError

__all__ = [
    "ClusterNode",
    "CommandResult",
    "CondorError",
    "CondorJob",
    "CondorPool",
    "FileNode",
    "FilesystemError",
    "JobState",
    "MachineAd",
    "Mount",
    "MountTable",
    "NFSServer",
    "NISBinding",
    "NISDomain",
    "NISError",
    "NISGroup",
    "NISUser",
    "RemoteShell",
    "SSHError",
    "Schedd",
    "SimFilesystem",
    "Startd",
]
