"""SSH access to deployed hosts (Fig. 1 step 5).

"When the GP instance is running, users can connect to any of its hosts
via SSH."  :class:`RemoteShell` is the simulated session: it checks the
keypair and the user account, then answers a small command vocabulary
against the node's real state (filesystem, services, Condor pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .condor import CondorPool
from .nis import NISError
from .node import ClusterNode


class SSHError(Exception):
    pass


@dataclass
class CommandResult:
    command: str
    exit_code: int
    stdout: str

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class RemoteShell:
    """One authenticated session on one node."""

    def __init__(
        self,
        node: ClusterNode,
        username: str,
        pool: Optional[CondorPool] = None,
    ) -> None:
        self.node = node
        self.username = username
        self.pool = pool
        try:
            self.user = node.nis.lookup(username)
        except NISError as exc:
            raise SSHError(f"Permission denied ({username}@{node.hostname})") from exc
        self.cwd = self.user.home

    # -- the command vocabulary -------------------------------------------------
    def run(self, command: str) -> CommandResult:
        parts = command.split()
        if not parts:
            return CommandResult(command, 0, "")
        handler = getattr(self, f"_cmd_{parts[0].replace('-', '_')}", None)
        if handler is None:
            return CommandResult(command, 127, f"{parts[0]}: command not found")
        return handler(command, parts[1:])

    def _cmd_hostname(self, command, args) -> CommandResult:
        return CommandResult(command, 0, self.node.hostname)

    def _cmd_whoami(self, command, args) -> CommandResult:
        return CommandResult(command, 0, self.username)

    def _cmd_pwd(self, command, args) -> CommandResult:
        return CommandResult(command, 0, self.cwd)

    def _cmd_ls(self, command, args) -> CommandResult:
        path = args[0] if args else self.cwd
        if not path.startswith("/"):
            path = f"{self.cwd.rstrip('/')}/{path}"
        try:
            entries = self.node.vfs.listdir(path)
        except Exception as exc:
            return CommandResult(command, 2, f"ls: {exc}")
        return CommandResult(command, 0, "\n".join(entries))

    def _cmd_cat(self, command, args) -> CommandResult:
        if not args:
            return CommandResult(command, 1, "cat: missing operand")
        try:
            data = self.node.vfs.read(args[0])
        except Exception as exc:
            return CommandResult(command, 1, f"cat: {exc}")
        return CommandResult(command, 0, data.decode("utf-8", errors="replace"))

    def _cmd_condor_status(self, command, args) -> CommandResult:
        if self.pool is None:
            return CommandResult(command, 1, "condor_status: no pool configured")
        lines = ["Name            Slots  Busy  CpuFactor"]
        for name in self.pool.machine_names():
            startd = self.pool.startds[name]
            lines.append(
                f"{name:15s} {startd.machine.cores:5d} {len(startd.busy):5d} "
                f"{startd.machine.cpu_factor:9.2f}"
            )
        return CommandResult(command, 0, "\n".join(lines))

    def _cmd_condor_q(self, command, args) -> CommandResult:
        if self.pool is None:
            return CommandResult(command, 1, "condor_q: no pool configured")
        lines = ["ID   Owner      State"]
        for job in self.pool.schedd.jobs.values():
            lines.append(f"{job.id:<4d} {job.owner:10s} {job.state.value}")
        return CommandResult(command, 0, "\n".join(lines))

    def _cmd_service(self, command, args) -> CommandResult:
        # "service <name> status"
        if len(args) != 2 or args[1] != "status":
            return CommandResult(command, 1, "usage: service <name> status")
        state = self.node.chef.services.get(args[0])
        if state is None:
            return CommandResult(command, 3, f"{args[0]}: unrecognized service")
        return CommandResult(command, 0, f"{args[0]} is {state}")
