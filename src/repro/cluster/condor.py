"""A Condor-like high-throughput scheduler: matchmaking over a dynamic pool.

The paper deploys Galaxy with a Condor head node managing "a set of Condor
worker nodes in a dynamic Condor pool.  In this model Galaxy jobs are
transparently assigned to Condor worker nodes for parallel execution"
(Sec. III-B), and the use case's speed-up comes from adding a faster
worker at runtime.  The pieces implemented here mirror Condor's daemons:

* **MachineAd / Startd** — a machine advertises slots (one per core);
* **Schedd** — the per-cluster job queue;
* **Negotiator** — a periodic matchmaking cycle assigning idle jobs to
  free slots: job *requirements* filter machines, job *rank* (default:
  fastest machine) orders them;
* **CondorPool** — the collector/facade wiring it together, with dynamic
  add/remove (drain or evict) of workers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from heapq import merge as _heapq_merge
from typing import Any, Callable, Optional

from .. import calibration
from ..simcore import LAZY, SimContext, SimEvent
from .node import ClusterNode

Requirements = Callable[["MachineAd"], bool]
Rank = Callable[["MachineAd"], float]


class JobState(str, enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    COMPLETED = "completed"
    REMOVED = "removed"
    HELD = "held"


class CondorError(Exception):
    pass


@dataclass
class MachineAd:
    """What a startd advertises to the collector."""

    name: str
    cores: int
    memory_gb: float
    cpu_factor: float
    io_factor: float = 1.0
    node: Optional[ClusterNode] = None
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class CondorJob:
    """One queued unit of work.

    ``cpu_work`` is in m1.small-seconds; actual runtime is
    ``cpu_work / machine.cpu_factor``.  ``on_complete`` lets the submitter
    (Galaxy's Condor runner) attach real computation to the simulated job.
    """

    id: int
    owner: str
    cpu_work: float
    io_work: float = 0.0
    req_memory_gb: float = 0.0
    requirements: Optional[Requirements] = None
    rank: Optional[Rank] = None
    on_complete: Optional[Callable[["CondorJob"], None]] = None
    state: JobState = JobState.IDLE
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    machine_name: Optional[str] = None
    evictions: int = 0
    completed: Optional[SimEvent] = None  # fires when COMPLETED
    # obs causal carriers: ids of the job's current condor.wait /
    # condor.run spans, so each phase span can cite its predecessor
    # (wait <- submitter's span, run <- wait, requeued wait <- run) even
    # though matching and completion happen in batched cohorts.  None
    # whenever observability is disabled.
    wait_span_id: Optional[int] = None
    run_span_id: Optional[int] = None

    def matches(self, machine: MachineAd) -> bool:
        if self.req_memory_gb > machine.memory_gb:
            return False
        if self.requirements is not None and not self.requirements(machine):
            return False
        return True

    def rank_of(self, machine: MachineAd) -> float:
        return self.rank(machine) if self.rank is not None else machine.cpu_factor

    @property
    def queue_wait_s(self) -> Optional[float]:
        return None if self.start_time is None else self.start_time - self.submit_time


class Startd:
    """Machine daemon executing claimed jobs, one per slot.

    Completions are *not* per-job processes: the negotiation cycle that
    claimed a batch of jobs registers their finish times as one event
    cohort, and :meth:`_finish_job` runs as that cohort's apply.  Each
    claim draws a sequence token; eviction / ``condor_rm`` bumps the
    slot's token so a stale completion timer no-ops instead of being
    interrupted.
    """

    def __init__(self, ctx: SimContext, machine: MachineAd) -> None:
        self.ctx = ctx
        self.machine = machine
        self.busy: dict[int, CondorJob] = {}  # slot id -> job
        self.draining = False
        self._claims: dict[int, int] = {}  # slot id -> claim sequence token
        self._claim_seq = 0
        self._drained_event: Optional[SimEvent] = None
        #: owning pool; keeps the pool's free-slot index current
        self.pool: Optional["CondorPool"] = None

    @property
    def free_slots(self) -> int:
        if self.draining:
            return 0
        return self.machine.cores - len(self.busy)

    def claim(self, job: CondorJob, pool: "CondorPool") -> tuple[int, int, float]:
        """Assign ``job`` to a free slot; returns (slot, token, finish time).

        The caller (the negotiation cycle) is responsible for scheduling
        the completion — normally as one member of the cycle's cohort —
        and for removing the job from the schedd's idle queue
        (``_job_left_queue``) once its scan is over, which lets the scan
        iterate the queue without copying it.
        """
        if self.free_slots < 1:
            raise CondorError(f"{self.machine.name} has no free slot")
        busy = self.busy
        slot = 0
        while slot in busy:  # lowest free slot; free_slots >= 1 bounds it
            slot += 1
        busy[slot] = job
        job.state = JobState.RUNNING
        job.start_time = self.ctx.now
        job.machine_name = self.machine.name
        self.ctx.log(
            "condor", "match", job=job.id, machine=self.machine.name, slot=slot
        )
        obs = self.ctx.obs
        if obs.enabled:
            track = f"condor/job-{job.id}"
            obs.finish_open(track)  # the condor.wait span
            job.run_span_id = obs.start(
                "condor.run",
                track=track,
                cause=job.wait_span_id,
                job=job.id,
                machine=self.machine.name,
            ).id
            obs.histogram("condor.queue_wait_s").observe(
                self.ctx.now - job.submit_time
            )
        self._claim_seq += 1
        self._claims[slot] = self._claim_seq
        pool._update_free(self)
        duration = (
            job.cpu_work / self.machine.cpu_factor
            + job.io_work / self.machine.io_factor
        )
        return slot, self._claim_seq, self.ctx.now + duration

    def _finish_job(
        self, slot: int, token: int, job: CondorJob, pool: "CondorPool"
    ) -> None:
        """Completion-cohort apply for one claim (skips superseded claims)."""
        if self._claims.get(slot) != token:
            return  # evicted or condor_rm'd; the slot moved on
        del self.busy[slot]
        del self._claims[slot]
        pool._update_free(self)
        job.state = JobState.COMPLETED
        job.end_time = self.ctx.now
        if job.on_complete is not None:
            job.on_complete(job)
        if job.completed is not None and not job.completed.triggered:
            job.completed.succeed(job)
        self.ctx.log("condor", "complete", job=job.id, machine=self.machine.name)
        obs = self.ctx.obs
        if obs.enabled:
            obs.finish_open(f"condor/job-{job.id}")  # the condor.run span
            obs.counter("condor.completions").inc()
        pool._job_finished(job)
        self._check_drained()

    def _abort(self, slot: int, job: CondorJob, pool: "CondorPool") -> None:
        """Free a claimed slot before completion (evict or ``condor_rm``).

        Bumping the claim token is what cancels the pending completion:
        its cohort member fires on schedule and no-ops on the mismatch.
        """
        del self.busy[slot]
        self._claims.pop(slot, None)
        pool._update_free(self)
        obs = self.ctx.obs
        if job.state == JobState.REMOVED:
            # condor_rm while running: free the slot, nothing to rematch
            self.ctx.log("condor", "removed", job=job.id, machine=self.machine.name)
            if obs.enabled:
                obs.finish_open(
                    f"condor/job-{job.id}", status="cancelled", error="condor_rm"
                )
        else:
            # Evicted: job goes back to idle for rematching.
            job.state = JobState.IDLE
            pool.schedd._job_requeued(job)
            job.machine_name = None
            job.start_time = None
            job.evictions += 1
            self.ctx.log("condor", "evict", job=job.id, machine=self.machine.name)
            if obs.enabled:
                track = f"condor/job-{job.id}"
                obs.finish_open(track, status="error", error="evicted")
                job.wait_span_id = obs.start(
                    "condor.wait",
                    track=track,
                    cause=job.run_span_id,
                    job=job.id,
                    requeued=True,
                ).id
                obs.counter("condor.evictions").inc()
        pool._wake_negotiator()
        self._check_drained()

    def evict_all(self) -> None:
        pool = self.pool
        for slot, job in sorted(self.busy.items()):
            self._abort(slot, job, pool)

    def drain(self) -> SimEvent:
        """Stop matching new jobs; event fires when the last job finishes."""
        self.draining = True
        if self.pool is not None:
            self.pool._update_free(self)
        if self._drained_event is None:
            self._drained_event = self.ctx.sim.event()
        self._check_drained()
        return self._drained_event

    def _check_drained(self) -> None:
        if self.draining and not self.busy and self._drained_event is not None:
            if not self._drained_event.triggered:
                self._drained_event.succeed(self.machine.name)


class Schedd:
    """The job queue."""

    def __init__(self) -> None:
        self.jobs: dict[int, CondorJob] = {}
        self._next_id = 1
        # Idle jobs indexed separately so a negotiation cycle never scans
        # (or sorts) the full queue history.  Submission order is already
        # (submit_time, id) order — ids are monotonic and sim time never
        # goes backwards — so the dict stays sorted until an eviction
        # re-queues an old job out of order, which marks it dirty.
        self._idle: dict[int, CondorJob] = {}
        self._idle_dirty = False
        # The same idle jobs bucketed per owner, each bucket in
        # (submit_time, id) order, so a fair-share negotiation cycle can
        # assemble its match order from O(owners) sorted groups instead
        # of re-sorting the whole idle queue.  Buckets share the global
        # index's laziness: an eviction only dirties its own owner.
        self._idle_by_owner: dict[str, dict[int, CondorJob]] = {}
        self._dirty_owners: set[str] = set()
        #: total cpu+io work of the idle queue, maintained incrementally
        #: so backlog-driven autoscaling policies get an O(1) snapshot
        #: instead of an O(idle jobs) scan per control interval
        self._idle_work = 0.0

    def submit(self, job_kwargs: dict, ctx: SimContext) -> CondorJob:
        job = CondorJob(id=self._next_id, submit_time=ctx.now, **job_kwargs)
        job.completed = ctx.sim.event()
        self._next_id += 1
        self.jobs[job.id] = job
        self._idle[job.id] = job
        bucket = self._idle_by_owner.get(job.owner)
        if bucket is None:
            bucket = self._idle_by_owner[job.owner] = {}
        bucket[job.id] = job
        self._idle_work += job.cpu_work + job.io_work
        return job

    def _job_requeued(self, job: CondorJob) -> None:
        """An eviction put ``job`` back to IDLE (possibly out of order)."""
        self._idle[job.id] = job
        self._idle_work += job.cpu_work + job.io_work
        self._idle_dirty = True
        bucket = self._idle_by_owner.get(job.owner)
        if bucket is None:
            bucket = self._idle_by_owner[job.owner] = {}
        bucket[job.id] = job
        self._dirty_owners.add(job.owner)

    def _job_left_queue(self, job: CondorJob) -> None:
        """``job`` stopped being IDLE (claimed or removed)."""
        if self._idle.pop(job.id, None) is not None:
            self._idle_work -= job.cpu_work + job.io_work
        bucket = self._idle_by_owner.get(job.owner)
        if bucket is not None:
            bucket.pop(job.id, None)
            if not bucket:
                del self._idle_by_owner[job.owner]
                self._dirty_owners.discard(job.owner)

    def has_idle(self) -> bool:
        return bool(self._idle)

    def idle_count(self) -> int:
        """Number of idle jobs, without the sort :meth:`idle_jobs` may do."""
        return len(self._idle)

    def idle_count_of(self, owner: str) -> int:
        """One owner's idle-job count (0 when the owner has none queued)."""
        bucket = self._idle_by_owner.get(owner)
        return len(bucket) if bucket else 0

    @property
    def idle_work(self) -> float:
        """Total cpu+io work currently idle (m1.small-seconds), O(1)."""
        return self._idle_work

    def idle_jobs(self) -> list[CondorJob]:
        if self._idle_dirty:
            ordered = sorted(
                self._idle.values(), key=lambda j: (j.submit_time, j.id)
            )
            self._idle = {j.id: j for j in ordered}
            self._idle_dirty = False
        return list(self._idle.values())

    def idle_owners(self) -> list[str]:
        """Owners with at least one idle job (order is not significant)."""
        return list(self._idle_by_owner)

    def idle_jobs_of(self, owner: str) -> list[CondorJob]:
        """One owner's idle jobs in (submit_time, id) order."""
        return list(self.iter_idle_of(owner))

    def iter_idle(self):
        """Live (submit_time, id)-ordered view of the idle queue.

        No copy is made: callers must not submit, requeue, or remove
        idle jobs while iterating (the negotiation cycle defers its
        queue removals to the end of the scan for exactly this reason).
        """
        if self._idle_dirty:
            ordered = sorted(
                self._idle.values(), key=lambda j: (j.submit_time, j.id)
            )
            self._idle = {j.id: j for j in ordered}
            self._idle_dirty = False
        return self._idle.values()

    def iter_idle_of(self, owner: str):
        """Live ordered view of one owner's idle jobs (see :meth:`iter_idle`)."""
        bucket = self._idle_by_owner.get(owner)
        if not bucket:
            return ()
        if owner in self._dirty_owners:
            ordered = sorted(
                bucket.values(), key=lambda j: (j.submit_time, j.id)
            )
            bucket = self._idle_by_owner[owner] = {j.id: j for j in ordered}
            self._dirty_owners.discard(owner)
        return bucket.values()

    def remove(self, job_id: int) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            raise CondorError(f"no such job {job_id}")
        if job.state == JobState.RUNNING:
            raise CondorError("evict via the pool before removing a running job")
        job.state = JobState.REMOVED
        self._job_left_queue(job)


class CondorPool:
    """Collector + negotiator + schedd: the pool facade Galaxy talks to."""

    def __init__(
        self,
        ctx: SimContext,
        negotiation_interval_s: float = calibration.CONDOR_NEGOTIATION_INTERVAL_S,
        fair_share: bool = True,
    ) -> None:
        self.ctx = ctx
        self.interval = negotiation_interval_s
        #: when True, idle jobs of lighter users match first (Condor's
        #: user-priority fair share, simplified to accumulated usage)
        self.fair_share = fair_share
        self.usage_by_owner: dict[str, float] = {}
        self.schedd = Schedd()
        self.startds: dict[str, Startd] = {}
        #: index of machines with at least one free slot, so negotiation
        #: never scans fully-loaded startds (name -> Startd)
        self._free: dict[str, Startd] = {}
        self._stopped = False
        #: a LAZY wake event is armed (coalesces same-timestamp kicks)
        self._wake_armed = False
        #: cycle generation; an interval tick armed by an older cycle
        #: finds the counter moved on and no-ops (a kick beat it)
        self._gen = 0
        # Boot cycle: coalesces with same-timestamp add/submit kicks.
        self._wake_negotiator()

    # -- pool membership -----------------------------------------------------
    def add_node(self, node: ClusterNode, cores: Optional[int] = None) -> Startd:
        """Register a ClusterNode as an execute machine."""
        ad = MachineAd(
            name=node.name,
            cores=cores if cores is not None else node.cores,
            memory_gb=node.memory_gb,
            cpu_factor=node.cpu_factor,
            io_factor=node.io_factor,
            node=node,
        )
        return self.add_machine(ad)

    def add_machine(self, machine: MachineAd) -> Startd:
        if machine.name in self.startds:
            raise CondorError(f"machine {machine.name!r} already in pool")
        startd = Startd(self.ctx, machine)
        startd.pool = self
        self.startds[machine.name] = startd
        self._update_free(startd)
        self.ctx.log("condor", "startd-join", machine=machine.name, cores=machine.cores)
        self._wake_negotiator()
        return startd

    def remove_machine(self, name: str, drain: bool = True) -> SimEvent:
        """Remove a machine; returns an event firing once it is gone.

        ``drain=True`` lets running jobs finish; ``drain=False`` evicts them
        (they go back to idle and are rematched elsewhere).
        """
        startd = self.startds.get(name)
        if startd is None:
            raise CondorError(f"machine {name!r} not in pool")
        done = self.ctx.sim.event()
        if drain:
            drained = startd.drain()

            def _finish(_ev: SimEvent) -> None:
                self.startds.pop(name, None)
                self._free.pop(name, None)
                self.ctx.log("condor", "startd-leave", machine=name)
                done.succeed(name)

            if drained.processed:
                _finish(drained)
            else:
                drained.callbacks.append(_finish)
        else:
            startd.draining = True
            startd.evict_all()
            self.startds.pop(name, None)
            self._free.pop(name, None)
            self.ctx.log("condor", "startd-leave", machine=name, evicted=True)
            done.succeed(name)
        return done

    # -- submission ------------------------------------------------------------
    def submit(
        self,
        cpu_work: float,
        owner: str = "nobody",
        io_work: float = 0.0,
        req_memory_gb: float = 0.0,
        requirements: Optional[Requirements] = None,
        rank: Optional[Rank] = None,
        on_complete: Optional[Callable[[CondorJob], None]] = None,
        cause: Optional[int] = None,
    ) -> CondorJob:
        if cpu_work < 0 or io_work < 0:
            raise CondorError("cpu_work/io_work must be >= 0")
        job = self.schedd.submit(
            dict(
                owner=owner,
                cpu_work=cpu_work,
                io_work=io_work,
                req_memory_gb=req_memory_gb,
                requirements=requirements,
                rank=rank,
                on_complete=on_complete,
            ),
            self.ctx,
        )
        self.ctx.log("condor", "submit", job=job.id, owner=owner, work=cpu_work)
        obs = self.ctx.obs
        if obs.enabled:
            # ``cause`` names the submitter's span (a Galaxy job, a WaaS
            # workflow) so the queue-wait interval is causally reachable
            # from the operation that provoked it
            job.wait_span_id = obs.start(
                "condor.wait",
                track=f"condor/job-{job.id}",
                cause=cause,
                job=job.id,
                owner=owner,
            ).id
            obs.counter("condor.submits").inc()
        self._wake_negotiator()
        return job

    def when_done(self, job: CondorJob) -> SimEvent:
        assert job.completed is not None
        return job.completed

    def remove_job(self, job: CondorJob) -> None:
        """``condor_rm``: drop a queued job, or kill a running one."""
        if job.state in (JobState.COMPLETED, JobState.REMOVED):
            raise CondorError(f"job {job.id} is already {job.state.value}")
        was_running = job.state == JobState.RUNNING
        job.state = JobState.REMOVED
        self.schedd._job_left_queue(job)
        job.end_time = self.ctx.now
        if was_running:
            for startd in self.startds.values():
                for slot, running in list(startd.busy.items()):
                    if running is job:
                        startd._abort(slot, job, self)
        else:
            # idle: the running case closes its spans on interrupt delivery
            self.ctx.obs.finish_open(
                f"condor/job-{job.id}", status="cancelled", error="condor_rm"
            )
        self.ctx.log("condor", "rm", job=job.id)

    # -- stats -------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.schedd.idle_jobs())

    def queue_depth_of(self, owner: str) -> int:
        """Idle jobs queued by one owner (per-tenant backlog view)."""
        return self.schedd.idle_count_of(owner)

    @property
    def idle_work(self) -> float:
        """Backlogged cpu+io work (m1.small-seconds) awaiting a match."""
        return self.schedd.idle_work

    @property
    def running_count(self) -> int:
        return sum(len(s.busy) for s in self.startds.values())

    @property
    def total_slots(self) -> int:
        return sum(s.machine.cores for s in self.startds.values() if not s.draining)

    @property
    def total_cpu_capacity(self) -> float:
        """m1.small-seconds of work the pool retires per simulated second."""
        return sum(
            s.machine.cores * s.machine.cpu_factor
            for s in self.startds.values()
            if not s.draining
        )

    def machine_names(self) -> list[str]:
        return sorted(self.startds)

    def _job_finished(self, job: CondorJob) -> None:
        self.usage_by_owner[job.owner] = (
            self.usage_by_owner.get(job.owner, 0.0) + job.cpu_work + job.io_work
        )
        # A slot freed up: try to match the next idle job right away.
        self._wake_negotiator()

    # -- negotiation --------------------------------------------------------------
    def _update_free(self, startd: Startd) -> None:
        """Re-index one machine after its slot occupancy changed."""
        name = startd.machine.name
        if startd.free_slots > 0 and name in self.startds:
            self._free[name] = startd
        else:
            self._free.pop(name, None)

    def shutdown(self) -> None:
        self._stopped = True
        self._wake_negotiator()

    def _wake_negotiator(self) -> None:
        # The negotiator is callback-driven (no resident process): a wake
        # arms one LAZY event, which defers the cycle until every
        # ordinary event at this timestamp has drained, so a burst of
        # same-time completions and submissions coalesces into a single
        # negotiation cycle (the armed flag makes the extra kicks free).
        if self._wake_armed or self._stopped:
            return
        self._wake_armed = True
        ev = SimEvent(self.ctx.sim)
        ev.callbacks.append(self._on_wake)
        ev.succeed(priority=LAZY)

    def _on_wake(self, _ev: SimEvent) -> None:
        self._wake_armed = False
        if not self._stopped:
            self._run_cycle()

    def _run_cycle(self) -> None:
        self._gen += 1
        self._negotiation_cycle()
        if self.schedd.has_idle() and not self._stopped:
            # Unmatched work pending: retry next cycle, or earlier on a
            # submission/join/slot-free kick.  When nothing is idle no
            # timer is armed, so an idle simulation can drain to
            # completion.  The tick is a one-member cohort; its apply
            # re-arms the LAZY wake so the cycle still runs after every
            # ordinary event of its timestamp.
            self.ctx.sim.schedule_cohort(
                (self.ctx.now + self.interval,),
                self._tick_apply,
                payload=self._gen,
                layer="condor.tick",
            )

    def _tick_apply(self, cohort, start: int, stop: int) -> None:
        if cohort.payload == self._gen:
            self._wake_negotiator()
        # else: a kick already ran a newer cycle (which armed its own
        # tick if needed); the stale timer dies here.

    def _complete_apply(self, cohort, start: int, stop: int) -> None:
        payload = cohort.payload
        for k in range(start, stop):
            startd, slot, token, job = payload[k]
            startd._finish_job(slot, token, job, self)

    def _match_order(self):
        """Idle jobs in fair-share order, lazily, from per-owner buckets.

        Equivalent to a stable sort of the (submit_time, id)-ordered
        idle queue on accumulated usage: owners are grouped by usage,
        groups ascend by usage, and the owners *within* a group — whose
        jobs a stable sort would interleave in submission order — are
        k-way merged on (submit_time, id).  Costs O(owners log owners)
        plus the jobs actually consumed, instead of re-sorting every
        idle job each cycle; an early break on slot exhaustion never
        materializes the untouched groups at all.
        """
        usage = self.usage_by_owner
        schedd = self.schedd
        groups: dict[float, list[str]] = {}
        for owner in schedd.idle_owners():
            groups.setdefault(usage.get(owner, 0.0), []).append(owner)
        for used in sorted(groups):
            owners = groups[used]
            if len(owners) == 1:
                # Live views, no copies: the cycle defers its queue
                # removals until the scan is over, so the buckets do not
                # change under the iterators.
                yield from schedd.iter_idle_of(owners[0])
            else:
                yield from _heapq_merge(
                    *(schedd.iter_idle_of(o) for o in owners),
                    key=lambda j: (j.submit_time, j.id),
                )

    def _negotiation_cycle(self) -> None:
        obs = self.ctx.obs
        if obs.enabled:
            obs.counter("condor.negotiation_cycles").inc()
        if not self._free:
            return  # every slot is claimed; nothing can match
        idle = self._match_order() if self.fair_share else self.schedd.iter_idle()
        matched = 0
        finish_times: list[float] = []
        claims: list[tuple[Startd, int, int, CondorJob]] = []
        for job in idle:
            if not self._free:
                break  # the cycle itself consumed the last free slot
            # the free-slot check tolerates entries staled by a drain;
            # one fused pass picks the best-ranked candidate (first wins
            # ties, matching max() over the old materialized list)
            best = None
            best_key = None
            for s in self._free.values():
                if s.free_slots > 0 and job.matches(s.machine):
                    key = (job.rank_of(s.machine), -len(s.busy), s.machine.name)
                    if best is None or key > best_key:
                        best = s
                        best_key = key
            if best is None:
                continue
            slot, token, finish = best.claim(job, self)
            finish_times.append(finish)
            claims.append((best, slot, token, job))
            matched += 1
        if matched:
            # The scan iterated live queue views; now that it is over,
            # retire the claimed jobs from the idle queue in one pass.
            schedd = self.schedd
            for _startd, _slot, _token, job in claims:
                schedd._job_left_queue(job)
            # One struct-of-arrays cohort per cycle: every claim's
            # completion timer in match order.  With obs on, the cohort
            # carries each member's condor.run span id so the causal
            # chain survives the batch dispatch (spans opened from the
            # apply can cite cohort.cause[k]); obs off, it stays None.
            self.ctx.sim.schedule_cohort(
                finish_times,
                self._complete_apply,
                payload=claims,
                layer="condor.complete",
                cause=tuple(c[3].run_span_id for c in claims) if obs.enabled else None,
            )
        if obs.enabled:
            if matched:
                obs.instant("condor.negotiate", track="condor", matched=matched)
                obs.counter("condor.matches").inc(matched)
            # gauge samples at every negotiation cycle: the Fig. 11
            # utilization/backlog curves straight from the trace
            slots = self.total_slots
            running = self.running_count
            obs.series("condor.pool_utilization").record(
                running / slots if slots else 0.0
            )
            obs.series("condor.idle_jobs").record(self.schedd.idle_count())
            obs.series("condor.running_jobs").record(running)
