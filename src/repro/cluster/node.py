"""ClusterNode: one host of a GP instance, tying all per-host state together.

A node combines the EC2 instance (hardware + lifecycle), the Chef view
(converged software), a local filesystem plus mount table (NFS), and an
NIS binding (users).  The deployer creates these; Condor, Galaxy and
GridFTP all hang services off them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..chef import ChefNode
from ..cloud import EC2Instance
from .nfs import MountTable, SimFilesystem
from .nis import NISBinding


@dataclass
class ClusterNode:
    """One deployed host."""

    name: str
    instance: EC2Instance
    chef: ChefNode
    local_fs: SimFilesystem
    vfs: MountTable
    nis: NISBinding = field(default_factory=NISBinding)
    roles: set[str] = field(default_factory=set)
    #: live service objects keyed by name ("condor-startd", "gridftp", ...)
    services: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls, name: str, instance: EC2Instance, roles: Optional[set[str]] = None
    ) -> "ClusterNode":
        local_fs = SimFilesystem(name=f"{name}.local")
        chef = ChefNode(
            name=name,
            cpu_factor=instance.itype.cpu_factor,
            io_factor=instance.itype.io_factor,
            preloaded=instance.ami.preloaded,
            fs=local_fs,
        )
        # a snapshotted AMI carries converged Chef state on its disk
        chef.markers |= set(instance.ami.baked_markers)
        chef.checkouts.update(dict(instance.ami.baked_checkouts))
        return cls(
            name=name,
            instance=instance,
            chef=chef,
            local_fs=local_fs,
            vfs=MountTable(local_fs),
            roles=set(roles or ()),
        )

    @property
    def hostname(self) -> str:
        return self.instance.public_dns

    @property
    def instance_type(self) -> str:
        return self.instance.instance_type

    @property
    def cpu_factor(self) -> float:
        return self.instance.itype.cpu_factor

    @property
    def io_factor(self) -> float:
        return self.instance.itype.io_factor

    @property
    def cores(self) -> int:
        return self.instance.itype.cores

    @property
    def memory_gb(self) -> float:
        return self.instance.itype.memory_gb

    def has_role(self, role: str) -> bool:
        return role in self.roles

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClusterNode {self.name} ({self.instance_type}) roles={sorted(self.roles)}>"
