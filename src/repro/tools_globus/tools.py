"""Globus Transfer as native Galaxy tools.

"The Globus Transfer toolset includes three tools: 1) third party
transfers between any Globus endpoints ('GO Transfer'), 2) upload to
Galaxy from any Globus endpoint ('Get Data via Globus Online') and
3) download from Galaxy to any Globus endpoint ('Send Data via Globus
Online')" (Sec. IV-A).

These are *process-style* tools: their duration is the transfer task's
duration inside the simulation, driven through the Globus Transfer REST
client exactly as the paper describes ("Galaxy invokes the Globus
Transfer REST API to create and monitor the transfer").  A failed or
deadline-exceeded task surfaces as a Galaxy job error in the history
panel.

Wiring: the deployment injects two services into the job manager —
``transfer_client_factory(galaxy_username) -> TransferClient`` and
``galaxy_endpoint`` (the endpoint name of the deployed cluster, e.g.
``cvrg#galaxy`` from the topology's ``go-endpoint``).
"""

from __future__ import annotations

from typing import Optional

from ..galaxy.jobs import ToolRunContext
from ..galaxy.tools import Tool, Toolbox, ToolError
from ..transfer.api import GlobusAPIError, TransferClient

GO_TRANSFER_TOOL_ID = "globus_go_transfer"
GET_DATA_TOOL_ID = "globus_get_data"
SEND_DATA_TOOL_ID = "globus_send_data"
TOOL_SECTION = "Globus Online"


def _client(run: ToolRunContext) -> TransferClient:
    factory = run.services.get("transfer_client_factory")
    if factory is None:
        raise ToolError(
            "this Galaxy instance has no Globus Transfer integration configured"
        )
    try:
        return factory(run.user)
    except GlobusAPIError as exc:
        raise ToolError(
            f"user {run.user!r} has no linked Globus Online account: {exc.message}"
        ) from exc


def _galaxy_endpoint(run: ToolRunContext) -> str:
    ep = run.services.get("galaxy_endpoint")
    if not ep:
        raise ToolError("this Galaxy instance has no registered Globus endpoint")
    return ep


def _deadline(run: ToolRunContext) -> Optional[float]:
    deadline = run.params.get("deadline_minutes")
    return float(deadline) * 60.0 if deadline else None


def _run_transfer(
    run: ToolRunContext,
    source_endpoint: str,
    source_path: str,
    dest_endpoint: str,
    dest_path: str,
    label: str,
):
    """Submit a task and wait for it; raise ToolError on failure."""
    client = _client(run)
    try:
        doc = client.submit_transfer(
            client.get_submission_id(),
            source_endpoint,
            dest_endpoint,
            [(source_path, dest_path)],
            label=label,
            deadline_s=_deadline(run),
        )
    except GlobusAPIError as exc:
        raise ToolError(f"transfer submission failed: {exc.message}") from exc
    run.log(f"submitted Globus Transfer task {doc.task_id}")
    yield client.when_task_done(doc.task_id)
    final = client.get_task(doc.task_id)
    run.log(
        f"task {final.task_id}: {final.status}, "
        f"{final.bytes_transferred} bytes, {final.faults} fault(s)"
    )
    if final.status != "SUCCEEDED":
        raise ToolError(f"Globus Transfer failed: {final.nice_status}")
    return final


def _report(final, source, dest) -> bytes:
    return (
        "Globus Transfer report\n"
        f"task_id: {final.task_id}\n"
        f"status: {final.status}\n"
        f"source: {source}\n"
        f"destination: {dest}\n"
        f"files: {final.files_transferred}\n"
        f"bytes: {final.bytes_transferred}\n"
        f"faults: {final.faults}\n"
    ).encode()


# ---------------------------------------------------------------------------
# Tool bodies (generators — process-style tools)
# ---------------------------------------------------------------------------


def go_transfer_execute(run: ToolRunContext):
    """'GO Transfer': third-party transfer between any two endpoints."""
    src_ep = run.params["source_endpoint"]
    dst_ep = run.params["dest_endpoint"]
    src_path = run.params["source_path"]
    dst_path = run.params["dest_path"]
    final = yield from _run_transfer(
        run, src_ep, src_path, dst_ep, dst_path, label="GO Transfer from Galaxy"
    )
    out = run.output("output")
    galaxy_ep = run.services.get("galaxy_endpoint")
    if dst_ep == galaxy_ep and dst_path == out.dataset.file_path:
        # file manifested directly as a Galaxy dataset (Fig. 4 behaviour)
        out.adopt()
    else:
        out.write(_report(final, f"{src_ep}:{src_path}", f"{dst_ep}:{dst_path}"))
    out.set_name(f"GO Transfer: {src_path.rsplit('/', 1)[-1]}")


def get_data_execute(run: ToolRunContext):
    """'Get Data via Globus Online': remote endpoint -> this Galaxy server."""
    src_ep = run.params["endpoint"]
    src_path = run.params["path"]
    galaxy_ep = _galaxy_endpoint(run)
    out = run.output("output")
    # destination is the output dataset's own file path on the shared FS
    yield from _run_transfer(
        run, src_ep, src_path, galaxy_ep, out.dataset.file_path,
        label="Get Data via Globus Online",
    )
    out.adopt()
    out.set_name(src_path.rsplit("/", 1)[-1])
    out.set_info(f"from {src_ep}:{src_path}")


def send_data_execute(run: ToolRunContext):
    """'Send Data via Globus Online': a history dataset -> remote endpoint."""
    if not run.inputs:
        raise ToolError("select a history dataset to send")
    dst_ep = run.params["endpoint"]
    dst_path = run.params["path"]
    galaxy_ep = _galaxy_endpoint(run)
    src = run.input(0)
    final = yield from _run_transfer(
        run, galaxy_ep, src.path, dst_ep, dst_path,
        label="Send Data via Globus Online",
    )
    out = run.output("output")
    out.write(_report(final, f"{galaxy_ep}:{src.path}", f"{dst_ep}:{dst_path}"))
    out.set_name(f"Sent: {src.name}")


# ---------------------------------------------------------------------------
# Tool definitions
# ---------------------------------------------------------------------------

_DEADLINE = {
    "name": "deadline_minutes",
    "type": "float",
    "label": "Deadline (minutes; job fails if exceeded)",
    "optional": True,
}


def build_globus_tools() -> list[Tool]:
    go_transfer = Tool.from_config(
        {
            "id": GO_TRANSFER_TOOL_ID,
            "name": "GO Transfer",
            "description": "Third-party transfer between any Globus endpoints",
            "parameters": [
                {"name": "source_endpoint", "type": "text", "label": "Source endpoint"},
                {"name": "source_path", "type": "text", "label": "Source path"},
                {"name": "dest_endpoint", "type": "text", "label": "Destination endpoint"},
                {"name": "dest_path", "type": "text", "label": "Destination path"},
                _DEADLINE,
            ],
            "outputs": [{"name": "output", "ext": "data", "label": "Transferred data"}],
        },
        execute=go_transfer_execute,
    )
    get_data = Tool.from_config(
        {
            "id": GET_DATA_TOOL_ID,
            "name": "Get Data via Globus Online",
            "description": "Upload to Galaxy from any Globus endpoint",
            "parameters": [
                {"name": "endpoint", "type": "text", "label": "Endpoint"},
                {"name": "path", "type": "text", "label": "Path"},
                _DEADLINE,
            ],
            "outputs": [{"name": "output", "ext": "data", "label": "Fetched dataset"}],
        },
        execute=get_data_execute,
    )
    send_data = Tool.from_config(
        {
            "id": SEND_DATA_TOOL_ID,
            "name": "Send Data via Globus Online",
            "description": "Download from Galaxy to any Globus endpoint",
            "parameters": [
                {"name": "input", "type": "data", "label": "History dataset"},
                {"name": "endpoint", "type": "text", "label": "Destination endpoint"},
                {"name": "path", "type": "text", "label": "Destination path"},
                _DEADLINE,
            ],
            "outputs": [{"name": "output", "ext": "txt", "label": "Transfer report"}],
        },
        execute=send_data_execute,
    )
    return [go_transfer, get_data, send_data]


def install_globus_tools(toolbox: Toolbox) -> list[Tool]:
    tools = build_globus_tools()
    for tool in tools:
        toolbox.register(tool, section=TOOL_SECTION)
    return tools
