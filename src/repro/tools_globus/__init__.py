"""The three Globus Transfer tools added to Galaxy (paper Sec. IV-A)."""

from .tools import (
    GET_DATA_TOOL_ID,
    GO_TRANSFER_TOOL_ID,
    SEND_DATA_TOOL_ID,
    TOOL_SECTION,
    build_globus_tools,
    install_globus_tools,
)

__all__ = [
    "GET_DATA_TOOL_ID",
    "GO_TRANSFER_TOOL_ID",
    "SEND_DATA_TOOL_ID",
    "TOOL_SECTION",
    "build_globus_tools",
    "install_globus_tools",
]
