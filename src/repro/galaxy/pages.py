"""Pages and sharing: Galaxy's publication layer.

"A Galaxy Page is a mix of text, graphs and embedded Galaxy items from
analyses (including datasets, histories and workflows), that allows a
reader to easily view, reproduce, or extend the analyses" (Sec. II-2).
Histories, workflows and pages can be shared with specific users or
published via web links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Union

from .datasets import Dataset, History
from .workflows import Workflow


class SharingError(Exception):
    pass


Embeddable = Union[Dataset, History, Workflow]


@dataclass
class PageItem:
    kind: Literal["text", "dataset", "history", "workflow"]
    text: str = ""
    ref: Embeddable | None = None


@dataclass
class Page:
    """An annotated, shareable document embedding live Galaxy objects."""

    title: str
    slug: str
    owner: str
    items: list[PageItem] = field(default_factory=list)
    published: bool = False
    shared_with: set[str] = field(default_factory=set)

    def add_text(self, text: str) -> None:
        self.items.append(PageItem(kind="text", text=text))

    def embed(self, obj: Embeddable, caption: str = "") -> None:
        if isinstance(obj, Dataset):
            kind = "dataset"
        elif isinstance(obj, History):
            kind = "history"
        elif isinstance(obj, Workflow):
            kind = "workflow"
        else:
            raise SharingError(f"cannot embed {type(obj).__name__}")
        self.items.append(PageItem(kind=kind, text=caption, ref=obj))

    def embedded(self, kind: str) -> list[Embeddable]:
        return [i.ref for i in self.items if i.kind == kind and i.ref is not None]

    def accessible_by(self, username: str) -> bool:
        return self.published or username == self.owner or username in self.shared_with


class PageStore:
    """All pages of a Galaxy instance, addressed by slug."""

    def __init__(self) -> None:
        self._pages: dict[str, Page] = {}

    def create(self, title: str, owner: str, slug: str = "") -> Page:
        slug = slug or title.lower().replace(" ", "-")
        if slug in self._pages:
            raise SharingError(f"page slug {slug!r} taken")
        page = Page(title=title, slug=slug, owner=owner)
        self._pages[slug] = page
        return page

    def get(self, slug: str, as_user: str) -> Page:
        page = self._pages.get(slug)
        if page is None:
            raise SharingError(f"no such page {slug!r}")
        if not page.accessible_by(as_user):
            raise SharingError(f"{as_user!r} may not view page {slug!r}")
        return page

    def share(self, slug: str, owner: str, with_user: str) -> None:
        page = self._pages.get(slug)
        if page is None:
            raise SharingError(f"no such page {slug!r}")
        if page.owner != owner:
            raise SharingError("only the owner can share a page")
        page.shared_with.add(with_user)

    def publish(self, slug: str, owner: str) -> str:
        """Make the page public; returns its web link."""
        page = self._pages.get(slug)
        if page is None:
            raise SharingError(f"no such page {slug!r}")
        if page.owner != owner:
            raise SharingError("only the owner can publish a page")
        page.published = True
        return f"/u/{owner}/p/{slug}"

    def published_pages(self) -> list[Page]:
        return [p for p in self._pages.values() if p.published]
