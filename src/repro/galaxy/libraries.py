"""Data libraries: curated shared datasets.

"Users can import datasets into their workspaces from established data
warehouses and/or upload their own datasets" (Sec. II-1).  A data
library is an admin-curated, read-only collection; importing an item
into a history creates a new history item referencing the same payload
(no copy), exactly like Galaxy's library model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .datasets import Dataset, DatasetState, History


class LibraryError(Exception):
    pass


@dataclass
class LibraryItem:
    id: int
    name: str
    ext: str
    file_path: str
    size: int
    description: str = ""


@dataclass
class DataLibrary:
    name: str
    description: str = ""
    items: dict[int, LibraryItem] = field(default_factory=dict)
    #: empty set means public to all instance users
    restricted_to: set[str] = field(default_factory=set)

    def accessible_by(self, username: str) -> bool:
        return not self.restricted_to or username in self.restricted_to


class LibraryStore:
    """All data libraries of a Galaxy instance."""

    def __init__(self, app) -> None:
        self._app = app
        self._libraries: dict[str, DataLibrary] = {}
        self._next_item_id = 1

    def create(
        self, name: str, description: str = "",
        restricted_to: Optional[set[str]] = None,
    ) -> DataLibrary:
        if name in self._libraries:
            raise LibraryError(f"library {name!r} exists")
        lib = DataLibrary(
            name=name, description=description,
            restricted_to=set(restricted_to or ()),
        )
        self._libraries[name] = lib
        return lib

    def get(self, name: str) -> DataLibrary:
        try:
            return self._libraries[name]
        except KeyError:
            raise LibraryError(f"no such library {name!r}") from None

    def list_for(self, username: str) -> list[DataLibrary]:
        return [
            lib for lib in self._libraries.values() if lib.accessible_by(username)
        ]

    def add_item(
        self,
        library: str,
        name: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        ext: str = "data",
        description: str = "",
    ) -> LibraryItem:
        """Deposit a curated dataset (admin operation)."""
        lib = self.get(library)
        path = f"/galaxy/libraries/{library}/{name}"
        node = self._app.fs.write(path, data=data, size=size)
        item = LibraryItem(
            id=self._next_item_id,
            name=name,
            ext=ext,
            file_path=path,
            size=node.size,
            description=description,
        )
        self._next_item_id += 1
        lib.items[item.id] = item
        return item

    def import_to_history(
        self, library: str, item_id: int, history: History, username: str
    ) -> Dataset:
        """Reference a library item from a user's history (no data copy)."""
        lib = self.get(library)
        if not lib.accessible_by(username):
            raise LibraryError(f"{username!r} may not read library {library!r}")
        item = lib.items.get(item_id)
        if item is None:
            raise LibraryError(f"library {library!r} has no item {item_id}")
        ds = history.new_dataset(
            self._app.jobs._next_dataset_id, item.name, ext=item.ext,
            created_at=self._app.ctx.now,
        )
        self._app.jobs._next_dataset_id += 1
        ds.file_path = item.file_path
        ds.size = item.size
        ds.state = DatasetState.OK
        ds.info = f"imported from library {library!r}"
        return ds
