"""Galaxy's stock upload tools: HTTP form upload and the FTP drop directory.

"Galaxy already provides tools for uploading and downloading files, [but]
the speed and reliability of these tools is not sufficient when
transferring large datasets" (Sec. I).  These are the baselines Fig. 11
measures *through Galaxy*: both are process-style tools whose duration
comes from the calibrated protocol models, pulling from the user's
workstation filesystem (service key ``user_workstation_fs``).

The HTTP tool enforces the 2 GB limit; the FTP tool requires
``ftp_upload_enabled`` in the instance config.
"""

from __future__ import annotations

from .jobs import ToolRunContext
from .tools import Tool, Toolbox, ToolError

UPLOAD_HTTP_TOOL_ID = "upload_http"
UPLOAD_FTP_TOOL_ID = "upload_ftp"
TOOL_SECTION = "Get Data"


def _workstation(run: ToolRunContext):
    fs = run.services.get("user_workstation_fs")
    if fs is None:
        raise ToolError("no user workstation is reachable from this instance")
    return fs


def _do_upload(run: ToolRunContext, uploader_cls):
    from ..transfer.baselines import UploadError

    src_fs = _workstation(run)
    src_path = run.params["path"]
    out = run.output("output")
    uploader = uploader_cls(run.ctx)
    try:
        result = yield from uploader.upload(
            src_fs, src_path, run.services["galaxy_fs"], out.dataset.file_path
        )
    except UploadError as exc:
        raise ToolError(str(exc)) from exc
    out.adopt()
    out.set_name(src_path.rsplit("/", 1)[-1])
    out.set_info(
        f"{result.protocol} upload, {result.rate_mbps:.2f} Mbit/s average"
    )
    run.log(f"uploaded {result.bytes} bytes in {result.seconds:.1f}s")


def http_upload_execute(run: ToolRunContext):
    """The browser form upload (refuses > 2 GB)."""
    config = run.services.get("galaxy_config")
    if config is not None:
        src_fs = _workstation(run)
        size = src_fs.stat(run.params["path"]).size
        if size > config.http_upload_max_bytes:
            raise ToolError(
                f"File exceeds the {config.http_upload_max_bytes // 2**30} GB "
                "browser upload limit; use FTP or Globus Transfer"
            )
    from ..transfer.baselines import HTTPUploader

    yield from _do_upload(run, HTTPUploader)


def ftp_upload_execute(run: ToolRunContext):
    """The FTP drop-directory path (periodic import scan included)."""
    config = run.services.get("galaxy_config")
    if config is not None and not config.ftp_upload_enabled:
        raise ToolError("FTP upload is disabled on this Galaxy instance")
    from ..transfer.baselines import FTPUploader

    yield from _do_upload(run, FTPUploader)


def build_upload_tools() -> list[Tool]:
    http_tool = Tool.from_config(
        {
            "id": UPLOAD_HTTP_TOOL_ID,
            "name": "Upload File (HTTP)",
            "description": "Browser form upload from your computer (max 2 GB)",
            "parameters": [{"name": "path", "type": "text", "label": "Local file"}],
            "outputs": [{"name": "output", "ext": "data", "label": "Uploaded file"}],
        },
        execute=http_upload_execute,
    )
    ftp_tool = Tool.from_config(
        {
            "id": UPLOAD_FTP_TOOL_ID,
            "name": "Upload File (FTP)",
            "description": "FTP drop directory upload from your computer",
            "parameters": [{"name": "path", "type": "text", "label": "Local file"}],
            "outputs": [{"name": "output", "ext": "data", "label": "Uploaded file"}],
        },
        execute=ftp_upload_execute,
    )
    return [http_tool, ftp_tool]


def install_upload_tools(toolbox: Toolbox) -> list[Tool]:
    tools = build_upload_tools()
    for tool in tools:
        toolbox.register(tool, section=TOOL_SECTION)
    return tools
