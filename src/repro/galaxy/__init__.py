"""Galaxy: the scientific workflow platform (paper Sec. II).

Datasets/histories, declarative tools, workflow DAGs, job runners (local
and Condor), provenance capture, and pages/sharing — the programmatic
equivalent of the Galaxy instance the paper deploys.
"""

from .api import GalaxyAPIError, GalaxyClient, JobDocument
from .app import GalaxyApp, GalaxyConfig, GalaxyError, GalaxyUser
from .datasets import Dataset, DatasetState, History, KNOWN_EXTENSIONS
from .libraries import DataLibrary, LibraryError, LibraryItem, LibraryStore
from .jobs import (
    CondorJobRunner,
    InputHandle,
    Job,
    JobError,
    JobManager,
    JobRunner,
    JobState,
    LocalJobRunner,
    OutputHandle,
    ToolRunContext,
)
from .pages import Page, PageStore, SharingError
from .provenance import JobRecord, ProvenanceError, ProvenanceStore
from .tools import Tool, Toolbox, ToolError, ToolOutput, ToolParameter
from .upload_tools import (
    UPLOAD_FTP_TOOL_ID,
    UPLOAD_HTTP_TOOL_ID,
    build_upload_tools,
    install_upload_tools,
)
from .workflows import (
    Connection,
    Workflow,
    WorkflowEngine,
    WorkflowError,
    WorkflowInvocation,
    WorkflowStep,
)

__all__ = [
    "Connection",
    "CondorJobRunner",
    "DataLibrary",
    "Dataset",
    "DatasetState",
    "GalaxyAPIError",
    "GalaxyApp",
    "GalaxyClient",
    "GalaxyConfig",
    "GalaxyError",
    "GalaxyUser",
    "History",
    "InputHandle",
    "Job",
    "JobDocument",
    "JobError",
    "JobManager",
    "JobRecord",
    "JobRunner",
    "JobState",
    "KNOWN_EXTENSIONS",
    "LibraryError",
    "LibraryItem",
    "LibraryStore",
    "LocalJobRunner",
    "OutputHandle",
    "Page",
    "PageStore",
    "ProvenanceError",
    "ProvenanceStore",
    "SharingError",
    "Tool",
    "ToolError",
    "ToolOutput",
    "ToolParameter",
    "ToolRunContext",
    "Toolbox",
    "UPLOAD_FTP_TOOL_ID",
    "UPLOAD_HTTP_TOOL_ID",
    "Workflow",
    "build_upload_tools",
    "install_upload_tools",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowInvocation",
    "WorkflowStep",
]
