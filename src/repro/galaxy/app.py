"""GalaxyApp: the assembled Galaxy instance.

This is what a deployed "simple-galaxy-condor" host runs: users,
histories, the toolbox, the job manager (local or Condor-backed), the
workflow engine, provenance capture and pages.  The web UI is out of
scope; the programmatic API below is the stand-in the examples and
benchmarks drive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..cluster.nfs import MountTable, SimFilesystem
from ..simcore import SimContext
from .datasets import Dataset, DatasetState, History
from .jobs import Job, JobManager, JobRunner
from .pages import PageStore
from .provenance import ProvenanceStore
from .tools import Tool, Toolbox
from .workflows import Workflow, WorkflowEngine, WorkflowInvocation

Filesystem = Union[SimFilesystem, MountTable]


class GalaxyError(Exception):
    pass


@dataclass
class GalaxyUser:
    username: str
    email: str
    api_key: str
    histories: list[int] = field(default_factory=list)
    #: Globus Online username linked to this account (Sec. IV-A requires
    #: "register an account in Galaxy with the same username")
    globus_username: Optional[str] = None
    #: disk quota in bytes; None = unlimited
    quota_bytes: Optional[int] = None


@dataclass
class GalaxyConfig:
    """Instance configuration (the paper's universe of relevant knobs)."""

    file_path: str = "/galaxy/database/files"
    ftp_upload_enabled: bool = True
    http_upload_max_bytes: int = 2 * 1024**3
    brand: str = "Galaxy / Globus Online"


class GalaxyApp:
    """One running Galaxy instance."""

    def __init__(
        self,
        ctx: SimContext,
        fs: Optional[Filesystem] = None,
        config: Optional[GalaxyConfig] = None,
        runner: Optional[JobRunner] = None,
        job_overheads: Optional[tuple[float, float]] = None,
        services: Optional[dict[str, Any]] = None,
    ) -> None:
        self.ctx = ctx
        self.fs: Filesystem = fs if fs is not None else SimFilesystem("galaxy")
        self.config = config or GalaxyConfig()
        kwargs: dict[str, Any] = {}
        if job_overheads is not None:
            kwargs["prep_overhead_s"], kwargs["finalize_overhead_s"] = job_overheads
        self.toolbox = Toolbox()
        self.jobs = JobManager(
            ctx,
            self.fs,
            file_path=self.config.file_path,
            runner=runner,
            services=services,
            **kwargs,
        )
        self.provenance = ProvenanceStore(self.jobs)
        self.workflows = WorkflowEngine(ctx, self.toolbox, self.jobs)
        self.pages = PageStore()
        from .libraries import LibraryStore

        self.libraries = LibraryStore(self)
        self.users: dict[str, GalaxyUser] = {}
        self.histories: dict[int, History] = {}
        self.workflow_store: dict[str, Workflow] = {}
        self._history_ids = itertools.count(1)
        self._api_keys = itertools.count(0x1000)

    # -- users / histories ------------------------------------------------------
    def create_user(self, username: str, email: str = "") -> GalaxyUser:
        if username in self.users:
            raise GalaxyError(f"user {username!r} exists")
        user = GalaxyUser(
            username=username,
            email=email or f"{username}@example.org",
            api_key=f"key-{next(self._api_keys):x}",
        )
        self.users[username] = user
        return user

    def user(self, username: str) -> GalaxyUser:
        try:
            return self.users[username]
        except KeyError:
            raise GalaxyError(f"no such user {username!r}") from None

    def link_globus_account(self, username: str, globus_username: str) -> None:
        self.user(username).globus_username = globus_username

    def create_history(self, username: str, name: str = "Unnamed history") -> History:
        user = self.user(username)
        history = History(id=next(self._history_ids), name=name, user=username)
        self.histories[history.id] = history
        user.histories.append(history.id)
        return history

    # -- sharing (Sec. II-2: "share datasets, histories, and workflows") ---------
    def share_history(self, history: History, owner: str, with_user: str) -> None:
        if history.user != owner:
            raise GalaxyError("only the owner can share a history")
        self.user(with_user)
        history.shared_with.add(with_user)

    def import_history(
        self, history: History, as_user: str, name: Optional[str] = None
    ) -> History:
        """Copy a shared/published history into the user's workspace.

        Like Galaxy, the copy references the same underlying files —
        datasets are new history items pointing at the original payloads.
        """
        self.user(as_user)
        if not history.accessible_by(as_user):
            raise GalaxyError(
                f"{as_user!r} has no access to history {history.name!r}"
            )
        copy = self.create_history(as_user, name or f"imported: {history.name}")
        for ds in history.active():
            new_ds = copy.new_dataset(
                self.jobs._next_dataset_id, ds.name, ext=ds.ext,
                created_at=self.ctx.now,
            )
            self.jobs._next_dataset_id += 1
            new_ds.file_path = ds.file_path      # copy-on-reference
            new_ds.size = ds.size
            new_ds.state = ds.state
            new_ds.peek = ds.peek
            new_ds.metadata = dict(ds.metadata)
            new_ds.creating_job_id = ds.creating_job_id
        return copy

    # -- quotas -------------------------------------------------------------------
    def user_disk_usage(self, username: str) -> int:
        """Bytes of live datasets across the user's histories."""
        user = self.user(username)
        total = 0
        for hid in user.histories:
            history = self.histories[hid]
            total += sum(d.size for d in history.active())
        return total

    def set_user_quota(self, username: str, quota_bytes: Optional[int]) -> None:
        self.user(username).quota_bytes = quota_bytes

    def _check_quota(self, username: str) -> None:
        quota = self.user(username).quota_bytes
        if quota is None:
            return
        usage = self.user_disk_usage(username)
        if usage > quota:
            raise GalaxyError(
                f"user {username!r} is over quota "
                f"({usage} > {quota} bytes); delete datasets to continue"
            )

    # -- tools --------------------------------------------------------------------
    def install_tool(self, tool: Tool, section: str = "Tools") -> Tool:
        return self.toolbox.register(tool, section=section)

    def run_tool(
        self,
        username: str,
        history: History,
        tool_id: str,
        params: Optional[dict] = None,
        inputs: Optional[list[Dataset]] = None,
    ) -> Job:
        """Invoke a tool, as clicking *Execute* in the UI would."""
        self.user(username)
        self._check_quota(username)
        tool = self.toolbox.get(tool_id)
        return self.jobs.submit(
            tool, user=username, history=history, params=params, inputs=inputs
        )

    # -- workflows ------------------------------------------------------------------
    def save_workflow(self, workflow: Workflow) -> None:
        workflow.validate(self.toolbox)
        self.workflow_store[workflow.name] = workflow

    def run_workflow(
        self,
        username: str,
        workflow: Workflow | str,
        history: History,
        inputs: dict[int, Dataset],
    ) -> WorkflowInvocation:
        if isinstance(workflow, str):
            try:
                workflow = self.workflow_store[workflow]
            except KeyError:
                raise GalaxyError(f"no saved workflow {workflow!r}") from None
        return self.workflows.invoke(workflow, history, user=username, inputs=inputs)

    # -- convenience ------------------------------------------------------------------
    def upload_data(
        self,
        history: History,
        name: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        ext: str = "data",
    ) -> Dataset:
        """Materialise a dataset directly (admin path used by deployments)."""
        return self.jobs.import_dataset(history, name, data=data, size=size, ext=ext)

    def delete_dataset(self, dataset: Dataset, purge: bool = False) -> None:
        """Delete (hide) a dataset; ``purge`` also frees the disk payload.

        Purged datasets no longer count against the owner's quota.
        """
        dataset.deleted = True
        if purge and dataset.file_path and self.fs.exists(dataset.file_path):
            self.fs.remove(dataset.file_path)
            dataset.size = 0
            dataset.state = DatasetState.DISCARDED

    def download_dataset(self, dataset: Dataset) -> bytes:
        """The history panel's "Save" button: the dataset's raw bytes."""
        if not dataset.usable:
            raise GalaxyError(
                f"dataset {dataset.display_name!r} is {dataset.state.value}"
            )
        return self.fs.read(dataset.file_path)

    def history_panel(self, history: History) -> list[str]:
        """The right-hand history panel, as display strings."""
        return [
            f"{d.hid}: {d.name} [{d.state.value}]"
            + (f" — {d.info}" if d.info else "")
            for d in history.active()
        ]
