"""Datasets and histories: Galaxy's units of data and analysis workspaces.

Galaxy "tracks, in particular, all input, intermediate, and final
datasets" (Sec. II-2).  A :class:`Dataset` is one entry in a user's
:class:`History`; its payload lives on the deployment's (shared) file
system, and its state mirrors the job that produces it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class DatasetState(str, enum.Enum):
    NEW = "new"
    QUEUED = "queued"
    RUNNING = "running"
    OK = "ok"
    ERROR = "error"
    DISCARDED = "discarded"


#: Extensions Galaxy recognises in this reproduction.
KNOWN_EXTENSIONS = {
    "auto", "txt", "tabular", "csv", "zip", "cel", "bam", "png", "pdf",
    "html", "json", "data",
}


@dataclass
class Dataset:
    """One history item backed by a file."""

    id: int
    hid: int                      # position within its history ("1:", "2:", ...)
    name: str
    ext: str = "data"
    file_path: str = ""
    size: int = 0
    state: DatasetState = DatasetState.NEW
    info: str = ""                # tool stdout/stderr summary shown in the panel
    peek: str = ""                # first lines, shown collapsed in the panel
    metadata: dict = field(default_factory=dict)
    created_at: float = 0.0
    #: id of the job that created this dataset (provenance link)
    creating_job_id: Optional[int] = None
    deleted: bool = False

    @property
    def display_name(self) -> str:
        return f"{self.hid}: {self.name}"

    @property
    def usable(self) -> bool:
        return self.state == DatasetState.OK and not self.deleted

    def set_peek(self, data: bytes, lines: int = 5) -> None:
        try:
            text = data.decode("utf-8", errors="replace")
        except Exception:  # pragma: no cover - decode with replace cannot fail
            text = ""
        self.peek = "\n".join(text.splitlines()[:lines])


@dataclass
class History:
    """A user's analysis workspace: an ordered list of datasets."""

    id: int
    name: str
    user: str
    datasets: list[Dataset] = field(default_factory=list)
    annotation: str = ""
    tags: list[str] = field(default_factory=list)
    published: bool = False
    shared_with: set[str] = field(default_factory=set)
    _next_hid: int = 1

    def accessible_by(self, username: str) -> bool:
        return (
            self.published or username == self.user or username in self.shared_with
        )

    def new_dataset(
        self,
        dataset_id: int,
        name: str,
        ext: str = "data",
        created_at: float = 0.0,
    ) -> Dataset:
        ds = Dataset(
            id=dataset_id,
            hid=self._next_hid,
            name=name,
            ext=ext,
            created_at=created_at,
        )
        self._next_hid += 1
        self.datasets.append(ds)
        return ds

    def active(self) -> list[Dataset]:
        return [d for d in self.datasets if not d.deleted]

    def ok_datasets(self) -> list[Dataset]:
        return [d for d in self.datasets if d.usable]

    def by_hid(self, hid: int) -> Dataset:
        for d in self.datasets:
            if d.hid == hid:
                return d
        raise KeyError(f"history {self.name!r} has no item {hid}")

    def __len__(self) -> int:
        return len(self.active())
