"""Workflows: composable tool DAGs and their execution engine.

"With Galaxy's workflow editor, various tools can be configured and
composed to complete an analysis" (Sec. II-1).  A workflow is a DAG whose
nodes are either *input steps* (dataset placeholders) or *tool steps*
whose data parameters connect to upstream step outputs.  Invoking a
workflow on a history schedules each step as soon as its inputs are OK,
so independent branches run in parallel on the Condor pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from ..simcore import SimContext, SimEvent
from .datasets import Dataset, History
from .jobs import Job, JobManager, JobState
from .tools import Tool, Toolbox


class WorkflowError(Exception):
    pass


@dataclass(frozen=True)
class Connection:
    """Wire an upstream step's output into a downstream data parameter."""

    source_step: int
    source_output: str = "output"


@dataclass
class WorkflowStep:
    """One node of the DAG."""

    id: int
    type: str                   # "data_input" | "tool"
    tool_id: str = ""
    label: str = ""
    params: dict = field(default_factory=dict)
    #: data-parameter name -> Connection
    connections: dict[str, Connection] = field(default_factory=dict)


@dataclass
class Workflow:
    """An editable, shareable workflow definition."""

    name: str
    steps: dict[int, WorkflowStep] = field(default_factory=dict)
    annotation: str = ""
    tags: list[str] = field(default_factory=list)
    published: bool = False
    _next_step: int = 1

    def add_input(self, label: str = "Input dataset") -> WorkflowStep:
        step = WorkflowStep(id=self._next_step, type="data_input", label=label)
        self._next_step += 1
        self.steps[step.id] = step
        return step

    def add_step(
        self,
        tool: Tool | str,
        params: Optional[dict] = None,
        connect: Optional[dict[str, WorkflowStep | tuple[WorkflowStep, str] | Connection]] = None,
        label: str = "",
    ) -> WorkflowStep:
        tool_id = tool if isinstance(tool, str) else tool.id
        connections: dict[str, Connection] = {}
        for param, src in (connect or {}).items():
            if isinstance(src, Connection):
                connections[param] = src
            elif isinstance(src, tuple):
                connections[param] = Connection(src[0].id, src[1])
            else:
                connections[param] = Connection(src.id)
        step = WorkflowStep(
            id=self._next_step,
            type="tool",
            tool_id=tool_id,
            label=label or tool_id,
            params=dict(params or {}),
            connections=connections,
        )
        self._next_step += 1
        self.steps[step.id] = step
        return step

    # -- validation -------------------------------------------------------------
    def graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for step in self.steps.values():
            g.add_node(step.id)
        for step in self.steps.values():
            for conn in step.connections.values():
                g.add_edge(conn.source_step, step.id)
        return g

    def validate(self, toolbox: Toolbox) -> None:
        """Raise :class:`WorkflowError` for structural problems."""
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowError(f"workflow has a cycle: {cycle}")
        for step in self.steps.values():
            if step.type == "data_input":
                if step.connections:
                    raise WorkflowError(f"input step {step.id} cannot have connections")
                continue
            tool = toolbox.get(step.tool_id)  # raises ToolError if unknown
            data_params = {p.name for p in tool.data_params()}
            for param, conn in step.connections.items():
                if param not in data_params:
                    raise WorkflowError(
                        f"step {step.id}: {param!r} is not a data parameter of {tool.id}"
                    )
                src = self.steps.get(conn.source_step)
                if src is None:
                    raise WorkflowError(
                        f"step {step.id}: connection from unknown step {conn.source_step}"
                    )
                if src.type == "tool":
                    src_tool = toolbox.get(src.tool_id)
                    if all(o.name != conn.source_output for o in src_tool.outputs):
                        raise WorkflowError(
                            f"step {step.id}: {src.tool_id} has no output "
                            f"{conn.source_output!r}"
                        )
            missing = data_params - set(step.connections)
            if missing:
                raise WorkflowError(
                    f"step {step.id} ({tool.id}): unconnected data inputs {sorted(missing)}"
                )

    def input_steps(self) -> list[WorkflowStep]:
        return [s for s in self.steps.values() if s.type == "data_input"]

    def tool_steps(self) -> list[WorkflowStep]:
        return [s for s in self.steps.values() if s.type == "tool"]

    def clone(self, name: Optional[str] = None) -> "Workflow":
        """Deep copy, e.g. when a reader extracts a shared workflow."""
        import copy

        wf = copy.deepcopy(self)
        wf.name = name or f"Copy of {self.name}"
        wf.published = False
        return wf

    # -- serialisation (Galaxy's ".ga" export format, simplified) ------------
    def to_dict(self) -> dict:
        return {
            "format": "galaxy-workflow-v1",
            "name": self.name,
            "annotation": self.annotation,
            "tags": list(self.tags),
            "steps": [
                {
                    "id": s.id,
                    "type": s.type,
                    "tool_id": s.tool_id,
                    "label": s.label,
                    "params": dict(s.params),
                    "connections": {
                        param: {"step": c.source_step, "output": c.source_output}
                        for param, c in s.connections.items()
                    },
                }
                for s in sorted(self.steps.values(), key=lambda s: s.id)
            ],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, doc: dict) -> "Workflow":
        if doc.get("format") != "galaxy-workflow-v1":
            raise WorkflowError(f"not a workflow export: {doc.get('format')!r}")
        wf = cls(
            name=doc["name"],
            annotation=doc.get("annotation", ""),
            tags=list(doc.get("tags", [])),
        )
        for s in doc["steps"]:
            step = WorkflowStep(
                id=s["id"],
                type=s["type"],
                tool_id=s.get("tool_id", ""),
                label=s.get("label", ""),
                params=dict(s.get("params", {})),
                connections={
                    param: Connection(c["step"], c.get("output", "output"))
                    for param, c in s.get("connections", {}).items()
                },
            )
            wf.steps[step.id] = step
            wf._next_step = max(wf._next_step, step.id + 1)
        return wf

    @classmethod
    def from_json(cls, text: str) -> "Workflow":
        import json

        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WorkflowError(f"bad workflow JSON: {exc}") from exc
        return cls.from_dict(doc)


@dataclass
class WorkflowInvocation:
    """One run of a workflow against a history."""

    workflow: Workflow
    history: History
    jobs: dict[int, Job] = field(default_factory=dict)       # step id -> job
    step_outputs: dict[tuple[int, str], Dataset] = field(default_factory=dict)
    state: str = "running"     # running | ok | error
    done: Optional[SimEvent] = None

    def job_for(self, step: WorkflowStep) -> Job:
        return self.jobs[step.id]


class WorkflowEngine:
    """Schedules workflow steps as jobs, respecting the DAG."""

    def __init__(self, ctx: SimContext, toolbox: Toolbox, jobs: JobManager) -> None:
        self.ctx = ctx
        self.toolbox = toolbox
        self.jobs = jobs

    def invoke(
        self,
        workflow: Workflow,
        history: History,
        user: str,
        inputs: dict[int, Dataset],
    ) -> WorkflowInvocation:
        """Start a workflow run; inputs map input-step ids to datasets."""
        workflow.validate(self.toolbox)
        needed = {s.id for s in workflow.input_steps()}
        if set(inputs) != needed:
            raise WorkflowError(
                f"inputs must be supplied for steps {sorted(needed)}, got {sorted(inputs)}"
            )
        for step_id, ds in inputs.items():
            if not ds.usable:
                raise WorkflowError(f"input dataset for step {step_id} is not ok")
        inv = WorkflowInvocation(
            workflow=workflow, history=history, done=self.ctx.sim.event()
        )
        for step_id, ds in inputs.items():
            inv.step_outputs[(step_id, "output")] = ds
        self.ctx.sim.process(self._drive(inv, user), name=f"wf-{workflow.name}")
        return inv

    def when_done(self, inv: WorkflowInvocation) -> SimEvent:
        assert inv.done is not None
        return inv.done

    def _drive(self, inv: WorkflowInvocation, user: str):
        """Run each tool step in its own process: a step submits the moment
        every upstream output is OK, so independent branches overlap fully."""
        sim = self.ctx.sim
        # step id -> event that fires with True (outputs usable) or False
        step_ok: dict[int, "SimEvent"] = {}
        for step in inv.workflow.steps.values():
            step_ok[step.id] = sim.event()
        for step in inv.workflow.input_steps():
            step_ok[step.id].succeed(True)

        def run_step(step: WorkflowStep):
            upstream_ids = [c.source_step for c in step.connections.values()]
            results = yield sim.all_of([step_ok[sid] for sid in set(upstream_ids)])
            if not all(results.values()):
                inv.state = "error"
                step_ok[step.id].succeed(False)
                return
            tool = self.toolbox.get(step.tool_id)
            input_datasets = []
            params = dict(step.params)
            for param, conn in step.connections.items():
                ds = inv.step_outputs.get((conn.source_step, conn.source_output))
                if ds is None:
                    up_job = inv.jobs[conn.source_step]
                    ds = up_job.outputs[conn.source_output]
                    inv.step_outputs[(conn.source_step, conn.source_output)] = ds
                input_datasets.append(ds)
                params.pop(param, None)
            job = self.jobs.submit(
                tool, user=user, history=inv.history,
                params=params, inputs=input_datasets,
            )
            inv.jobs[step.id] = job
            yield self.jobs.when_done(job)
            if job.state == JobState.ERROR:
                inv.state = "error"
                step_ok[step.id].succeed(False)
            else:
                step_ok[step.id].succeed(True)

        procs = [
            sim.process(run_step(step), name=f"wf-step-{step.id}")
            for step in inv.workflow.tool_steps()
        ]
        if procs:
            yield sim.all_of(procs)
        if inv.state != "error":
            inv.state = "ok"
        if not inv.done.triggered:
            inv.done.succeed(inv)
