"""A REST-style Galaxy API client (the BioBlend surface, simplified).

The CVRG portal and scripted pipelines drive Galaxy programmatically;
this client authenticates with a user's API key and exposes the
endpoints that matter for the paper's workflows: histories, datasets,
tools, jobs, and workflows.  Errors surface as HTTP-ish status codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .app import GalaxyApp, GalaxyError
from .datasets import Dataset, History
from .jobs import Job
from .tools import ToolError
from .workflows import Workflow, WorkflowError


class GalaxyAPIError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


@dataclass
class JobDocument:
    id: int
    tool_id: str
    state: str
    stdout: str
    stderr: str
    outputs: dict[str, int]   # output name -> dataset id


class GalaxyClient:
    """Client bound to one API key."""

    def __init__(self, app: GalaxyApp, api_key: str) -> None:
        self.app = app
        user = next(
            (u for u in app.users.values() if u.api_key == api_key), None
        )
        if user is None:
            raise GalaxyAPIError(401, "invalid API key")
        self.user = user

    # -- histories ---------------------------------------------------------------
    def create_history(self, name: str = "Unnamed history") -> int:
        return self.app.create_history(self.user.username, name).id

    def list_histories(self) -> list[dict[str, Any]]:
        return [
            {
                "id": hid,
                "name": self.app.histories[hid].name,
                "size": sum(d.size for d in self.app.histories[hid].active()),
            }
            for hid in self.user.histories
        ]

    def _history(self, history_id: int) -> History:
        history = self.app.histories.get(history_id)
        if history is None:
            raise GalaxyAPIError(404, f"no history {history_id}")
        if not history.accessible_by(self.user.username):
            raise GalaxyAPIError(403, f"history {history_id} is not yours")
        return history

    def show_history(self, history_id: int) -> dict[str, Any]:
        history = self._history(history_id)
        return {
            "id": history.id,
            "name": history.name,
            "user": history.user,
            "datasets": [
                {
                    "id": d.id,
                    "hid": d.hid,
                    "name": d.name,
                    "ext": d.ext,
                    "state": d.state.value,
                    "size": d.size,
                }
                for d in history.active()
            ],
        }

    # -- datasets -----------------------------------------------------------------
    def _dataset(self, history: History, dataset_id: int) -> Dataset:
        for d in history.datasets:
            if d.id == dataset_id:
                return d
        raise GalaxyAPIError(404, f"no dataset {dataset_id} in history {history.id}")

    def upload(
        self,
        history_id: int,
        name: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        ext: str = "data",
    ) -> int:
        history = self._history(history_id)
        if history.user != self.user.username:
            raise GalaxyAPIError(403, "cannot write to another user's history")
        ds = self.app.upload_data(history, name, data=data, size=size, ext=ext)
        return ds.id

    def download(self, history_id: int, dataset_id: int) -> bytes:
        history = self._history(history_id)
        ds = self._dataset(history, dataset_id)
        try:
            return self.app.download_dataset(ds)
        except GalaxyError as exc:
            raise GalaxyAPIError(409, str(exc)) from exc

    # -- tools -----------------------------------------------------------------------
    def list_tools(self) -> list[dict[str, str]]:
        return [
            {"id": t.id, "name": t.name, "description": t.description}
            for t in self.app.toolbox.all_tools()
        ]

    def run_tool(
        self,
        history_id: int,
        tool_id: str,
        params: Optional[dict] = None,
        input_ids: Optional[list[int]] = None,
    ) -> JobDocument:
        history = self._history(history_id)
        if history.user != self.user.username:
            raise GalaxyAPIError(403, "cannot run tools in another user's history")
        inputs = [self._dataset(history, i) for i in (input_ids or [])]
        try:
            job = self.app.run_tool(
                self.user.username, history, tool_id, params=params, inputs=inputs
            )
        except (ToolError, GalaxyError) as exc:
            raise GalaxyAPIError(400, str(exc)) from exc
        return self._job_doc(job)

    # -- jobs -------------------------------------------------------------------------
    def _job_doc(self, job: Job) -> JobDocument:
        return JobDocument(
            id=job.id,
            tool_id=job.tool.id,
            state=job.state.value,
            stdout=job.stdout,
            stderr=job.stderr,
            outputs={name: d.id for name, d in job.outputs.items()},
        )

    def show_job(self, job_id: int) -> JobDocument:
        try:
            job = self.app.jobs.get(job_id)
        except Exception as exc:
            raise GalaxyAPIError(404, str(exc)) from exc
        if job.user != self.user.username:
            raise GalaxyAPIError(403, f"job {job_id} belongs to {job.user}")
        return self._job_doc(job)

    def when_job_done(self, job_id: int):
        """Kernel event for in-process waiting (poll-free convenience)."""
        job = self.app.jobs.get(job_id)
        if job.user != self.user.username:
            raise GalaxyAPIError(403, f"job {job_id} belongs to {job.user}")
        return self.app.jobs.when_done(job)

    # -- workflows -----------------------------------------------------------------------
    def import_workflow(self, workflow_json: str) -> str:
        try:
            wf = Workflow.from_json(workflow_json)
            self.app.save_workflow(wf)
        except (WorkflowError, ToolError) as exc:
            raise GalaxyAPIError(400, str(exc)) from exc
        return wf.name

    def export_workflow(self, name: str) -> str:
        wf = self.app.workflow_store.get(name)
        if wf is None:
            raise GalaxyAPIError(404, f"no workflow {name!r}")
        return wf.to_json()

    def invoke_workflow(
        self, name: str, history_id: int, inputs: dict[int, int]
    ) -> dict[str, Any]:
        """``inputs`` maps input-step ids to dataset ids."""
        history = self._history(history_id)
        wf = self.app.workflow_store.get(name)
        if wf is None:
            raise GalaxyAPIError(404, f"no workflow {name!r}")
        resolved = {
            step_id: self._dataset(history, ds_id)
            for step_id, ds_id in inputs.items()
        }
        try:
            inv = self.app.workflows.invoke(
                wf, history, user=self.user.username, inputs=resolved
            )
        except WorkflowError as exc:
            raise GalaxyAPIError(400, str(exc)) from exc
        return {"workflow": name, "invocation": inv}
