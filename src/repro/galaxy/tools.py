"""Tools and the toolbox.

"A tool can be any piece of software for which a command line invocation
can be constructed.  To add a new tool to Galaxy, a developer writes a
configuration file that describes how to run the tool, including detailed
specification of input and output parameters" (Sec. II-3).  Here the
configuration is a declarative dict (standing in for the tool XML), and
the command-line behaviour is a Python callable executed by the job
machinery — with a *work model* giving its simulated cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from .datasets import KNOWN_EXTENSIONS


class ToolError(Exception):
    """Tool definition or parameter validation problem."""


@dataclass(frozen=True)
class ToolParameter:
    """One input parameter of a tool."""

    name: str
    type: str = "text"           # text | integer | float | boolean | select | data
    label: str = ""
    default: Any = None
    optional: bool = False
    options: tuple = ()          # for selects
    multiple: bool = False       # for data params accepting several datasets

    _COERCERS = {
        "integer": int,
        "float": float,
        "boolean": bool,
        "text": str,
    }

    def validate(self, value: Any) -> Any:
        """Coerce and validate a supplied value; raise :class:`ToolError`."""
        if value is None:
            if self.optional or self.default is not None:
                return self.default
            raise ToolError(f"parameter {self.name!r} is required")
        if self.type == "select":
            if value not in self.options:
                raise ToolError(
                    f"parameter {self.name!r}: {value!r} not in {self.options}"
                )
            return value
        if self.type == "data":
            return value  # resolved to datasets by the job layer
        coerce = self._COERCERS.get(self.type)
        if coerce is None:
            raise ToolError(f"parameter {self.name!r} has unknown type {self.type!r}")
        try:
            if self.type == "boolean" and isinstance(value, str):
                return value.lower() in ("yes", "true", "1", "on")
            return coerce(value)
        except (TypeError, ValueError) as exc:
            raise ToolError(f"parameter {self.name!r}: {exc}") from exc


@dataclass(frozen=True)
class ToolOutput:
    """One declared output dataset."""

    name: str
    ext: str = "data"
    label: str = ""

    def __post_init__(self) -> None:
        if self.ext not in KNOWN_EXTENSIONS:
            raise ToolError(f"output {self.name!r}: unknown extension {self.ext!r}")


#: ``execute(run) -> None`` where ``run`` is a ToolRunContext (jobs module).
ExecuteFn = Callable[[Any], None]
#: ``work(params, input_sizes) -> (cpu_work, io_work)`` in m1.small-seconds.
WorkFn = Callable[[dict, Sequence[int]], tuple[float, float]]
#: ``work_batch(params, sizes) -> (cpu_work, io_work)`` arrays, where
#: ``sizes`` is an ``(n_jobs, n_inputs)`` byte matrix (a 1-D vector is
#: treated as one input per job) and both returned arrays have shape
#: ``(n_jobs,)``.
BatchWorkFn = Callable[[dict, "np.ndarray"], tuple["np.ndarray", "np.ndarray"]]


def default_work_model(params: dict, input_sizes: Sequence[int]) -> tuple[float, float]:
    """Cheap default: cost scales mildly with input volume."""
    mb = sum(input_sizes) / (1024 * 1024)
    return (5.0 + 0.5 * mb, 1.0 + 0.05 * mb)


def as_sizes_matrix(sizes: Any) -> np.ndarray:
    """Normalise batch input sizes to an ``(n_jobs, n_inputs)`` float matrix.

    Accepts a 2-D matrix (one row per job, one column per input dataset)
    or a 1-D vector (each job has a single input).
    """
    arr = np.asarray(sizes, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ToolError(f"sizes must be a 1-D or 2-D array, got ndim={arr.ndim}")
    return arr


def vectorize_work_model(work_model: WorkFn) -> BatchWorkFn:
    """Automatic batch fallback: apply a scalar work model row by row.

    The wrapper gives every tool a batch interface with identical
    semantics; tools with a native array implementation register it as
    ``work_model_batch`` and skip the per-row Python loop entirely.
    """

    def batch(params: dict, sizes: Any) -> tuple[np.ndarray, np.ndarray]:
        matrix = as_sizes_matrix(sizes)
        cpu = np.empty(matrix.shape[0], dtype=float)
        io = np.empty(matrix.shape[0], dtype=float)
        for i, row in enumerate(matrix):
            cpu[i], io[i] = work_model(params, row)
        return cpu, io

    return batch


@dataclass
class Tool:
    """A runnable Galaxy tool."""

    id: str
    name: str
    version: str = "1.0.0"
    description: str = ""
    parameters: list[ToolParameter] = field(default_factory=list)
    outputs: list[ToolOutput] = field(default_factory=list)
    execute: Optional[ExecuteFn] = None
    work_model: WorkFn = default_work_model
    #: native array-form work model; ``None`` falls back to looping the
    #: scalar ``work_model`` (see :meth:`work_batch`)
    work_model_batch: Optional[BatchWorkFn] = None
    #: software the executing node must have converged (Chef packages)
    requirements: tuple[str, ...] = ()
    hidden: bool = False

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(names) != len(set(names)):
            raise ToolError(f"tool {self.id}: duplicate parameter names")
        out_names = [o.name for o in self.outputs]
        if len(out_names) != len(set(out_names)):
            raise ToolError(f"tool {self.id}: duplicate output names")

    def work_batch(self, params: dict, sizes: Any) -> tuple[np.ndarray, np.ndarray]:
        """Batched work model: ``(cpu_work, io_work)`` arrays for N jobs.

        ``sizes`` is an ``(n_jobs, n_inputs)`` byte matrix (or a 1-D
        vector for single-input jobs).  Uses the tool's native
        ``work_model_batch`` when registered, otherwise loops the scalar
        ``work_model`` per row — both paths return identical arrays.
        """
        matrix = as_sizes_matrix(sizes)
        if self.work_model_batch is not None:
            cpu, io = self.work_model_batch(params, matrix)
        else:
            cpu, io = vectorize_work_model(self.work_model)(params, matrix)
        cpu = np.asarray(cpu, dtype=float)
        io = np.asarray(io, dtype=float)
        n = matrix.shape[0]
        if cpu.shape != (n,) or io.shape != (n,):
            raise ToolError(
                f"tool {self.id}: batch work model returned shapes "
                f"{cpu.shape}/{io.shape}, expected ({n},)"
            )
        return cpu, io

    @classmethod
    def from_config(
        cls,
        config: dict,
        execute: Optional[ExecuteFn] = None,
        work_model: Optional[WorkFn] = None,
        work_model_batch: Optional[BatchWorkFn] = None,
    ) -> "Tool":
        """Build a tool from a declarative config dict (the "XML")."""
        try:
            tool_id = config["id"]
            name = config["name"]
        except KeyError as exc:
            raise ToolError(f"tool config missing {exc}") from exc
        params = [ToolParameter(**p) for p in config.get("parameters", [])]
        outputs = [ToolOutput(**o) for o in config.get("outputs", [])]
        return cls(
            id=tool_id,
            name=name,
            version=config.get("version", "1.0.0"),
            description=config.get("description", ""),
            parameters=params,
            outputs=outputs,
            execute=execute,
            work_model=work_model or default_work_model,
            work_model_batch=work_model_batch,
            requirements=tuple(config.get("requirements", ())),
        )

    def param(self, name: str) -> ToolParameter:
        for p in self.parameters:
            if p.name == name:
                return p
        raise ToolError(f"tool {self.id} has no parameter {name!r}")

    def data_params(self) -> list[ToolParameter]:
        return [p for p in self.parameters if p.type == "data"]

    def validate_params(self, raw: dict) -> dict:
        """Validate a raw parameter dict into coerced values."""
        unknown = set(raw) - {p.name for p in self.parameters}
        if unknown:
            raise ToolError(f"tool {self.id}: unknown parameters {sorted(unknown)}")
        out = {}
        for p in self.parameters:
            if p.type == "data":
                # Data parameters arrive as the job's ``inputs`` list, not
                # through the parameter dict; keep whatever reference exists.
                if p.name in raw:
                    out[p.name] = raw[p.name]
                continue
            out[p.name] = p.validate(raw.get(p.name))
        return out

    def output(self, name: str) -> ToolOutput:
        for o in self.outputs:
            if o.name == name:
                return o
        raise ToolError(f"tool {self.id} has no output {name!r}")


class Toolbox:
    """The tool panel: sections of registered tools."""

    def __init__(self) -> None:
        self._tools: dict[str, Tool] = {}
        self._sections: dict[str, list[str]] = {}

    def register(self, tool: Tool, section: str = "Tools") -> Tool:
        if tool.id in self._tools:
            raise ToolError(f"tool id {tool.id!r} already registered")
        self._tools[tool.id] = tool
        self._sections.setdefault(section, []).append(tool.id)
        return tool

    def get(self, tool_id: str) -> Tool:
        try:
            return self._tools[tool_id]
        except KeyError:
            raise ToolError(f"no such tool {tool_id!r}") from None

    def __contains__(self, tool_id: str) -> bool:
        return tool_id in self._tools

    def sections(self) -> dict[str, list[Tool]]:
        return {
            section: [self._tools[tid] for tid in ids]
            for section, ids in self._sections.items()
        }

    def all_tools(self) -> list[Tool]:
        return list(self._tools.values())

    def search(self, query: str) -> list[Tool]:
        """Tool-panel search over id, name and description."""
        q = query.lower()
        return [
            t
            for t in self._tools.values()
            if q in t.id.lower() or q in t.name.lower() or q in t.description.lower()
        ]

    def __len__(self) -> int:
        return len(self._tools)
