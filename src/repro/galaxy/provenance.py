"""Provenance: enough recorded detail to repeat any analysis.

"Galaxy supports reproducibility by capturing sufficient information
about every step in a computational analysis, so that the analysis can be
repeated in the future ... all input, intermediate, and final datasets,
as well as the parameters and the execution order of each step"
(Sec. II-2).  The store listens to the job manager and records immutable
job records; ``lineage`` walks a dataset's ancestry and ``rerun``
re-submits a recorded job with identical parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .datasets import Dataset, History
from .jobs import Job, JobManager


class ProvenanceError(Exception):
    pass


@dataclass(frozen=True)
class JobRecord:
    """Immutable record of one executed job."""

    job_id: int
    tool_id: str
    tool_version: str
    user: str
    params: tuple[tuple[str, object], ...]
    input_ids: tuple[int, ...]
    input_checksums: tuple[str, ...]
    output_ids: tuple[int, ...]
    state: str
    machine: str
    create_time: float
    end_time: Optional[float]

    @property
    def params_dict(self) -> dict:
        return dict(self.params)


class ProvenanceStore:
    """Append-only job history wired to a :class:`JobManager`."""

    def __init__(self, jobs: JobManager) -> None:
        self.jobs = jobs
        self.records: dict[int, JobRecord] = {}
        #: dataset id -> creating job id
        self._creator: dict[int, int] = {}
        jobs.listeners.append(self._on_job_done)

    def _on_job_done(self, job: Job) -> None:
        checksums = []
        for ds in job.inputs:
            try:
                checksums.append(self.jobs.fs.stat(ds.file_path).checksum)
            except Exception:
                checksums.append("?")
        record = JobRecord(
            job_id=job.id,
            tool_id=job.tool.id,
            tool_version=job.tool.version,
            user=job.user,
            params=tuple(sorted((k, v) for k, v in job.params.items())),
            input_ids=tuple(d.id for d in job.inputs),
            input_checksums=tuple(checksums),
            output_ids=tuple(d.id for d in job.outputs.values()),
            state=job.state.value,
            machine=job.machine,
            create_time=job.create_time,
            end_time=job.end_time,
        )
        self.records[job.id] = record
        for out_id in record.output_ids:
            self._creator[out_id] = job.id

    # -- queries ---------------------------------------------------------------
    def record_for_job(self, job_id: int) -> JobRecord:
        try:
            return self.records[job_id]
        except KeyError:
            raise ProvenanceError(f"no record for job {job_id}") from None

    def creating_job(self, dataset: Dataset) -> Optional[JobRecord]:
        job_id = self._creator.get(dataset.id)
        return self.records.get(job_id) if job_id is not None else None

    def lineage(self, dataset: Dataset, history: History) -> list[JobRecord]:
        """Job chain that produced ``dataset``, oldest first."""
        chain: list[JobRecord] = []
        seen: set[int] = set()
        frontier = [dataset.id]
        while frontier:
            ds_id = frontier.pop()
            job_id = self._creator.get(ds_id)
            if job_id is None or job_id in seen:
                continue
            seen.add(job_id)
            rec = self.records[job_id]
            chain.append(rec)
            frontier.extend(rec.input_ids)
        return sorted(chain, key=lambda r: r.create_time)

    def export_history(self, history: History) -> list[dict]:
        """Serialisable provenance of a whole history (what a Page embeds)."""
        out = []
        for ds in history.datasets:
            rec = self.creating_job(ds)
            out.append(
                {
                    "dataset_id": ds.id,
                    "hid": ds.hid,
                    "name": ds.name,
                    "state": ds.state.value,
                    "created_by": None
                    if rec is None
                    else {
                        "tool_id": rec.tool_id,
                        "tool_version": rec.tool_version,
                        "params": rec.params_dict,
                        "inputs": list(rec.input_ids),
                    },
                }
            )
        return out

    # -- reproduction ----------------------------------------------------------
    def rerun(self, record: JobRecord, history: History, toolbox) -> Job:
        """Repeat a recorded analysis step with identical parameters.

        Input datasets are looked up by id in the target history; they must
        still exist and be OK (Galaxy behaves the same way).
        """
        tool = toolbox.get(record.tool_id)
        by_id = {d.id: d for d in history.datasets}
        inputs = []
        for ds_id in record.input_ids:
            ds = by_id.get(ds_id)
            if ds is None or not ds.usable:
                raise ProvenanceError(
                    f"cannot rerun job {record.job_id}: input dataset {ds_id} unavailable"
                )
            inputs.append(ds)
        return self.jobs.submit(
            tool,
            user=record.user,
            history=history,
            params=record.params_dict,
            inputs=inputs,
        )
