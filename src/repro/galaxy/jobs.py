"""Job execution: tool invocations, runners (local and Condor), finalization.

A job's lifecycle: NEW -> QUEUED (outputs appear grey in the history) ->
RUNNING -> OK/ERROR.  "Galaxy jobs are transparently assigned to Condor
worker nodes for parallel execution" (Sec. III-B) through
:class:`CondorJobRunner`; deployments without Condor use
:class:`LocalJobRunner`.

Tool *timing* comes from the tool's work model (or, for service-backed
tools such as the Globus Transfer tools, from the tool's own simulation
process); tool *outputs* come from running the tool's real ``execute``
code against input bytes on the simulated filesystem.
"""

from __future__ import annotations

import enum
import inspect
import posixpath
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from .. import calibration
from ..cluster.condor import CondorPool, MachineAd
from ..cluster.nfs import MountTable, SimFilesystem
from ..simcore import Resource, SimContext, SimEvent
from .datasets import Dataset, DatasetState, History
from .tools import Tool, ToolError

Filesystem = Union[SimFilesystem, MountTable]


class JobError(Exception):
    pass


class JobState(str, enum.Enum):
    NEW = "new"
    QUEUED = "queued"
    RUNNING = "running"
    OK = "ok"
    ERROR = "error"


@dataclass
class Job:
    """One tool invocation."""

    id: int
    tool: Tool
    user: str
    history: History
    params: dict
    inputs: list[Dataset]
    outputs: dict[str, Dataset]
    state: JobState = JobState.NEW
    stdout: str = ""
    stderr: str = ""
    machine: str = ""
    create_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    done: Optional[SimEvent] = None
    #: obs causal carrier: id of the job's galaxy.job span, cited as the
    #: cause of stage-in/out, compute, and Condor queue spans downstream.
    #: None whenever observability is disabled.
    obs_span_id: Optional[int] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_time is None or self.start_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def wall_s(self) -> Optional[float]:
        """Submission-to-finish time, the quantity the paper reports."""
        if self.end_time is None:
            return None
        return self.end_time - self.create_time


class InputHandle:
    """A tool's read view of one input dataset."""

    def __init__(self, dataset: Dataset, fs: Filesystem) -> None:
        self.dataset = dataset
        self._fs = fs

    @property
    def name(self) -> str:
        return self.dataset.name

    @property
    def ext(self) -> str:
        return self.dataset.ext

    @property
    def size(self) -> int:
        return self.dataset.size

    @property
    def path(self) -> str:
        return self.dataset.file_path

    @property
    def metadata(self) -> dict:
        return self.dataset.metadata

    def read(self) -> bytes:
        return self._fs.read(self.dataset.file_path)


class OutputHandle:
    """A tool's write view of one output dataset."""

    def __init__(self, dataset: Dataset, fs: Filesystem, now: float) -> None:
        self.dataset = dataset
        self._fs = fs
        self._now = now
        self.written = False

    def write(self, data: Optional[bytes] = None, size: Optional[int] = None) -> None:
        node = self._fs.write(
            self.dataset.file_path, data=data, size=size, mtime=self._now
        )
        self.dataset.size = node.size
        if data is not None:
            self.dataset.set_peek(data)
        self.written = True

    def adopt(self) -> None:
        """Claim a payload an external mover (e.g. Globus Transfer) already
        delivered to this dataset's file path."""
        node = self._fs.stat(self.dataset.file_path)
        self.dataset.size = node.size
        if node.data is not None:
            self.dataset.set_peek(node.data)
        self.written = True

    def set_name(self, name: str) -> None:
        self.dataset.name = name

    def set_metadata(self, **kv: Any) -> None:
        self.dataset.metadata.update(kv)

    def set_info(self, info: str) -> None:
        self.dataset.info = info


class ToolRunContext:
    """Everything a tool's ``execute`` sees."""

    def __init__(
        self,
        ctx: SimContext,
        job: Job,
        fs: Filesystem,
        services: Optional[dict[str, Any]] = None,
    ) -> None:
        self.ctx = ctx
        self.job = job
        self.params = job.params
        self.user = job.user
        self.inputs = [InputHandle(d, fs) for d in job.inputs]
        self.outputs = {
            name: OutputHandle(d, fs, ctx.now) for name, d in job.outputs.items()
        }
        #: deployment services injected by the app (transfer client factory, ...)
        self.services = services or {}
        self._log_lines: list[str] = []

    def input(self, index: int = 0) -> InputHandle:
        return self.inputs[index]

    def output(self, name: str) -> OutputHandle:
        try:
            return self.outputs[name]
        except KeyError:
            raise ToolError(f"tool declares no output {name!r}") from None

    def log(self, line: str) -> None:
        self._log_lines.append(line)

    @property
    def stdout(self) -> str:
        return "\n".join(self._log_lines)


# ---------------------------------------------------------------------------
# Runners
# ---------------------------------------------------------------------------


class JobRunner:
    """Interface: time the compute phase of a job."""

    def dispatch(self, job: Job, cpu_work: float, io_work: float):
        """Simulation sub-process; returns the executing machine's name."""
        raise NotImplementedError  # pragma: no cover


class LocalJobRunner(JobRunner):
    """Runs jobs on the Galaxy server itself, ``cores`` at a time."""

    def __init__(
        self,
        ctx: SimContext,
        cpu_factor: float = 1.0,
        io_factor: float = 1.0,
        cores: int = 1,
        name: str = "galaxy-server",
    ) -> None:
        self.ctx = ctx
        self.cpu_factor = cpu_factor
        self.io_factor = io_factor
        self.name = name
        self._slots = Resource(ctx.sim, capacity=cores)

    def dispatch(self, job: Job, cpu_work: float, io_work: float):
        req = self._slots.request()
        yield req
        try:
            yield self.ctx.sim.timeout(
                cpu_work / self.cpu_factor + io_work / self.io_factor
            )
        finally:
            req.release()
        return self.name


class CondorJobRunner(JobRunner):
    """Submits compute to the deployment's Condor pool.

    Tool software requirements become Condor machine requirements: a job
    only matches machines whose Chef state has the packages converged.
    """

    def __init__(self, ctx: SimContext, pool: CondorPool) -> None:
        self.ctx = ctx
        self.pool = pool

    @staticmethod
    def _requirements_for(tool: Tool) -> Optional[Callable[[MachineAd], bool]]:
        needed = set(tool.requirements)
        if not needed:
            return None

        def req(machine: MachineAd) -> bool:
            if machine.node is None:
                return True
            return needed <= machine.node.chef.installed_software

        return req

    def dispatch(self, job: Job, cpu_work: float, io_work: float):
        cjob = self.pool.submit(
            cpu_work=cpu_work,
            io_work=io_work,
            owner=job.user,
            requirements=self._requirements_for(job.tool),
            cause=job.obs_span_id,
        )
        result = yield self.pool.when_done(cjob)
        return result.machine_name


# ---------------------------------------------------------------------------
# Manager
# ---------------------------------------------------------------------------


class JobManager:
    """Creates, schedules and finalises jobs."""

    def __init__(
        self,
        ctx: SimContext,
        fs: Filesystem,
        file_path: str = "/galaxy/database/files",
        runner: Optional[JobRunner] = None,
        prep_overhead_s: float = calibration.JOB_PREP_OVERHEAD_S,
        finalize_overhead_s: float = calibration.JOB_FINALIZE_OVERHEAD_S,
        services: Optional[dict[str, Any]] = None,
    ) -> None:
        self.ctx = ctx
        self.fs = fs
        self.file_path = file_path
        self.runner = runner if runner is not None else LocalJobRunner(ctx)
        self.prep_overhead_s = prep_overhead_s
        self.finalize_overhead_s = finalize_overhead_s
        #: shared-storage backend pricing per-job stage-in/out (None or an
        #: NFS backend charges nothing: job I/O lives in the work models)
        self.storage = None
        self.services = dict(services or {})
        self.jobs: dict[int, Job] = {}
        self._next_job_id = 1
        self._next_dataset_id = 1
        #: concurrent explicit stage-in/out operations (obs gauge series)
        self._staging_active = 0
        self.fs.mkdirs(file_path)
        #: observers called with each job reaching a terminal state
        self.listeners: list[Callable[[Job], None]] = []

    # -- dataset plumbing -----------------------------------------------------
    def new_dataset(self, history: History, name: str, ext: str) -> Dataset:
        ds = history.new_dataset(
            self._next_dataset_id, name, ext=ext, created_at=self.ctx.now
        )
        self._next_dataset_id += 1
        ds.file_path = posixpath.join(self.file_path, f"dataset_{ds.id}.dat")
        return ds

    def import_dataset(
        self,
        history: History,
        name: str,
        data: Optional[bytes] = None,
        size: Optional[int] = None,
        ext: str = "data",
    ) -> Dataset:
        """Directly materialise an OK dataset (admin/test convenience)."""
        ds = self.new_dataset(history, name, ext)
        node = self.fs.write(ds.file_path, data=data, size=size, mtime=self.ctx.now)
        ds.size = node.size
        if data is not None:
            ds.set_peek(data)
        ds.state = DatasetState.OK
        return ds

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        tool: Tool,
        user: str,
        history: History,
        params: Optional[dict] = None,
        inputs: Optional[list[Dataset]] = None,
    ) -> Job:
        inputs = list(inputs or [])
        for ds in inputs:
            if not ds.usable:
                raise JobError(
                    f"input dataset {ds.display_name!r} is {ds.state.value}, not ok"
                )
        validated = tool.validate_params(params or {})
        outputs: dict[str, Dataset] = {}
        for out in tool.outputs:
            ds = self.new_dataset(
                history, out.label or f"{tool.name} on data", ext=out.ext
            )
            ds.state = DatasetState.QUEUED
            outputs[out.name] = ds
        job = Job(
            id=self._next_job_id,
            tool=tool,
            user=user,
            history=history,
            params=validated,
            inputs=inputs,
            outputs=outputs,
            create_time=self.ctx.now,
            done=self.ctx.sim.event(),
        )
        self._next_job_id += 1
        self.jobs[job.id] = job
        for ds in outputs.values():
            ds.creating_job_id = job.id
        job.state = JobState.QUEUED
        self.ctx.log("galaxy", "job-submit", job=job.id, tool=tool.id, user=user)
        obs = self.ctx.obs
        if obs.enabled:
            job.obs_span_id = obs.start(
                "galaxy.job", track=f"galaxy/job-{job.id}", job=job.id, tool=tool.id
            ).id
            obs.counter("galaxy.jobs_submitted").inc()
        self.ctx.sim.process(self._run(job), name=f"job-{job.id}")
        return job

    def when_done(self, job: Job) -> SimEvent:
        assert job.done is not None
        return job.done

    def get(self, job_id: int) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobError(f"no such job {job_id}") from None

    # -- execution -------------------------------------------------------------------
    def _run(self, job: Job):
        tool = job.tool
        yield self.ctx.sim.timeout(self.prep_overhead_s)
        job.state = JobState.RUNNING
        job.start_time = self.ctx.now
        obs = self.ctx.obs
        if obs.enabled:
            # nested under galaxy.job: the compute phase after prep
            obs.start(
                "galaxy.job.run",
                track=f"galaxy/job-{job.id}",
                cause=job.obs_span_id,
                job=job.id,
            )
        for ds in job.outputs.values():
            ds.state = DatasetState.RUNNING
        services = dict(self.services)
        services["runner"] = self.runner
        run = ToolRunContext(self.ctx, job, self.fs, services=services)
        try:
            if tool.execute is None:
                raise ToolError(f"tool {tool.id} has no execute implementation")
            if inspect.isgeneratorfunction(tool.execute):
                # A process-style tool (e.g. the Globus Transfer tools): the
                # tool's own simulation process defines its duration.  It
                # runs on the Galaxy server, not the Condor pool.
                yield from tool.execute(run)
                if not job.machine:
                    job.machine = "galaxy-server"
            else:
                # A work-model tool: the runner times the compute (locally
                # or on Condor), then the real tool body produces outputs.
                cpu, io = tool.work_model(
                    job.params, [d.size for d in job.inputs]
                )
                # Explicit stage-in for backends without a worker-side
                # namespace.  Zero-cost backends (NFS) schedule no event
                # at all, keeping the default sim JSON byte-identical.
                if self.storage is not None:
                    stage_in = self.storage.stage_in_seconds(
                        [(d.file_path, d.size) for d in job.inputs]
                    )
                    if stage_in > 0.0:
                        span = None
                        if obs.enabled:
                            span = obs.start(
                                "galaxy.stage_in",
                                track=f"galaxy/job-{job.id}",
                                cause=job.obs_span_id,
                                job=job.id,
                                files=len(job.inputs),
                            )
                            self._staging_active += 1
                            obs.series("galaxy.staging_active").record(
                                self._staging_active
                            )
                        yield self.ctx.sim.timeout(stage_in)
                        if span is not None:
                            obs.finish(span)
                            self._staging_active -= 1
                            obs.series("galaxy.staging_active").record(
                                self._staging_active
                            )
                machine = yield from self.runner.dispatch(job, cpu, io)
                job.machine = machine or "unknown"
                tool.execute(run)
                if self.storage is not None:
                    stage_out = self.storage.stage_out_seconds(
                        [(d.file_path, d.size) for d in job.outputs.values()]
                    )
                    if stage_out > 0.0:
                        span = None
                        if obs.enabled:
                            span = obs.start(
                                "galaxy.stage_out",
                                track=f"galaxy/job-{job.id}",
                                cause=job.obs_span_id,
                                job=job.id,
                                files=len(job.outputs),
                            )
                            self._staging_active += 1
                            obs.series("galaxy.staging_active").record(
                                self._staging_active
                            )
                        yield self.ctx.sim.timeout(stage_out)
                        if span is not None:
                            obs.finish(span)
                            self._staging_active -= 1
                            obs.series("galaxy.staging_active").record(
                                self._staging_active
                            )
        except Exception as exc:  # noqa: BLE001 - job errors surface in the UI
            self._finish_error(job, str(exc), run)
            return
        yield self.ctx.sim.timeout(self.finalize_overhead_s)
        self._finish_ok(job, run)

    def _finish_ok(self, job: Job, run: ToolRunContext) -> None:
        job.stdout = run.stdout
        for name, handle in run.outputs.items():
            ds = job.outputs[name]
            if not handle.written:
                self._finish_error(
                    job, f"tool produced no data for output {name!r}", run
                )
                return
            ds.state = DatasetState.OK
        job.state = JobState.OK
        job.end_time = self.ctx.now
        self.ctx.log("galaxy", "job-ok", job=job.id, machine=job.machine)
        obs = self.ctx.obs
        if obs.enabled:
            obs.finish_open(f"galaxy/job-{job.id}")
            obs.counter("galaxy.jobs_ok").inc()
            obs.histogram("galaxy.job_wall_s").observe(job.wall_s or 0.0)
        self._notify(job)

    def _finish_error(self, job: Job, message: str, run: ToolRunContext) -> None:
        job.state = JobState.ERROR
        job.stderr = message
        job.stdout = run.stdout
        job.end_time = self.ctx.now
        for ds in job.outputs.values():
            ds.state = DatasetState.ERROR
            ds.info = message
        self.ctx.log("galaxy", "job-error", job=job.id, error=message)
        obs = self.ctx.obs
        if obs.enabled:
            obs.finish_open(f"galaxy/job-{job.id}", status="error", error=message)
            obs.counter("galaxy.jobs_error").inc()
        self._notify(job)

    def _notify(self, job: Job) -> None:
        for listener in self.listeners:
            listener(job)
        if job.done is not None and not job.done.triggered:
            job.done.succeed(job)


