"""Replay: verify a bundle byte-for-byte or run it counterfactually.

Identity replay (the default) rebuilds the bundled scenario — same specs,
same seeds, same scheduler/dispatch — runs it in-process through the
benchmark harness, and compares the replayed ``sim_json()`` against the
bundled sim section *as bytes*.  Equal means the run is reproducible
infrastructure; unequal produces a structured first-divergence report
(see :mod:`repro.reporting.divergence`), never a silent pass.

Counterfactual replay (``overrides``) re-runs the same scenario under
altered knobs — a different instance type, scheduler, dispatch mode, or
seed — and reports per-metric deltas instead of demanding byte identity.
Scheduler/dispatch counterfactuals double as equivalence proofs: their
comparison tables are all-zero by construction.

This is also the standing safety gate the ROADMAP wants before
multi-process sharding surgery: any kernel change that breaks
reproduction of a committed bundle fails here with the exact JSON path
that diverged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .. import calibration
from ..bench.harness import BenchSpec, BenchSuite, run_suite
from ..obs.tracediff import (
    SpanDivergence,
    first_span_divergence,
    render_span_divergence,
)
from ..reporting.divergence import (
    Divergence,
    comparison_rows,
    first_divergence,
    render_comparison,
    render_divergence,
)
from .bundle import BundleError, ProvenanceBundle, content_digest

#: counterfactual knobs ``--override`` accepts, and how each applies
OVERRIDE_KEYS = ("instance_type", "scheduler", "dispatch", "seed")


def verify_bundle(bundle: ProvenanceBundle) -> None:
    """Integrity + calibration checks; raises :class:`BundleError`.

    Order matters for error attribution: per-section content digests
    first (so corrupting a section names that section), then the
    top-level digest, then calibration internal consistency and drift
    against the live code.
    """
    stored_sections = bundle.stored_section_digests
    if not isinstance(stored_sections, dict):
        raise BundleError(
            "bundle.section-digest", "bundle carries no section_digests map"
        )
    computed = bundle.section_digests()
    for name, digest in computed.items():
        stored = stored_sections.get(name)
        if stored != digest:
            raise BundleError(
                "bundle.section-digest",
                f"section {name!r} does not match its recorded digest"
                f" (stored {str(stored)[:12]}..., content {digest[:12]}...)",
                section=name,
                detail={"stored": stored, "computed": digest},
            )
    top = content_digest(computed)
    if bundle.stored_digest != top:
        raise BundleError(
            "bundle.digest",
            f"bundle digest mismatch (stored {str(bundle.stored_digest)[:12]}...,"
            f" content {top[:12]}...)",
            detail={"stored": bundle.stored_digest, "computed": top},
        )
    # calibration: the section must agree with itself...
    constants = bundle.calibration.get("constants")
    claimed = bundle.calibration.get("digest")
    if not isinstance(constants, dict) or content_digest(constants) != claimed:
        raise BundleError(
            "calibration.internal",
            "calibration constants do not match the section's own digest",
            section="calibration",
        )
    # ...and with the code that is about to replay it
    live = calibration.snapshot()
    if claimed != calibration.digest():
        drifted = sorted(
            k
            for k in set(constants) | set(live)
            if constants.get(k) != live.get(k)
        )
        first = drifted[0] if drifted else "?"
        raise BundleError(
            "calibration.drift",
            f"bundle calibration differs from the live code"
            f" ({len(drifted)} constant(s), first: {first!r} ="
            f" {constants.get(first)!r} bundled vs {live.get(first)!r} live)",
            section="calibration",
            detail={"constants": drifted},
        )


def parse_overrides(pairs: list[str]) -> dict:
    """``KEY=VALUE`` strings -> typed override mapping; raises BundleError."""
    out: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key or not value.strip():
            raise BundleError(
                "override.unknown", f"override {pair!r} is not KEY=VALUE"
            )
        if key not in OVERRIDE_KEYS:
            raise BundleError(
                "override.unknown",
                f"unsupported override {key!r}; choose from {OVERRIDE_KEYS}",
            )
        out[key] = int(value) if key == "seed" else value.strip()
    return out


def rebuild_suite(
    bundle: ProvenanceBundle, overrides: Optional[dict] = None
) -> BenchSuite:
    """The bundled scenario as a runnable suite, seeds re-applied.

    Overrides patch spec params in place: ``seed`` replaces every seed
    the seeds section lists, ``instance_type`` every param of that name.
    Scheduler/dispatch overrides are run-time knobs, not spec params —
    :func:`replay` passes them to the harness.
    """
    overrides = overrides or {}
    scenario = bundle.scenario
    try:
        suite_name = scenario["suite"]
        spec_docs = scenario["specs"]
        specs = []
        for doc in spec_docs:
            params = dict(doc.get("params") or {})
            name = doc["name"]
            if name in bundle.seeds:
                params["seed"] = bundle.seeds[name]
            if "seed" in overrides and "seed" in params:
                params["seed"] = overrides["seed"]
            if "instance_type" in overrides and "instance_type" in params:
                params["instance_type"] = overrides["instance_type"]
            specs.append(
                BenchSpec(
                    name=name,
                    task=doc["task"],
                    params=params,
                    timeout_s=doc.get("timeout_s"),
                )
            )
    except (KeyError, TypeError) as exc:
        raise BundleError(
            "scenario.malformed",
            f"scenario section cannot rebuild a suite: {exc!r}",
            section="scenario",
        ) from exc
    if not specs:
        raise BundleError(
            "scenario.malformed", "scenario lists no specs", section="scenario"
        )
    return BenchSuite(
        suite_name, f"replay of bundled suite {suite_name!r}", tuple(specs)
    )


@dataclass
class ReplayReport:
    """Outcome of one replay: identity verdict or counterfactual deltas."""

    mode: str                      # "verify" | "counterfactual"
    suite: str
    scheduler: str
    dispatch: str
    overrides: dict = field(default_factory=dict)
    verified: Optional[bool] = None
    divergence: Optional[Divergence] = None
    #: first recorded *span* that moved (trace-level localization of the
    #: numeric divergence above; None when spans matched or none bundled)
    span_divergence: Optional[SpanDivergence] = None
    replay_ok: bool = True         # every replayed task returned ok
    comparison: list[dict] = field(default_factory=list)
    tasks: int = 0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "suite": self.suite,
            "scheduler": self.scheduler,
            "dispatch": self.dispatch,
            "overrides": dict(self.overrides),
            "verified": self.verified,
            "divergence": self.divergence.to_dict() if self.divergence else None,
            "span_divergence": self.span_divergence.to_dict()
            if self.span_divergence
            else None,
            "replay_ok": self.replay_ok,
            "comparison": list(self.comparison),
            "tasks": self.tasks,
        }

    def render(self) -> str:
        head = (
            f"replay of suite {self.suite!r}: {self.tasks} spec(s),"
            f" scheduler={self.scheduler}, dispatch={self.dispatch}"
        )
        if self.mode == "verify":
            if self.verified:
                return f"{head}\nVERIFIED: replayed sim JSON is byte-identical"
            lines = [head, "DIVERGED: replay did not reproduce the bundled run"]
            if self.span_divergence is not None:
                lines.append(render_span_divergence(self.span_divergence))
            if self.divergence is not None:
                lines.append(render_divergence(self.divergence))
            return "\n".join(lines)
        lines = [head, f"counterfactual overrides: {self.overrides}"]
        if not self.replay_ok:
            lines.append("WARNING: some replayed tasks failed; deltas are partial")
        lines.append(render_comparison(self.comparison))
        return "\n".join(lines)


def replay(
    bundle: ProvenanceBundle,
    overrides: Optional[dict] = None,
    verify: bool = True,
    workers: int = 1,
) -> ReplayReport:
    """Re-execute a bundle; identity-verify or compare counterfactually.

    ``verify=True`` (the default) runs :func:`verify_bundle` first, so a
    corrupted bundle never reaches the simulator.  ``workers`` feeds the
    harness fan-out; the merge is spec-order deterministic, so identity
    verification is unaffected by parallelism.
    """
    if verify:
        verify_bundle(bundle)
    overrides = dict(overrides or {})
    scenario = bundle.scenario
    scheduler = overrides.get("scheduler", scenario.get("scheduler"))
    dispatch = overrides.get("dispatch", scenario.get("dispatch"))
    suite = rebuild_suite(bundle, overrides)
    counterfactual = bool(overrides)
    # Identity verification of a bundle that carries spans records them
    # on the replay too: the obs-on sim JSON is byte-identical to obs-off
    # (CI pins this), so one run serves both the numeric byte-compare and
    # the structural span diff that *names* the first operation to move.
    replay_obs = not counterfactual and bool(bundle.spans)
    result = run_suite(
        suite, workers=workers, scheduler=scheduler, dispatch=dispatch, obs=replay_obs
    )
    report = ReplayReport(
        mode="counterfactual" if counterfactual else "verify",
        suite=suite.name,
        scheduler=result.scheduler,
        dispatch=result.dispatch,
        overrides=overrides,
        replay_ok=result.ok,
        tasks=len(result.tasks),
    )
    if not counterfactual:
        expected, actual = bundle.sim_json(), result.sim_json()
        sim_ok = expected == actual
        if replay_obs:
            report.span_divergence = first_span_divergence(
                bundle.spans, result.obs_docs()
            )
        report.verified = sim_ok and report.span_divergence is None
        if not sim_ok:
            report.divergence = first_divergence(bundle.sim, result.sim_dict())
            if report.divergence is None:
                # semantically equal but not byte-equal (should not
                # happen with canonical writers; still never pass silently)
                report.divergence = Divergence(
                    "$", "<byte-level formatting>", "<byte-level formatting>"
                )
        return report

    # counterfactual: pair payloads by spec name and diff the numbers
    base_payloads = {
        t["name"]: t.get("payload") for t in bundle.sim.get("tasks", ())
    }
    rows: list[dict] = []
    for task in result.sim_dict()["tasks"]:
        base = base_payloads.get(task["name"])
        new = task.get("payload")
        if not isinstance(base, dict) or not isinstance(new, dict):
            continue
        for row in comparison_rows(base, new):
            rows.append({**row, "metric": f"{task['name']}:{row['metric']}"})
    report.comparison = json.loads(json.dumps(rows))
    return report
