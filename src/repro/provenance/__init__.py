"""Provenance-complete replay: bundles, verification, counterfactuals.

The observability subsystem records what a run *did*; this package closes
the loop by recording everything needed to *do it again* and prove the
two runs match.  A :class:`ProvenanceBundle` is a single self-describing
JSON document with five content-digested sections:

* ``calibration`` — the named constants in :mod:`repro.calibration` plus
  their digest, so replays on drifted calibration fail loudly;
* ``scenario`` — the benchmark suite spec (task names, params,
  scheduler, dispatch): the deterministic reconstruction recipe;
* ``seeds`` — the RNG seeds, lifted out as their own section so seed
  tampering is a first-class detectable corruption;
* ``topology`` — the deployed topology/update specs, captured via
  ``obs.annotate`` hooks in the deployer;
* ``sim`` — the host-independent simulation output the replay must
  reproduce byte-identically.

``gp-replay`` (:mod:`repro.provenance.cli`) verifies bundle integrity,
re-executes the scenario, and either proves byte-identity (exit 0),
reports the first structured divergence (exit 1), or — with
``--override instance_type=... / scheduler=... / dispatch=... / seed=...``
— runs the same trace under altered knobs and emits a makespan/cost/
events comparison report.
"""

from .bundle import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    BundleError,
    ProvenanceBundle,
    build_bundle,
    read_bundle,
    write_bundle,
)
from .replay import (
    OVERRIDE_KEYS,
    ReplayReport,
    parse_overrides,
    rebuild_suite,
    replay,
    verify_bundle,
)

__all__ = [
    "BUNDLE_FORMAT",
    "BUNDLE_VERSION",
    "BundleError",
    "OVERRIDE_KEYS",
    "ProvenanceBundle",
    "ReplayReport",
    "build_bundle",
    "parse_overrides",
    "read_bundle",
    "rebuild_suite",
    "replay",
    "verify_bundle",
    "write_bundle",
]
