"""Provenance bundles: serialize a run's reconstruction inputs + output.

A bundle is one JSON document::

    {
      "format": "gp-provenance-bundle",
      "version": 1,
      "sections": {
        "calibration": {"digest": ..., "constants": {...}},
        "scenario":    {"suite": ..., "scheduler": ..., "dispatch": ...,
                        "specs": [{name, task, params, timeout_s}, ...]},
        "seeds":       {"<spec name>": <seed int>, ...},
        "topology":    [<obs annotation docs>, ...],
        "spans":       [<obs docs: spans/instants/metrics>, ...],
        "sim":         <SuiteResult.sim_dict()>
      },
      "section_digests": {"calibration": sha256, ...},
      "digest": sha256 over the canonical section_digests map
    }

Digests are SHA-256 over canonical JSON (sorted keys, no whitespace), so
the same content always yields the same bundle bytes — bundles of a
deterministic run are themselves deterministic and diffable.  Every
integrity failure raises :class:`BundleError` with a machine-readable
``code`` (and ``section`` where one is implicated); the verifier never
passes silently on a malformed document.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from .. import calibration
from ..obs.export import annotations

BUNDLE_FORMAT = "gp-provenance-bundle"
BUNDLE_VERSION = 1

#: every bundle carries exactly these sections (order = digest order)
SECTION_NAMES = ("calibration", "scenario", "seeds", "topology", "spans", "sim")

#: annotation kinds lifted into the topology section
_TOPOLOGY_KINDS = ("topology", "topology-update")


class BundleError(Exception):
    """A bundle that cannot be trusted; ``code`` says why, structurally.

    Codes::

        bundle.unreadable       file missing / not JSON
        bundle.format           wrong format marker or version
        bundle.section-missing  a required section is absent
        bundle.section-digest   a section's content does not match its digest
        bundle.digest           the top-level digest does not match
        calibration.internal    the calibration section disagrees with itself
        calibration.drift       bundled constants differ from the live code
        scenario.malformed      the scenario cannot rebuild a suite
        override.unknown        an unsupported counterfactual override key
    """

    def __init__(
        self,
        code: str,
        message: str,
        section: str | None = None,
        detail: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.section = section
        self.detail = detail or {}

    def to_dict(self) -> dict:
        return {
            "error": {
                "code": self.code,
                "section": self.section,
                "message": str(self),
                "detail": self.detail,
            }
        }


def canonical_json(doc) -> str:
    """The byte form every digest is computed over."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def content_digest(doc) -> str:
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


@dataclass(frozen=True)
class ProvenanceBundle:
    """The sections, plus (for loaded bundles) the digests *as stored*.

    Digests are always recomputed from content when serializing; the
    ``stored_*`` fields keep what the document on disk claimed, so the
    verifier can detect tampering.  They are excluded from equality —
    a bundle round-tripped through JSON compares equal to the original.
    """

    calibration: dict
    scenario: dict
    seeds: dict
    topology: list = field(default_factory=list)
    spans: list = field(default_factory=list)
    sim: dict = field(default_factory=dict)
    stored_section_digests: dict | None = field(default=None, compare=False)
    stored_digest: str | None = field(default=None, compare=False)

    def sections(self) -> dict:
        return {
            "calibration": self.calibration,
            "scenario": self.scenario,
            "seeds": self.seeds,
            "topology": self.topology,
            "spans": self.spans,
            "sim": self.sim,
        }

    def section_digests(self) -> dict[str, str]:
        return {name: content_digest(doc) for name, doc in self.sections().items()}

    def digest(self) -> str:
        return content_digest(self.section_digests())

    def to_dict(self) -> dict:
        return {
            "format": BUNDLE_FORMAT,
            "version": BUNDLE_VERSION,
            "sections": self.sections(),
            "section_digests": self.section_digests(),
            "digest": self.digest(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def sim_json(self) -> str:
        """The bundled sim output in ``SuiteResult.sim_json()`` byte form."""
        return json.dumps(self.sim, indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: dict) -> "ProvenanceBundle":
        """Structural parse only — integrity is ``verify_bundle``'s job.

        Raises :class:`BundleError` when the document is not a bundle at
        all (wrong format marker, unsupported version, missing section).
        """
        if not isinstance(doc, dict):
            raise BundleError("bundle.format", "bundle must be a JSON object")
        if doc.get("format") != BUNDLE_FORMAT:
            raise BundleError(
                "bundle.format",
                f"not a {BUNDLE_FORMAT} document (format={doc.get('format')!r})",
            )
        if doc.get("version") != BUNDLE_VERSION:
            raise BundleError(
                "bundle.format",
                f"unsupported bundle version {doc.get('version')!r}"
                f" (expected {BUNDLE_VERSION})",
            )
        sections = doc.get("sections")
        if not isinstance(sections, dict):
            raise BundleError("bundle.section-missing", "missing 'sections' object")
        for name in SECTION_NAMES:
            if name not in sections:
                raise BundleError(
                    "bundle.section-missing",
                    f"bundle has no {name!r} section",
                    section=name,
                )
        return cls(
            calibration=sections["calibration"],
            scenario=sections["scenario"],
            seeds=sections["seeds"],
            topology=sections["topology"],
            spans=sections["spans"],
            sim=sections["sim"],
            stored_section_digests=doc.get("section_digests"),
            stored_digest=doc.get("digest"),
        )


def calibration_section() -> dict:
    """The live code's calibration, in bundle-section form."""
    return {"digest": calibration.digest(), "constants": calibration.snapshot()}


def build_bundle(result) -> ProvenanceBundle:
    """Bundle a finished :class:`~repro.bench.harness.SuiteResult`.

    The scenario comes from ``result.scenario_dict()``; seeds are lifted
    out of spec params into their own section (specs without an explicit
    ``seed`` param are not listed — their tasks' defaults apply on both
    sides); topology annotations and the span log come from the obs docs
    the tasks recorded (empty when the run was not captured).
    """
    scenario = result.scenario_dict()
    seeds = {
        spec["name"]: spec["params"]["seed"]
        for spec in scenario["specs"]
        if isinstance(spec.get("params"), dict) and "seed" in spec["params"]
    }
    obs_docs = result.obs_docs()
    topology = [
        {k: v for k, v in ann.items()}
        for ann in annotations(obs_docs)
        if ann.get("kind") in _TOPOLOGY_KINDS
    ]
    # canonicalize through a JSON round trip so in-process bundles match
    # bundles rebuilt from disk byte for byte
    bundle = ProvenanceBundle(
        calibration=calibration_section(),
        scenario=json.loads(json.dumps(scenario)),
        seeds=json.loads(json.dumps(seeds)),
        topology=json.loads(json.dumps(topology)),
        spans=json.loads(json.dumps(obs_docs)),
        sim=json.loads(json.dumps(result.sim_dict())),
    )
    # stamp the stored digests so a freshly built bundle verifies without
    # a disk round trip (verify_bundle demands stored digests to compare)
    return dataclasses.replace(
        bundle,
        stored_section_digests=bundle.section_digests(),
        stored_digest=bundle.digest(),
    )


def write_bundle(bundle: ProvenanceBundle, path: pathlib.Path | str) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(bundle.to_json() + "\n")
    return path


def read_bundle(path: pathlib.Path | str) -> ProvenanceBundle:
    """Load a bundle from disk (structural checks only; see
    :func:`~repro.provenance.replay.verify_bundle` for integrity)."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise BundleError("bundle.unreadable", f"cannot read {path}: {exc}") from exc
    if not text.strip():
        raise BundleError("bundle.unreadable", f"{path} is empty")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise BundleError(
            "bundle.unreadable", f"{path} is not valid JSON: {exc}"
        ) from exc
    return ProvenanceBundle.from_dict(doc)
