"""``gp-replay``: verify or counterfactually re-execute a provenance bundle.

Examples::

    gp-replay smoke.bundle.json                  # byte-identity verification
    gp-replay smoke.bundle.json --check-only     # integrity/calibration only
    gp-replay smoke.bundle.json --export-sim sim.json   # extract bundled sim
    gp-replay usecase.bundle.json --override instance_type=c1.medium
    gp-replay smoke.bundle.json --override scheduler=wheel --override dispatch=scalar

Exit status:

* ``0`` — bundle verified (replay byte-identical), or counterfactual ran
  with every task ok;
* ``1`` — replay diverged from the bundled run, or replayed tasks failed;
* ``2`` — usage errors (bad ``--override`` syntax, unknown keys);
* ``3`` — the bundle itself is corrupt (digest/section/calibration); the
  structured :class:`~repro.provenance.bundle.BundleError` document is
  printed as JSON on stderr.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .bundle import BundleError, read_bundle
from .replay import parse_overrides, replay, verify_bundle


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gp-replay",
        description=(
            "Rebuild a simulation from a provenance bundle and verify the"
            " replayed sim JSON is byte-identical — or re-run it under"
            " counterfactual overrides and report metric deltas."
        ),
    )
    parser.add_argument("bundle", type=pathlib.Path, help="bundle JSON file")
    parser.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "counterfactual knob (repeatable): instance_type=..., "
            "scheduler=heap|wheel, dispatch=scalar|cohort, seed=N; any"
            " override switches from byte-identity verification to a"
            " comparison report"
        ),
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="verify bundle integrity and calibration, then exit (no replay)",
    )
    parser.add_argument(
        "--export-sim",
        type=pathlib.Path,
        metavar="PATH",
        help="write the bundled sim JSON (SuiteResult.sim_json form) to PATH",
    )
    parser.add_argument(
        "--json-out",
        type=pathlib.Path,
        metavar="PATH",
        help="write the structured replay report (JSON) to PATH",
    )
    parser.add_argument(
        "-w", "--workers",
        type=int,
        default=1,
        help="harness worker processes for the replay (default 1, in-process)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the rendered report"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        overrides = parse_overrides(args.override)
    except BundleError as exc:
        print(json.dumps(exc.to_dict(), sort_keys=True), file=sys.stderr)
        return 2

    try:
        bundle = read_bundle(args.bundle)
        verify_bundle(bundle)
    except BundleError as exc:
        print(json.dumps(exc.to_dict(), sort_keys=True), file=sys.stderr)
        return 3

    if args.export_sim:
        args.export_sim.write_text(bundle.sim_json() + "\n")
        if not args.quiet:
            print(f"wrote {args.export_sim}")

    if args.check_only:
        if not args.quiet:
            print(
                f"bundle ok: suite {bundle.scenario.get('suite')!r},"
                f" {len(bundle.scenario.get('specs', []))} spec(s),"
                f" digest {bundle.digest()[:12]}..."
            )
        return 0

    # integrity already checked above; don't re-verify inside replay
    report = replay(bundle, overrides=overrides, verify=False, workers=args.workers)

    if args.json_out:
        args.json_out.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        if not args.quiet:
            print(f"wrote {args.json_out}")
    if not args.quiet:
        print(report.render())

    if report.mode == "verify":
        return 0 if report.verified else 1
    return 0 if report.replay_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
