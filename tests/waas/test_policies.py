"""Policy decisions are pure functions of the snapshot — test them dry."""

import pytest

from repro.waas import (
    POLICIES,
    DeadlineSlackPolicy,
    PoolSnapshot,
    QueueDepthPolicy,
    StaticPolicy,
    make_policy,
)


def snap(**kw) -> PoolSnapshot:
    base = dict(
        now=0.0, workers=2, queue_depth=0, running=0, total_slots=2,
        cpu_capacity=2.0, idle_work=0.0, backlog_workflows=0,
        backlog_work=0.0, in_flight=0, min_deadline_slack_s=None,
    )
    base.update(kw)
    return PoolSnapshot(**base)


def test_static_never_moves():
    p = StaticPolicy()
    assert p.decide(snap(queue_depth=1000, backlog_workflows=1000)) == 0
    assert p.decide(snap()) == 0


def test_queue_depth_scales_up_on_backlog():
    p = QueueDepthPolicy(up_per_slot=2.0, step=3)
    assert p.decide(snap(queue_depth=4)) == 3       # 4 >= 2*2 slots
    assert p.decide(snap(queue_depth=3)) == 0
    assert p.decide(snap(queue_depth=1, backlog_workflows=3)) == 3


def test_queue_depth_scales_down_when_drained():
    p = QueueDepthPolicy()
    assert p.decide(snap(queue_depth=0, running=0)) == -1
    assert p.decide(snap(queue_depth=0, running=1)) == 0


def test_queue_depth_handles_empty_pool():
    p = QueueDepthPolicy(step=2)
    assert p.decide(snap(total_slots=0, queue_depth=1)) == 2
    assert p.decide(snap(total_slots=0, queue_depth=0)) == 0


def test_deadline_slack_scales_up_when_drain_threatens_deadline():
    p = DeadlineSlackPolicy(headroom=1.5, step=2)
    # 300s of work at 2 work/s = 150s projected; *1.5 = 225 > 200 slack
    assert p.decide(snap(idle_work=300.0, min_deadline_slack_s=200.0)) == 2
    # 500 slack is comfortable
    assert p.decide(snap(idle_work=300.0, min_deadline_slack_s=500.0)) == 0


def test_deadline_slack_counts_admission_backlog():
    p = DeadlineSlackPolicy(headroom=1.0, step=1)
    s = snap(idle_work=100.0, backlog_work=500.0, min_deadline_slack_s=200.0)
    assert p.decide(s) == 1  # 600/2 = 300 > 200


def test_deadline_slack_idles_down_and_ignores_quiet_pools():
    p = DeadlineSlackPolicy()
    assert p.decide(snap()) == -1  # nothing pending, nothing running
    assert p.decide(snap(running=1)) == 0
    assert p.decide(snap(idle_work=50.0, min_deadline_slack_s=None)) == 0


def test_deadline_slack_rescues_zero_capacity():
    p = DeadlineSlackPolicy(step=4)
    assert p.decide(snap(cpu_capacity=0.0, idle_work=10.0)) == 4


def test_policy_registry_and_params():
    assert set(POLICIES) == {"static", "queue_depth", "deadline_slack"}
    p = make_policy("queue_depth", up_per_slot=5.0)
    assert p.describe() == {"name": "queue_depth", "up_per_slot": 5.0, "step": 1}
    assert make_policy("static").describe() == {"name": "static"}
    with pytest.raises(KeyError):
        make_policy("nope")


def test_policy_param_validation():
    with pytest.raises(ValueError):
        QueueDepthPolicy(up_per_slot=0.0)
    with pytest.raises(ValueError):
        QueueDepthPolicy(step=0)
    with pytest.raises(ValueError):
        DeadlineSlackPolicy(headroom=0.0)


def test_pending_work_property():
    s = snap(idle_work=10.0, backlog_work=5.0)
    assert s.pending_work == 15.0
