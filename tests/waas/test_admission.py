"""Admission contract: quotas, the global cap, fair-share drain order."""

import pytest

from repro.simcore import SimContext
from repro.waas import AdmissionController, make_tenants
from repro.waas.tenants import WorkflowRequest
from repro.workloads.generators import make_workflow_dag

DAG = make_workflow_dag("chain", n_tasks=2, seed=0)


def _controller(max_in_flight=100, max_backlog_per_tenant=None):
    ctx = SimContext(seed=0)
    adm = AdmissionController(
        ctx, max_in_flight=max_in_flight,
        max_backlog_per_tenant=max_backlog_per_tenant,
    )
    started, rejected = [], []
    adm.bind(started.append, rejected.append)
    return adm, started, rejected


def _request(rid, tenant, arrival=0.0, dag=DAG):
    req = WorkflowRequest(
        id=rid, tenant=tenant, dag=dag, arrival_s=arrival, allowance_s=1e9
    )
    req.arrived_s = arrival
    return req


def test_tenant_quota_defers_and_fifo_refills():
    (tenant,) = make_tenants(1, quota=1)
    adm, started, _ = _controller()
    reqs = [_request(i, tenant, arrival=float(i)) for i in range(3)]
    for r in reqs:
        adm.offer(r)
    assert [r.id for r in started] == [0]
    assert adm.backlog_workflows == 2
    adm.complete(reqs[0])
    assert [r.id for r in started] == [0, 1]
    adm.complete(reqs[1])
    assert [r.id for r in started] == [0, 1, 2]
    assert adm.backlog_workflows == 0
    assert adm.admitted == 3 and adm.deferred == 2


def test_global_cap_gates_even_under_quota():
    tenants = make_tenants(4, quota=10)
    adm, started, _ = _controller(max_in_flight=2)
    reqs = [_request(i, tenants[i], arrival=float(i)) for i in range(4)]
    for r in reqs:
        adm.offer(r)
    assert len(started) == 2
    adm.complete(reqs[0])
    assert len(started) == 3


def test_fair_share_prefers_lightest_tenant():
    light, heavy = make_tenants(2, quota=1)
    adm, started, _ = _controller(max_in_flight=1)
    first = _request(0, heavy, arrival=0.0)
    adm.offer(first)  # occupies the single slot; charges `heavy` on completion
    # both tenants now queue one workflow; heavy's arrived *earlier*
    q_heavy = _request(1, heavy, arrival=1.0)
    q_light = _request(2, light, arrival=2.0)
    adm.offer(q_heavy)
    adm.offer(q_light)
    adm.complete(first)
    # usage(heavy) > usage(light): the lighter tenant wins despite arriving later
    assert [r.id for r in started] == [0, 2]


def test_ties_break_by_arrival_then_tenant_id():
    a, b = make_tenants(2, quota=1)
    adm, started, _ = _controller(max_in_flight=1)
    blocker = _request(0, a, arrival=0.0)
    adm.offer(blocker)
    adm.offer(_request(1, b, arrival=1.0))
    adm.offer(_request(2, a, arrival=2.0))
    adm.complete(blocker)
    # a has usage from the blocker; b is untouched -> b first
    assert started[1].id == 1


def test_backlog_cap_rejects():
    (tenant,) = make_tenants(1, quota=1)
    adm, started, rejected = _controller(max_backlog_per_tenant=1)
    for i in range(3):
        adm.offer(_request(i, tenant, arrival=float(i)))
    assert len(started) == 1
    assert adm.backlog_workflows == 1
    assert [r.id for r in rejected] == [2]
    assert rejected[0].rejected


def test_unbound_controller_asserts_on_admit():
    ctx = SimContext(seed=0)
    adm = AdmissionController(ctx)
    (tenant,) = make_tenants(1)
    with pytest.raises(AssertionError):
        adm.offer(_request(0, tenant))


def test_backlog_work_accounting_balances():
    (tenant,) = make_tenants(1, quota=1)
    adm, started, _ = _controller()
    for i in range(4):
        adm.offer(_request(i, tenant, arrival=float(i)))
    assert adm.backlog_work == pytest.approx(3 * DAG.total_work)
    k = 0
    while k < len(started):  # each completion admits the next in line
        adm.complete(started[k])
        k += 1
    assert adm.backlog_workflows == 0
    assert adm.backlog_work == pytest.approx(0.0)
    assert adm.in_flight == 0
