"""Demand-side contract: deterministic plans, sane deadlines, traces."""

import pytest

from repro.waas import make_tenants, poisson_plan, trace_plan


def test_make_tenants_names_and_quota():
    tenants = make_tenants(12, quota=3)
    assert len(tenants) == 12
    assert tenants[0].name == "tenant-0000"
    assert all(t.quota == 3 for t in tenants)
    assert [t.id for t in tenants] == list(range(12))


def test_tenant_quota_must_be_positive():
    with pytest.raises(ValueError):
        make_tenants(2, quota=0)


def test_poisson_plan_is_seed_deterministic():
    a = poisson_plan(10, 40, 0.5, seed=7)
    b = poisson_plan(10, 40, 0.5, seed=7)
    assert [r.arrival_s for r in a.requests] == [r.arrival_s for r in b.requests]
    assert [r.tenant.id for r in a.requests] == [r.tenant.id for r in b.requests]
    assert [r.dag for r in a.requests] == [r.dag for r in b.requests]
    assert [r.allowance_s for r in a.requests] == [r.allowance_s for r in b.requests]


def test_poisson_plan_seed_moves_the_schedule():
    a = poisson_plan(10, 40, 0.5, seed=0)
    b = poisson_plan(10, 40, 0.5, seed=1)
    assert [r.arrival_s for r in a.requests] != [r.arrival_s for r in b.requests]


def test_poisson_arrivals_sorted_and_positive():
    plan = poisson_plan(5, 100, 2.0, seed=3)
    times = [r.arrival_s for r in plan.requests]
    assert times == sorted(times)
    assert times[0] > 0


def test_poisson_plan_shares_dag_objects():
    plan = poisson_plan(50, 200, 1.0, unique_dags=8, seed=0)
    distinct = {id(r.dag) for r in plan.requests}
    assert len(distinct) <= 8


def test_deadline_allowance_covers_critical_path():
    plan = poisson_plan(4, 20, 1.0, deadline_base_s=100.0, deadline_slack=2.0, seed=0)
    for r in plan.requests:
        assert r.allowance_s == 100.0 + 2.0 * r.dag.critical_path_work()


def test_poisson_plan_rejects_bad_args():
    with pytest.raises(ValueError):
        poisson_plan(4, 10, 0.0)
    with pytest.raises(ValueError):
        poisson_plan(4, 0, 1.0)
    with pytest.raises(ValueError):
        poisson_plan(4, 10, 1.0, shapes=("nope",))


def test_trace_plan_replays_records():
    trace = [
        {"t": 0.0, "tenant": 0},
        {"t": 1.5, "tenant": 1, "allowance_s": 99.0},
        {"t": 1.5, "tenant": 0, "variant": 2},
    ]
    plan = trace_plan(trace, n_tenants=2, unique_dags=4, seed=0)
    assert [r.arrival_s for r in plan.requests] == [0.0, 1.5, 1.5]
    assert plan.requests[1].allowance_s == 99.0
    assert plan.requests[1].tenant.id == 1


def test_trace_plan_validates():
    with pytest.raises(ValueError):
        trace_plan([{"t": 2.0, "tenant": 0}, {"t": 1.0, "tenant": 0}], n_tenants=1)
    with pytest.raises(ValueError):
        trace_plan([{"t": 0.0, "tenant": 5}], n_tenants=2)
    with pytest.raises(ValueError):
        trace_plan([], n_tenants=2)
