"""End-to-end: deploy a pool, open the front door, drain the demand."""

import pytest

from repro.core.testbed import CloudTestbed
from repro.provision.instance import GlobusProvision
from repro.waas import (
    AdmissionController,
    ElasticProvisioner,
    WaasService,
    make_policy,
    make_tenants,
    poisson_plan,
    trace_plan,
    waas_topology,
)


def _deploy(seed=0, base_workers=1, instance_type="m1.small"):
    bed = CloudTestbed(seed=seed)
    gp = GlobusProvision(bed)
    gpi = gp.create(waas_topology(base_workers, instance_type=instance_type))
    start = bed.ctx.sim.process(gp.start(gpi.id), name="gp-start")
    bed.run(until=start)
    return bed, gp, gpi


def _drain(bed, service, provisioner=None):
    def drive(ctx):
        service.open()
        if provisioner is not None:
            provisioner.start()
        yield service.all_done
        if provisioner is not None:
            provisioner.stop()

    proc = bed.ctx.sim.process(drive(bed.ctx), name="waas-drive")
    bed.run(until=proc)


def test_static_run_completes_every_workflow():
    bed, gp, gpi = _deploy(base_workers=2)
    plan = poisson_plan(4, 10, 0.1, dag_tasks=3, unique_dags=3,
                        mean_task_work_s=30.0, seed=0)
    adm = AdmissionController(bed.ctx, max_in_flight=8)
    service = WaasService(gp, gpi.id, plan, adm)
    _drain(bed, service)
    assert len(service.completed) == 10
    assert not service.rejected
    assert service.jobs_submitted == sum(len(r.dag.tasks) for r in plan.requests)
    assert service.jobs_completed == service.jobs_submitted
    for r in service.completed:
        assert r.completed_s is not None
        assert r.admitted_s is not None
        assert r.admitted_s >= r.arrived_s
        assert r.makespan_s > 0
    assert 0.0 <= service.sla_attainment <= 1.0
    # all state drained
    assert adm.in_flight == 0 and adm.backlog_workflows == 0
    assert service.min_deadline_slack() is None


def test_autoscaler_grows_overloaded_pool():
    bed, gp, gpi = _deploy(base_workers=1)
    # heavy demand against a single m1.small -> queue_depth must scale up
    plan = poisson_plan(8, 24, 0.2, dag_tasks=4, unique_dags=4,
                        mean_task_work_s=90.0, seed=1)
    adm = AdmissionController(bed.ctx, max_in_flight=16)
    service = WaasService(gp, gpi.id, plan, adm)
    prov = ElasticProvisioner(
        gp, gpi.id, make_policy("queue_depth"), service.snapshot,
        min_workers=1, max_workers=4, check_interval_s=60.0,
    )
    _drain(bed, service, prov)
    assert len(service.completed) == 24
    assert prov.scale_ups > 0
    assert prov.peak_workers <= 4
    assert 1 <= prov.worker_count() <= 4
    assert all(e.workers_after != e.workers_before for e in prov.events)
    assert all(e.update_seconds >= 0 for e in prov.events)


def test_snapshot_reflects_pool_and_admission():
    bed, gp, gpi = _deploy(base_workers=2)
    plan = poisson_plan(2, 4, 0.5, dag_tasks=2, seed=0)
    adm = AdmissionController(bed.ctx, max_in_flight=4)
    service = WaasService(gp, gpi.id, plan, adm)
    snap = service.snapshot()
    assert snap.workers == 2
    assert snap.total_slots > 0
    assert snap.cpu_capacity > 0
    assert snap.queue_depth == 0 and snap.in_flight == 0
    assert snap.min_deadline_slack_s is None
    _drain(bed, service)
    done = service.snapshot()
    assert done.in_flight == 0
    assert done.idle_work == 0.0


def test_trace_plan_drives_service():
    bed, gp, gpi = _deploy(base_workers=2)
    tenants = make_tenants(2, quota=2)
    trace = [
        {"t": 0.0, "tenant": 0},
        {"t": 5.0, "tenant": 1, "variant": 1},
        {"t": 5.0, "tenant": 0, "allowance_s": 1e9},
    ]
    plan = trace_plan(trace, n_tenants=2, dag_tasks=2, unique_dags=2,
                      mean_task_work_s=10.0, seed=0)
    assert [t.id for t in plan.tenants] == [t.id for t in tenants]
    adm = AdmissionController(bed.ctx, max_in_flight=4)
    service = WaasService(gp, gpi.id, plan, adm)
    t0 = bed.now
    _drain(bed, service)
    assert len(service.completed) == 3
    arrived = sorted(r.arrived_s - t0 for r in service.completed)
    assert arrived == pytest.approx([0.0, 5.0, 5.0])


def test_backlog_cap_rejections_still_release_all_done():
    bed, gp, gpi = _deploy(base_workers=1)
    # quota 1 + backlog cap 0: every workflow arriving while one is in
    # flight for its tenant is rejected outright
    plan = poisson_plan(1, 6, 1.0, tenant_quota=1, dag_tasks=2,
                        mean_task_work_s=200.0, seed=0)
    adm = AdmissionController(bed.ctx, max_in_flight=4,
                              max_backlog_per_tenant=0)
    service = WaasService(gp, gpi.id, plan, adm)
    _drain(bed, service)
    assert len(service.completed) + len(service.rejected) == 6
    assert service.rejected, "expected the backlog cap to reject some"
    assert all(r.rejected for r in service.rejected)
    assert all(r.completed_s is None for r in service.rejected)


def test_run_is_seed_deterministic():
    def once():
        bed, gp, gpi = _deploy(base_workers=1)
        plan = poisson_plan(4, 8, 0.2, dag_tasks=3, seed=2)
        adm = AdmissionController(bed.ctx, max_in_flight=8)
        service = WaasService(gp, gpi.id, plan, adm)
        prov = ElasticProvisioner(
            gp, gpi.id, make_policy("deadline_slack"), service.snapshot,
            max_workers=3,
        )
        _drain(bed, service, prov)
        return (
            bed.now,
            bed.ctx.sim.events_processed,
            [(r.id, r.admitted_s, r.completed_s) for r in service.completed],
            [(e.time, e.action, e.workers_after) for e in prov.events],
        )

    assert once() == once()
