"""Resource, PriorityResource, Store and Container semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore import (
    Container,
    PriorityResource,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_grants_up_to_capacity_then_queues():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def user(name, hold):
        req = res.request()
        yield req
        log.append((name, "acquired", sim.now))
        yield sim.timeout(hold)
        req.release()
        log.append((name, "released", sim.now))

    sim.process(user("a", 5.0))
    sim.process(user("b", 5.0))
    sim.process(user("c", 1.0))
    sim.run()
    acq = {(n, t) for n, what, t in log if what == "acquired"}
    assert ("a", 0.0) in acq and ("b", 0.0) in acq
    assert ("c", 5.0) in acq  # waited for a slot
    assert res.count == 0


def test_resource_context_manager_releases():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield sim.timeout(1.0)
        return sim.now

    def second():
        yield sim.timeout(0.5)
        with res.request() as req:
            yield req
            return sim.now

    sim.process(user())
    p2 = sim.process(second())
    assert sim.run(until=p2) == 1.0


def test_cancel_pending_request_by_release():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    sim.run()
    assert held.processed
    pending = res.request()
    pending.release()  # cancel while still queued
    held.release()
    sim.run()
    assert res.count == 0
    assert not pending.triggered


def test_priority_resource_serves_lowest_priority_first():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def user(name, prio, start):
        yield sim.timeout(start)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        yield sim.timeout(10.0)
        req.release()

    sim.process(user("first", 5, 0.0))   # grabs the slot immediately
    sim.process(user("low", 9, 1.0))
    sim.process(user("high", 1, 2.0))
    sim.run()
    assert order == ["first", "high", "low"]


def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [i for i, _ in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def consumer():
        item = yield store.get()
        return (item, sim.now)

    def producer():
        yield sim.timeout(7.0)
        yield store.put("x")

    p = sim.process(consumer())
    sim.process(producer())
    assert sim.run(until=p) == ("x", 7.0)


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(5.0)
        item = yield store.get()
        events.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 5.0) in events


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)

    def producer():
        for item in ["small", "LARGE", "medium"]:
            yield store.put(item)

    def consumer():
        item = yield store.get(lambda s: s.isupper())
        return item

    sim.process(producer())
    p = sim.process(consumer())
    assert sim.run(until=p) == "LARGE"
    assert store.items == ["small", "medium"]


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_container_put_take_and_bounds():
    sim = Simulator()
    c = Container(sim, capacity=10.0, init=4.0)
    c.put(3.0)
    assert c.level == 7.0
    c.take(6.0)
    assert c.level == 1.0
    with pytest.raises(SimulationError):
        c.take(2.0)
    with pytest.raises(SimulationError):
        c.put(100.0)
    with pytest.raises(ValueError):
        c.put(-1.0)
    with pytest.raises(ValueError):
        Container(sim, capacity=1.0, init=5.0)


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=25))
def test_property_resource_never_exceeds_capacity(capacity, n_users):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    max_in_use = 0

    def user(i):
        yield sim.timeout(i * 0.1)
        req = res.request()
        yield req
        nonlocal max_in_use
        max_in_use = max(max_in_use, res.count)
        yield sim.timeout(1.0)
        req.release()

    for i in range(n_users):
        sim.process(user(i))
    sim.run()
    assert max_in_use <= capacity
    assert res.count == 0


@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20))
def test_property_store_conserves_items(items):
    """Everything put is eventually got, exactly once, in FIFO order."""
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for it in items:
            yield store.put(it)

    def consumer():
        for _ in items:
            got.append((yield store.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == items
