"""Reproducibility of named random streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(seed=7).stream("boot").random(16)
    b = RandomStreams(seed=7).stream("boot").random(16)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    rs = RandomStreams(seed=7)
    a = rs.stream("boot").random(16)
    b = rs.stream("net").random(16)
    assert not np.array_equal(a, b)


def test_stream_is_cached_not_restarted():
    rs = RandomStreams(seed=7)
    first = rs.stream("x").random()
    second = rs.stream("x").random()
    assert first != second  # continuing the same sequence


def test_adding_streams_does_not_perturb_existing():
    rs1 = RandomStreams(seed=3)
    a1 = rs1.stream("alpha").random(8)

    rs2 = RandomStreams(seed=3)
    rs2.stream("zeta").random(8)  # extra stream created first
    a2 = rs2.stream("alpha").random(8)
    assert np.array_equal(a1, a2)


def test_reset_restarts_sequences():
    rs = RandomStreams(seed=5)
    a = rs.stream("s").random(4)
    rs.reset()
    b = rs.stream("s").random(4)
    assert np.array_equal(a, b)


def test_spawn_namespaces_differ_from_parent():
    rs = RandomStreams(seed=11)
    child = rs.spawn("cloud")
    a = rs.stream("s").random(8)
    b = child.stream("s").random(8)
    assert not np.array_equal(a, b)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
def test_property_seed_and_name_fully_determine_stream(seed, name):
    x = RandomStreams(seed).stream(name).integers(0, 1 << 30, size=4)
    y = RandomStreams(seed).stream(name).integers(0, 1 << 30, size=4)
    assert np.array_equal(x, y)
