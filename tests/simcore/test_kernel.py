"""Kernel semantics: clock, event ordering, processes, run modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore import (
    EmptySchedule,
    Interrupt,
    SimContext,
    SimEvent,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulator(initial_time=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_raises():
    sim = Simulator(initial_time=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_step_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_call_in_and_call_at():
    sim = Simulator()
    seen = []
    sim.call_in(3.0, lambda: seen.append(("in", sim.now)))
    sim.call_at(7.0, lambda: seen.append(("at", sim.now)))
    sim.run()
    assert seen == [("in", 3.0), ("at", 7.0)]


def test_call_at_past_raises():
    sim = Simulator(initial_time=10.0)
    with pytest.raises(ValueError):
        sim.call_at(5.0, lambda: None)


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []
    for tag, delay in [("a", 2.0), ("b", 1.0), ("c", 1.0), ("d", 0.5)]:
        sim.call_in(delay, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["d", "b", "c", "a"]


def test_simple_process_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return "finished"

    p = sim.process(proc())
    result = sim.run(until=p)
    assert result == "finished"
    assert sim.now == 5.0


def test_process_receives_timeout_value():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(1.0, value="payload")
        return got

    assert sim.run(until=sim.process(proc())) == "payload"


def test_process_waits_on_event_succeeded_by_other_process():
    sim = Simulator()
    gate = sim.event()
    trace = []

    def waiter():
        value = yield gate
        trace.append(("woke", sim.now, value))

    def opener():
        yield sim.timeout(4.0)
        gate.succeed("open!")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert trace == [("woke", 4.0, "open!")]


def test_event_failure_propagates_into_process():
    sim = Simulator()
    gate = sim.event()

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    def waiter():
        with pytest.raises(RuntimeError, match="boom"):
            yield gate
        return "handled"

    sim.process(failer())
    p = sim.process(waiter())
    assert sim.run(until=p) == "handled"


def test_unhandled_event_failure_raises_at_kernel():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        sim.run()


def test_run_until_failed_process_reraises():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("inside process")

    p = sim.process(bad())
    with pytest.raises(KeyError):
        sim.run(until=p)


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    p = sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run(until=p)


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt("wake up")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert log == [("interrupted", 3.0, "wake up")]


def test_interrupt_dead_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    def interrupter(target):
        yield sim.timeout(1.0)
        target.interrupt()

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    with pytest.raises(SimulationError, match="Interrupt"):
        sim.run(until=p)


def test_process_exception_fails_process_event():
    """A raising process fails its event; waiters receive the exception."""
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("process exploded")

    def waiter():
        try:
            yield sim.process(bad())
        except ValueError as exc:
            return f"caught: {exc}"

    assert sim.run(until=sim.process(waiter())) == "caught: process exploded"


def test_unwaited_process_exception_surfaces_at_kernel():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("nobody is watching")

    sim.process(bad())
    with pytest.raises(ValueError, match="nobody is watching"):
        sim.run()


def test_condition_defuses_simultaneous_failures():
    """Two processes failing at the same instant: AllOf handles both."""
    sim = Simulator()

    def bad(tag):
        yield sim.timeout(5.0)
        raise RuntimeError(tag)

    def waiter():
        try:
            yield sim.all_of([sim.process(bad("a")), sim.process(bad("b"))])
        except RuntimeError as exc:
            return str(exc)

    result = sim.run(until=sim.process(waiter()))
    assert result in ("a", "b")
    sim.run()  # the second failure must not crash the drained kernel


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(2.0, "a")
        t2 = sim.timeout(5.0, "b")
        results = yield sim.all_of([t1, t2])
        return sorted(results.values())

    p = sim.process(proc())
    assert sim.run(until=p) == ["a", "b"]
    assert sim.now == 5.0


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(2.0, "fast")
        t2 = sim.timeout(9.0, "slow")
        results = yield sim.any_of([t1, t2])
        return list(results.values())

    p = sim.process(proc())
    assert sim.run(until=p) == ["fast"]
    assert sim.now == 2.0


def test_all_of_empty_triggers_immediately():
    sim = Simulator()

    def proc():
        res = yield sim.all_of([])
        return res

    assert sim.run(until=sim.process(proc())) == {}


def test_nested_processes_compose():
    sim = Simulator()

    def child(d):
        yield sim.timeout(d)
        return d * 2

    def parent():
        a = yield sim.process(child(3.0))
        b = yield sim.process(child(4.0))
        return a + b

    assert sim.run(until=sim.process(parent())) == 14.0
    assert sim.now == 7.0


def test_context_log_records_time_and_detail():
    ctx = SimContext(seed=1)
    ctx.sim.call_in(2.5, lambda: ctx.log("unit", "tick", n=1))
    ctx.sim.run()
    recs = ctx.trace.filter(kind="tick")
    assert len(recs) == 1
    assert recs[0].time == 2.5
    assert recs[0].detail == {"n": 1}


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_processed_in_nondecreasing_time(delays):
    """Regardless of insertion order, observed firing times are sorted."""
    sim = Simulator()
    seen = []
    for d in delays:
        sim.call_in(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
    assert sim.now == max(delays)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.integers(0, 4)),
        min_size=1,
        max_size=30,
    )
)
def test_property_equal_time_events_fifo(pairs):
    """Events at identical times run in insertion order."""
    sim = Simulator()
    seen = []
    for idx, (t, _) in enumerate(pairs):
        sim.call_in(float(t), lambda i=idx, tt=t: seen.append((tt, i)))
    sim.run()
    # Within each timestamp, insertion indices must be increasing.
    by_time: dict[int, list[int]] = {}
    for t, i in seen:
        by_time.setdefault(t, []).append(i)
    for indices in by_time.values():
        assert indices == sorted(indices)


def test_counters_persist_across_run_calls():
    """events_processed / peak_queue_depth accumulate over staged runs."""
    sim = Simulator()
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.call_at(t, lambda: None)
    sim.run(until=2.0)
    mid = sim.events_processed
    assert mid >= 2
    peak_mid = sim.peak_queue_depth
    sim.run()
    assert sim.events_processed > mid  # accumulated, not reset
    assert sim.peak_queue_depth >= peak_mid

    # a staged scenario reports the same totals as one uninterrupted drain
    whole = Simulator()
    for t in (1.0, 2.0, 3.0, 4.0):
        whole.call_at(t, lambda: None)
    whole.run()
    assert sim.events_processed == whole.events_processed
    assert sim.peak_queue_depth == whole.peak_queue_depth


def test_obs_records_one_kernel_run_span_per_call():
    from repro.obs import ObsRecorder

    sim = Simulator()
    rec = ObsRecorder(label="k", clock=lambda: sim.now)
    sim.obs = rec
    sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    sim.run(until=1.5)
    sim.run()
    spans = [s for s in rec.spans if s.name == "kernel.run"]
    assert len(spans) == 2
    assert [s.attrs["events"] for s in spans] == [1, 1]
    assert rec.metrics.counter("kernel.runs").value == 2
    assert rec.metrics.counter("kernel.events").value == sim.events_processed
