"""Cohort event execution: unit contracts plus differential fuzzing.

The contract under test is the one ``repro.simcore.cohort`` documents:
picking a dispatch mode (``"scalar"`` vs ``"cohort"``) changes how many
queue entries a cohort costs, never what the simulation computes.  The
fuzz suite drives randomly interleaved cohorts and plain timers through
every scheduler x dispatch combination and demands identical member
application traces, ``events_processed``, and ``peak_queue_depth``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import ObsRecorder
from repro.simcore import (
    COHORT_SIZE_BUCKETS,
    DISPATCH_MODES,
    Simulator,
    default_dispatch,
    set_default_dispatch,
)

MODES = list(DISPATCH_MODES)

#: collision-rich delay grid: repeated values force same-timestamp runs
DELAY_GRID = (0.0, 0.25, 0.25, 0.25, 0.5, 1.0, 1.0, 2.0)

PROGRAM = st.lists(
    st.tuples(
        st.sampled_from(["cohort", "timers"]),
        st.lists(st.sampled_from(DELAY_GRID), min_size=0, max_size=10),
    ),
    min_size=1,
    max_size=8,
)


def _run_program(program, scheduler: str, dispatch: str, chained: bool = False):
    """Execute a mixed cohort/timer program; return its observable state.

    ``chained=True`` makes every cohort member's apply schedule a
    follow-up timer (the "every member schedules" pattern from the
    cohort ordering contract), exercising depth accounting while slices
    fan out new work.
    """
    sim = Simulator(scheduler=scheduler, dispatch=dispatch)
    trace: list[tuple] = []
    cohorts = []
    for idx, (kind, delays) in enumerate(program):
        if kind == "cohort":

            def apply(cohort, start, stop, idx=idx):
                for k in range(start, stop):
                    trace.append((sim.now, "member", idx, k))
                    if chained:
                        ev = sim.timeout(0.25)
                        ev.callbacks.append(
                            lambda e, idx=idx, k=k: trace.append(
                                (sim.now, "chained", idx, k)
                            )
                        )

            cohorts.append(
                sim.schedule_cohort(list(delays), apply, layer=f"l{idx % 3}")
            )
        else:
            for j, delay in enumerate(delays):
                ev = sim.timeout(delay)
                ev.callbacks.append(
                    lambda e, idx=idx, j=j: trace.append((sim.now, "timer", idx, j))
                )
    sim.run()
    assert all(c.done.triggered for c in cohorts)
    return trace, sim.events_processed, sim.peak_queue_depth


@given(program=PROGRAM)
@settings(max_examples=60, deadline=None)
def test_differential_fuzz_all_scheduler_dispatch_combos(program):
    """Trace/counters/depth identical across every scheduler x dispatch."""
    reference = _run_program(program, "heap", "scalar")
    for scheduler in ("heap", "wheel"):
        for dispatch in MODES:
            assert _run_program(program, scheduler, dispatch) == reference


@given(program=PROGRAM)
@settings(max_examples=30, deadline=None)
def test_differential_fuzz_with_scheduling_applies(program):
    """Same equivalence when every member's apply schedules new work."""
    reference = _run_program(program, "heap", "scalar", chained=True)
    for scheduler in ("heap", "wheel"):
        for dispatch in MODES:
            assert _run_program(program, scheduler, dispatch, chained=True) == reference


# ---------------------------------------------------------------------------
# Unit contracts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dispatch", MODES)
def test_members_apply_in_index_order(dispatch):
    sim = Simulator(dispatch=dispatch)
    seen = []
    cohort = sim.schedule_cohort(
        [1.0, 1.0, 1.0, 2.0],
        lambda c, i, j: seen.extend(range(i, j)),
    )
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert cohort.done.triggered
    assert cohort.done.value is cohort
    assert sim.events_processed == 5  # 4 members + the done event


@pytest.mark.parametrize("dispatch", MODES)
def test_empty_cohort_done_fires_without_running(dispatch):
    sim = Simulator(dispatch=dispatch)
    cohort = sim.schedule_cohort([], lambda c, i, j: pytest.fail("no members"))
    assert cohort.done.triggered
    assert cohort.size == 0
    sim.run()
    assert sim.events_processed == 1  # only the done event itself


@pytest.mark.parametrize("dispatch", MODES)
def test_past_fire_time_rejected(dispatch):
    sim = Simulator(dispatch=dispatch)
    sim.run(until=5.0)
    with pytest.raises(ValueError, match="in the past"):
        sim.schedule_cohort([4.0], lambda c, i, j: None)


@pytest.mark.parametrize("dispatch", MODES)
def test_registration_depth_counts_members_not_entries(dispatch):
    """queue_depth is member-granular under both modes (compensation)."""
    sim = Simulator(dispatch=dispatch)
    sim.schedule_cohort([1.0] * 8, lambda c, i, j: None)
    assert sim.queue_depth == 8


def test_same_timestamp_run_is_one_queue_entry_under_cohort_dispatch():
    sim = Simulator(dispatch="cohort")
    sim.schedule_cohort([1.0] * 8, lambda c, i, j: None)
    # one staged slice entry + 7 collapsed members' compensation
    assert len(sim._pending) == 1
    assert sim._cohort_extra == 7
    sim.run()
    assert sim.events_processed == 9  # 8 members + the done event
    assert sim._cohort_extra == 0


def test_times_property_normalizes_lazily():
    import numpy as np

    sim = Simulator()
    cohort = sim.schedule_cohort([1.0, 2.0], lambda c, i, j: None)
    assert isinstance(cohort.times, np.ndarray)
    assert cohort.times.dtype == np.float64
    assert cohort.times.tolist() == [1.0, 2.0]
    sim.run()


@pytest.mark.parametrize("dispatch", MODES)
def test_done_awaitable_from_process(dispatch):
    sim = Simulator(dispatch=dispatch)
    got = []

    def waiter():
        cohort = sim.schedule_cohort([1.0, 2.0], lambda c, i, j: None)
        value = yield cohort.done
        got.append((value, sim.now))

    sim.process(waiter())
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 2.0


def test_unknown_dispatch_rejected():
    with pytest.raises(ValueError, match="unknown dispatch"):
        Simulator(dispatch="vectorized")
    previous = set_default_dispatch("scalar")
    try:
        with pytest.raises(ValueError, match="unknown dispatch"):
            set_default_dispatch("vectorized")
        assert Simulator().dispatch == "scalar"  # failed set left it alone
    finally:
        set_default_dispatch(previous)


def test_default_dispatch_round_trip():
    previous = set_default_dispatch("scalar")
    try:
        assert default_dispatch() == "scalar"
        assert Simulator().dispatch == "scalar"
        set_default_dispatch("cohort")
        assert Simulator().dispatch == "cohort"
    finally:
        set_default_dispatch(previous)
    assert Simulator(dispatch="scalar").dispatch == "scalar"


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def _metered_sim(dispatch: str):
    sim = Simulator(dispatch=dispatch)
    rec = ObsRecorder(label="cohort-test", clock=lambda: sim.now)
    sim.obs = rec
    return sim, rec


def test_cohort_dispatch_records_size_histogram_and_layer_counter():
    sim, rec = _metered_sim("cohort")
    sim.schedule_cohort([1.0, 1.0, 1.0, 2.0], lambda c, i, j: None, layer="gridftp.chunk")
    sim.run()
    hist = rec.metrics.histogram("cohort.size", tuple(COHORT_SIZE_BUCKETS))
    assert hist.count == 2  # one run of 3, one run of 1
    assert hist.max == 3.0
    assert rec.metrics.counter("cohort.events.gridftp.chunk.cohort").value == 4


def test_scalar_dispatch_records_per_member_counter():
    sim, rec = _metered_sim("scalar")
    sim.schedule_cohort([1.0, 1.0, 2.0], lambda c, i, j: None, layer="condor.tick")
    sim.run()
    assert rec.metrics.counter("cohort.events.condor.tick.scalar").value == 3
    assert rec.metrics.histogram("cohort.size").count == 0


@pytest.mark.parametrize("dispatch", MODES)
def test_obs_does_not_change_simulation_results(dispatch):
    def scenario(sim):
        seen = []
        sim.schedule_cohort(
            [1.0, 1.0, 2.0], lambda c, i, j: seen.extend(range(i, j))
        )
        sim.run()
        return seen, sim.events_processed, sim.peak_queue_depth, sim.now

    plain = Simulator(dispatch=dispatch)
    metered, _rec = _metered_sim(dispatch)
    assert scenario(plain) == scenario(metered)
