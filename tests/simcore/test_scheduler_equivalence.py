"""Differential scheduler-equivalence suite: heap vs calendar wheel.

Every test runs the same program on a heap-backed and a wheel-backed
:class:`Simulator` and asserts the observable outcomes are identical —
callback order, the clock, ``events_processed``, the queue-depth
counters, and (for the benchmark suites) the byte-exact sim JSON the
perf pipeline pins.  This is the gate that lets ``scheduler="wheel"``
exist at all: the wheel is only a scheduler if nothing downstream can
tell it apart from the heap.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import suites
from repro.bench.harness import run_suite
from repro.simcore import LAZY, NORMAL, URGENT, SCHEDULERS, Simulator

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


# -- queue-depth accounting ----------------------------------------------------


def _depth_observations(scheduler: str) -> tuple:
    """Depths across the staged → flushed → drained lifecycle.

    Regression for the counter fix: zero-delay FIFO events, unflushed
    staged timers, and (under the wheel) far-future overflow entries all
    have to be counted, so both schedulers see the same numbers at every
    point — including after ``peek`` forces the staged flush, which under
    the wheel pushes the 1e9 timer into the overflow list.
    """
    sim = Simulator(scheduler=scheduler)
    for _ in range(3):
        sim.timeout(0.0)  # zero-delay FIFO (immediate deque)
    for i in range(4):
        sim.timeout(1.0 + i)  # staged timers, not yet flushed
    sim.timeout(1e9)  # far beyond the wheel's initial horizon
    staged = sim.queue_depth
    next_t = sim.peek()  # forces the flush into the active store
    flushed = sim.queue_depth
    sim.run()
    return staged, next_t, flushed, sim.events_processed, sim.queue_depth


def test_queue_depth_counts_staged_and_overflow_identically():
    heap = _depth_observations("heap")
    wheel = _depth_observations("wheel")
    assert heap == wheel
    assert heap == (8, 0.0, 8, 8, 0)


def test_peak_queue_depth_matches_across_schedulers():
    peaks = []
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler)
        for i in range(50):
            sim.timeout((i * 7919) % 100 * 0.5)
        sim.timeout(1e12)  # overflow entry must stay in the depth samples
        sim.run()
        peaks.append((sim.peak_queue_depth, sim.events_processed))
    assert peaks[0] == peaks[1]
    assert peaks[0][1] == 51


# -- fuzzed program equivalence ------------------------------------------------

# Delays mix exact-duplicate timestamps (same-bucket / same-heap-key
# collisions), sub-bucket fractions, and a far-future outlier that lands
# in the wheel's overflow list.
DELAYS = st.sampled_from([0.0, 0.0, 0.25, 1.0, 1.0, 3.0, 17.0, 1e6])

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("timer"), DELAYS, st.sampled_from([URGENT, NORMAL, LAZY])
        ),
        st.tuples(st.just("burst"), st.integers(2, 6), DELAYS),
        st.tuples(st.just("cancel")),
        st.tuples(st.just("wait"), DELAYS),
    ),
    max_size=40,
)


def _run_program(scheduler: str, ops) -> tuple:
    """Execute an op list under ``scheduler`` and return its full trace."""
    sim = Simulator(scheduler=scheduler)
    trace: list = []

    def driver():
        for i, op in enumerate(ops):
            kind = op[0]
            if kind == "timer":
                _, delay, prio = op
                ev = sim.event()
                ev.callbacks.append(
                    lambda _e, i=i: trace.append((sim.now, "timer", i))
                )
                sim._schedule(ev, delay, prio)
            elif kind == "burst":
                _, width, delay = op
                for j in range(width):
                    t = sim.timeout(delay)
                    t.callbacks.append(
                        lambda _e, i=i, j=j: trace.append((sim.now, "burst", i, j))
                    )
            elif kind == "cancel":
                ev = sim.event()
                ev.fail(RuntimeError("cancelled"))
                ev.defused = True  # the cancel idiom: fail, nobody waits
            else:  # wait: advances the clock mid-schedule
                yield sim.timeout(op[1])
                trace.append((sim.now, "resumed", i))

    sim.process(driver())
    sim.run()
    return trace, sim.now, sim.events_processed, sim.peak_queue_depth


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_fuzzed_programs_trace_identically(ops):
    assert _run_program("heap", ops) == _run_program("wheel", ops)


# -- benchmark suites: byte-identical sim JSON ---------------------------------


@pytest.mark.parametrize("name", suites.names())
def test_smoke_suite_sim_json_identical(name):
    """Every suite's smoke shape produces the same sim JSON either way."""
    heap = run_suite(suites.get(name, smoke=True), scheduler="heap")
    wheel = run_suite(suites.get(name, smoke=True), scheduler="wheel")
    assert heap.ok and wheel.ok
    assert heap.sim_json() == wheel.sim_json()
    assert wheel.scheduler == "wheel"


# -- scheduler selection knobs -------------------------------------------------


def test_env_var_selects_process_default():
    env = dict(os.environ, REPRO_SIM_SCHEDULER="wheel", PYTHONPATH=str(SRC))
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.simcore import Simulator; print(Simulator().scheduler)",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == "wheel"
