"""Regressions pinned by the kernel fast-path work.

Covers the two bug fixes that rode along with it (``run(until=...)`` on an
already-processed failed event, and ``defused`` as a real attribute), the
new per-simulator counters, and — as a property — that draining
same-timestamp events through the zero-delay fast path preserves the
(priority, insertion-order) semantics the heap alone used to guarantee.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore import LAZY, NORMAL, URGENT, SimContext, Simulator


# -- run(until=<already-processed event>) --------------------------------------


def test_run_until_already_processed_failed_event_raises():
    """A failed, defused, already-processed event must re-raise — not hand
    the exception object back as if it were the result value."""
    sim = Simulator()
    ev = sim.event()
    boom = RuntimeError("stale failure")
    ev.fail(boom)
    ev.defused = True
    sim.run()                     # processes ev; defused, so no re-raise here
    assert ev.processed
    with pytest.raises(RuntimeError, match="stale failure"):
        sim.run(until=ev)


def test_run_until_already_processed_succeeded_event_returns_value():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("payload")
    sim.run()
    assert sim.run(until=ev) == "payload"


# -- defused is a real slot ----------------------------------------------------


def test_defused_defaults_false_and_is_settable():
    sim = Simulator()
    ev = sim.event()
    assert ev.defused is False
    ev.defused = True
    assert ev.defused is True


def test_defused_failure_does_not_raise_at_kernel():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("handled elsewhere"))
    ev.defused = True
    sim.run()                     # must not raise
    assert ev.processed and not ev.ok


def test_slots_leave_no_instance_dict():
    sim = Simulator()
    for obj in (sim, sim.event(), sim.timeout(1.0)):
        assert not hasattr(obj, "__dict__")


# -- per-simulator counters ----------------------------------------------------


def test_counters_track_processing_and_depth():
    sim = Simulator()
    assert sim.events_processed == 0 and sim.peak_queue_depth == 0
    for i in range(5):
        sim.timeout(float(i))
    assert sim.queue_depth == 5
    sim.run()
    # peak is sampled by the drain loop, so it is exact once run() returns
    assert sim.peak_queue_depth == 5
    assert sim.events_processed == 5
    assert sim.queue_depth == 0


def test_counters_are_per_simulator():
    a, b = Simulator(), Simulator()
    a.timeout(1.0)
    a.run()
    assert a.events_processed == 1
    assert b.events_processed == 0


# -- same-timestamp ordering property -----------------------------------------


@given(
    st.lists(
        st.sampled_from([URGENT, NORMAL, LAZY]), min_size=1, max_size=40
    )
)
def test_property_same_timestamp_order_is_priority_then_insertion(priorities):
    """Zero-delay NORMAL events ride the fast-path deque while URGENT/LAZY
    go through the heap; the merged drain order must still be a stable
    sort by priority of the insertion sequence."""
    sim = Simulator()
    fired = []
    for i, prio in enumerate(priorities):
        ev = sim.event()
        ev.callbacks.append(lambda _ev, i=i: fired.append(i))
        ev.succeed(priority=prio)
    sim.run()
    expected = sorted(range(len(priorities)), key=lambda i: priorities[i])
    assert fired == expected
    assert sim.events_processed == len(priorities)


@given(
    st.lists(
        st.tuples(
            st.sampled_from([0.0, 1.0]),
            st.sampled_from([URGENT, NORMAL, LAZY]),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_mixed_delay_batches_keep_timestamp_grouping(items):
    """Across two timestamps, all t=0 events fire before any t=1 event and
    each batch is internally (priority, insertion)-ordered."""
    sim = Simulator()
    fired = []
    for i, (delay, prio) in enumerate(items):
        ev = sim.event()
        ev.callbacks.append(lambda _ev, i=i: fired.append(i))
        sim._schedule(ev, delay, prio)
    sim.run()
    expected = sorted(
        range(len(items)), key=lambda i: (items[i][0], items[i][1])
    )
    assert fired == expected


def test_callback_scheduled_urgent_at_same_time_preempts_fastpath():
    """An URGENT event scheduled *during* a same-timestamp drain must fire
    before queued NORMAL fast-path events — the batching cannot prefetch."""
    sim = Simulator()
    order = []

    def first(_ev):
        order.append("first")
        urgent = sim.event()
        urgent.callbacks.append(lambda _e: order.append("urgent"))
        sim._schedule(urgent, 0.0, URGENT)

    a, b = sim.event(), sim.event()
    a.callbacks.append(first)
    b.callbacks.append(lambda _e: order.append("second"))
    a.succeed()
    b.succeed()
    sim.run()
    assert order == ["first", "urgent", "second"]


def test_lazy_event_defers_past_normal_work():
    ctx = SimContext(seed=0)
    sim = ctx.sim
    order = []
    lazy = sim.event()
    lazy.callbacks.append(lambda _e: order.append("lazy"))
    lazy.succeed(priority=LAZY)
    n = sim.event()
    n.callbacks.append(lambda _e: order.append("normal"))
    n.succeed()
    sim.run()
    assert order == ["normal", "lazy"]
