"""Property tests: CalendarQueue vs a sorted-list reference model.

The queue's contract is exactly "pop in ascending (time, key) order, no
matter the bucket geometry"; every test here drives the real structure
and an obviously-correct sorted list through the same operations and
compares.  Times are chosen to force the interesting geometry: dense
same-timestamp clusters, bucket-resize thresholds, far-future overflow,
and the endgame (+inf) tail.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import Simulator, set_default_scheduler
from repro.simcore.calendar import MIN_BUCKETS, CalendarQueue

# Mixed scales shake out width retuning; the huge/inf samples exercise
# overflow migration and endgame mode.
TIMES = st.one_of(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 1e9, 2.0**40, float("inf")]),
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), TIMES),
        st.tuples(st.just("extend"), st.lists(TIMES, max_size=300)),
        st.tuples(st.just("pop"), st.just(None)),
        st.tuples(st.just("peek"), st.just(None)),
    ),
    max_size=60,
)


def drain(q: CalendarQueue) -> list:
    out = []
    while q:
        out.append(q.pop())
    return out


@given(ops=OPS)
@settings(max_examples=120, deadline=None)
def test_interleaved_ops_match_reference(ops):
    q = CalendarQueue()
    ref: list = []
    key = 0
    for op, arg in ops:
        if op == "push":
            entry = (arg, key, None)
            key += 1
            q.push(entry)
            ref.append(entry)
        elif op == "extend":
            batch = []
            for t in arg:
                batch.append((t, key, None))
                key += 1
            q.extend(batch)
            ref.extend(batch)
        elif op == "pop":
            if ref:
                ref.sort()
                assert q.pop() == ref.pop(0)
            else:
                with pytest.raises(IndexError):
                    q.pop()
        else:  # peek
            assert q.peek() == (min(ref) if ref else None)
        assert len(q) == len(ref)
    ref.sort()
    assert drain(q) == ref


@given(perm=st.permutations(range(40)))
@settings(max_examples=60, deadline=None)
def test_same_timestamp_orders_by_key(perm):
    """Equal times pop in key order — the (priority, insertion-id) pack."""
    q = CalendarQueue()
    for k in perm:
        q.push((5.0, k, None))
    assert [e[1] for e in drain(q)] == sorted(perm)


@given(
    n=st.integers(min_value=MIN_BUCKETS * 5, max_value=400),
    span=st.sampled_from([0.001, 1.0, 1000.0, 1e7]),
)
@settings(max_examples=40, deadline=None)
def test_resize_boundaries_preserve_order(n, span):
    """Crossing the grow threshold (and shrinking on drain) never reorders."""
    q = CalendarQueue()
    entries = [((i * 0.6180339887) % 1.0 * span, i, None) for i in range(n)]
    for e in entries:  # push one at a time so load-factor grows trigger
        q.push(e)
    # at n >= 5 * MIN_BUCKETS either the ring or the overflow list crossed
    # its 2 * nbuckets load factor, whatever the span split them into
    assert q.stats["buckets"] > MIN_BUCKETS
    assert drain(q) == sorted(entries)


@given(n=st.integers(min_value=1, max_value=300), t=TIMES)
@settings(max_examples=60, deadline=None)
def test_bulk_same_timestamp_extend_pops_in_key_order(n, t):
    """A cohort-style bulk insert of one timestamp drains in key order.

    This is the shape cohort registration produces (``extend`` of a
    same-timestamp run) — the whole batch must land in one bucket (or
    the overflow list) and still respect the key tiebreak.
    """
    q = CalendarQueue()
    q.extend([(t, k, None) for k in range(n)])
    assert [e[1] for e in drain(q)] == list(range(n))


@given(
    near=st.lists(
        st.floats(min_value=0.0, max_value=4.0, allow_nan=False), max_size=60
    ),
    far=st.lists(
        st.sampled_from([1e9, 2.0**40, 2.0**40 + 0.5, 1e18]), max_size=60
    ),
)
@settings(max_examples=60, deadline=None)
def test_far_future_overflow_repatriates_in_order(near, far):
    """Entries parked beyond the calendar horizon migrate back losslessly.

    Interleaving near-term and far-future pushes forces some entries
    into the overflow list; draining must repatriate them into the ring
    in exactly sorted order, including same-timestamp clusters split
    across the boundary.
    """
    q = CalendarQueue()
    entries = []
    for k, t in enumerate(v for pair in zip(near, far) for v in pair):
        entries.append((t, k, None))
    # tails of the longer list (zip truncates)
    for t in (near + far)[len(entries):]:
        entries.append((t, len(entries), None))
    q.extend(entries)
    # a couple of pops interleaved with late pushes shake the boundary
    ref = sorted(entries)
    for k in range(3):
        if ref:
            assert q.pop() == ref.pop(0)
            late = (2.0**40, 10_000 + k, None)
            q.push(late)
            ref.append(late)
            ref.sort()
    assert drain(q) == ref


def test_cancelled_timer_defuses_without_firing_either_scheduler():
    """The kernel's cancel idiom (defuse a failed event) drains cleanly."""
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        fired = []
        ok = sim.timeout(1.0)
        ok.callbacks.append(lambda ev: fired.append("ok"))
        doomed = sim.event()
        doomed.fail(RuntimeError("cancelled"))
        doomed.defused = True  # nobody will wait on it: swallow the failure
        sim.run()
        assert fired == ["ok"]


def test_negative_delay_rejected_under_both_schedulers():
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler)
        with pytest.raises(ValueError):
            sim.timeout(-0.001)
        sim.run()
        assert sim.events_processed == 0


def test_invalid_scheduler_names_rejected():
    with pytest.raises(ValueError):
        Simulator(scheduler="fibheap")
    previous = set_default_scheduler("wheel")
    try:
        with pytest.raises(ValueError):
            set_default_scheduler("fibheap")
        assert Simulator().scheduler == "wheel"  # failed set left it alone
    finally:
        set_default_scheduler(previous)


def test_constructor_validates_geometry():
    with pytest.raises(ValueError):
        CalendarQueue(buckets=12)  # not a power of two
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.3)  # not a power of two
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.0)
