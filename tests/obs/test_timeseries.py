"""Sim-time gauge series: recording, export, and the obs-off contract."""

import json

from repro.obs import NULL_RECORDER, ObsRecorder, series_points, timeseries_jsonl
from repro.obs.timeseries import NULL_SERIES


def _recorder():
    clock = [0.0]
    rec = ObsRecorder(label="run", clock=lambda: clock[0])
    rec.series("condor.idle_jobs").record(3)
    clock[0] = 10.0
    rec.series("condor.idle_jobs").record(1)
    rec.series("waas.in_flight").record(2.5)
    return rec


def test_series_records_sim_time_points_in_order():
    rec = _recorder()
    series = rec.series("condor.idle_jobs")
    assert series.to_list() == [[0.0, 3.0], [10.0, 1.0]]
    assert series.last == 1.0
    assert len(series) == 2


def test_series_registry_returns_same_instance_per_name():
    rec = ObsRecorder(label="run")
    assert rec.series("a") is rec.series("a")
    assert rec.series("a") is not rec.series("b")


def test_null_recorder_series_is_shared_noop():
    series = NULL_RECORDER.series("anything")
    assert series is NULL_SERIES
    series.record(42.0)
    assert len(series) == 0
    assert series.last is None
    assert series.to_list() == []


def test_doc_form_carries_series_sorted_by_name():
    doc = _recorder().to_dict()
    assert list(doc["series"]) == ["condor.idle_jobs", "waas.in_flight"]
    assert doc["series"]["waas.in_flight"] == [[10.0, 2.5]]


def test_series_points_flatten_deterministically():
    points = series_points(_recorder())
    assert points == [
        {"context": "run", "series": "condor.idle_jobs", "t": 0.0, "value": 3.0},
        {"context": "run", "series": "condor.idle_jobs", "t": 10.0, "value": 1.0},
        {"context": "run", "series": "waas.in_flight", "t": 10.0, "value": 2.5},
    ]


def test_timeseries_jsonl_round_trips():
    text = timeseries_jsonl(_recorder())
    assert text.endswith("\n")
    lines = [json.loads(line) for line in text.splitlines()]
    assert len(lines) == 3
    assert all(
        set(obj) == {"context", "series", "t", "value"} for obj in lines
    )


def test_timeseries_jsonl_empty_source_is_empty_string():
    assert timeseries_jsonl(ObsRecorder(label="quiet")) == ""
