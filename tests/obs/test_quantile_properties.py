"""Percentile/quantile edge cases, pinned against sorted-list references.

``obs.export._percentile`` used ``round(q*n + 0.5)`` and hit banker's
rounding on exact .5 products; ``metrics.Histogram.quantile`` let q=0.0
produce rank 0, which every bucket — empty ones included — satisfied.
Both are nearest-rank definitions: the smallest value (or bucket bound)
with at least ``q`` of the samples at or below it, q=0.0 meaning the
minimum and q=1.0 the maximum.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.obs.export import _percentile
from repro.obs.metrics import Histogram

QS = [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0]


def ref_percentile(values, q):
    """Nearest-rank over a sorted list: ``values[max(1, ceil(q*n)) - 1]``."""
    if not values:
        return 0.0
    vs = sorted(values)
    rank = max(1, min(len(vs), math.ceil(q * len(vs))))
    return vs[rank - 1]


# -- _percentile ------------------------------------------------------------


def test_percentile_empty_is_zero():
    assert _percentile([], 0.0) == 0.0
    assert _percentile([], 0.95) == 0.0
    assert _percentile([], 1.0) == 0.0


def test_percentile_single_sample_for_every_q():
    for q in QS:
        assert _percentile([3.5], q) == 3.5


def test_percentile_p95_of_20_is_rank_19_not_20():
    # the banker's-rounding regression: round(0.95*20 + 0.5) picked 20
    values = [float(v) for v in range(1, 21)]
    assert _percentile(values, 0.95) == 19.0


@given(
    st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60),
    st.sampled_from(QS),
)
def test_percentile_matches_sorted_list_reference(values, q):
    vs = sorted(values)
    assert _percentile(vs, q) == ref_percentile(values, q)


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60))
def test_percentile_extremes_and_membership(values):
    vs = sorted(values)
    assert _percentile(vs, 0.0) == vs[0]
    assert _percentile(vs, 1.0) == vs[-1]
    for q in QS:
        assert _percentile(vs, q) in vs


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60))
def test_percentile_is_monotone_in_q(values):
    vs = sorted(values)
    results = [_percentile(vs, q) for q in QS]
    assert results == sorted(results)


# -- Histogram.quantile -----------------------------------------------------


def _bucket_bound(hist, value):
    """The bound the histogram files ``value`` under (inf = overflow)."""
    for bound in hist.bounds:
        if value <= bound:
            return bound
    return math.inf


def ref_quantile(hist, observations, q):
    """Sorted-list reference: nearest-rank over per-observation bounds."""
    bounds = sorted(_bucket_bound(hist, v) for v in observations)
    got = ref_percentile(bounds, q)
    return hist.max if got == math.inf else got


def test_quantile_empty_is_zero_and_range_checked():
    hist = Histogram("h", bounds=(1.0, 10.0))
    assert hist.quantile(0.0) == 0.0
    assert hist.quantile(1.0) == 0.0
    with pytest.raises(ValueError):
        hist.quantile(-0.1)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_quantile_q0_skips_empty_buckets():
    # the rank-0 regression: q=0.0 must name the first *occupied* bucket
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
    hist.observe(50.0)
    assert hist.quantile(0.0) == 100.0


def test_quantile_overflow_returns_observed_max():
    hist = Histogram("h", bounds=(1.0, 10.0))
    hist.observe(5000.0)
    assert hist.quantile(0.5) == 5000.0
    assert hist.quantile(1.0) == 5000.0


@given(
    st.lists(st.floats(0.0, 1e4, allow_nan=False), min_size=1, max_size=60),
    st.sampled_from(QS),
)
def test_quantile_matches_expanded_bucket_reference(observations, q):
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0, 1000.0))
    for v in observations:
        hist.observe(v)
    assert hist.quantile(q) == ref_quantile(hist, observations, q)


@given(st.lists(st.floats(0.0, 1e4, allow_nan=False), min_size=1, max_size=60))
def test_quantile_is_monotone_in_q(observations):
    hist = Histogram("h", bounds=(1.0, 10.0, 100.0, 1000.0))
    for v in observations:
        hist.observe(v)
    results = [hist.quantile(q) for q in QS]
    assert results == sorted(results)
