"""Span recording semantics: nesting, status, null recorder, capture."""

import pytest

from repro.obs import NULL_RECORDER, ObsRecorder, capture, capturing
from repro.simcore import SimContext


def _recorder_with_clock():
    clock = {"t": 0.0}
    rec = ObsRecorder(label="t", clock=lambda: clock["t"])
    return rec, clock


def test_span_records_interval_on_its_track():
    rec, clock = _recorder_with_clock()
    s = rec.start("work", track="a", tag=1)
    clock["t"] = 5.0
    rec.finish(s)
    assert (s.start, s.end, s.status) == (0.0, 5.0, "ok")
    assert s.duration_s == 5.0
    assert s.attrs == {"tag": 1}


def test_same_track_spans_nest_parent_child():
    rec, clock = _recorder_with_clock()
    outer = rec.start("outer", track="a")
    inner = rec.start("inner", track="a")
    other = rec.start("elsewhere", track="b")
    assert inner.parent_id == outer.id
    assert other.parent_id is None
    rec.finish(inner)
    sibling = rec.start("sibling", track="a")
    assert sibling.parent_id == outer.id


def test_track_none_gets_a_unique_single_use_track():
    rec, _ = _recorder_with_clock()
    a = rec.start("x")
    b = rec.start("x")
    assert a.track != b.track
    assert b.parent_id is None


def test_context_manager_captures_exception_status():
    rec, clock = _recorder_with_clock()
    with pytest.raises(RuntimeError):
        with rec.span("risky", track="a") as s:
            clock["t"] = 2.0
            raise RuntimeError("boom")
    assert s.status == "error"
    assert "boom" in s.error
    assert s.end == 2.0


def test_finish_is_idempotent():
    rec, clock = _recorder_with_clock()
    s = rec.start("w", track="a")
    rec.finish(s)
    clock["t"] = 9.0
    rec.finish(s, status="error")
    assert s.end == 0.0
    assert s.status == "ok"


def test_finish_open_closes_innermost_first():
    rec, clock = _recorder_with_clock()
    outer = rec.start("outer", track="a")
    inner = rec.start("inner", track="a")
    clock["t"] = 3.0
    closed = rec.finish_open("a", status="error", error="died")
    assert closed == 2
    assert inner.status == outer.status == "error"
    assert inner.end == outer.end == 3.0
    # fresh spans on the track start a new stack
    assert rec.start("again", track="a").parent_id is None


def test_null_recorder_is_inert_and_shared():
    s = NULL_RECORDER.start("anything", track="x", a=1)
    assert s is NULL_RECORDER.start("other")
    assert s.set(x=2) is s
    with s:
        pass
    NULL_RECORDER.instant("i")
    NULL_RECORDER.counter("c").inc()
    NULL_RECORDER.gauge("g").set(5)
    NULL_RECORDER.histogram("h").observe(1.0)
    assert NULL_RECORDER.enabled is False
    assert NULL_RECORDER.spans == []
    assert NULL_RECORDER.to_dict()["spans"] == []


def test_simcontext_defaults_to_null_recorder():
    ctx = SimContext(seed=0)
    assert ctx.obs is NULL_RECORDER
    assert ctx.sim.obs is NULL_RECORDER


def test_simcontext_obs_true_records_on_sim_clock():
    ctx = SimContext(seed=0, obs=True)
    assert ctx.obs.enabled
    s = ctx.obs.start("w", track="a")
    ctx.sim.call_at(4.0, lambda: None)
    ctx.sim.run()
    ctx.obs.finish(s)
    assert s.end == 4.0


def test_capture_collects_every_context_built_inside():
    assert not capturing()
    with capture() as cap:
        assert capturing()
        a = SimContext(seed=0)
        b = SimContext(seed=1)
        assert a.obs.enabled and b.obs.enabled
        assert a.obs is not b.obs
    assert not capturing()
    assert cap.recorders == [a.obs, b.obs]
    assert [d["label"] for d in cap.to_docs()] == ["sim-0", "sim-1"]
    # outside the block, contexts are quiet again
    assert SimContext(seed=2).obs is NULL_RECORDER


def test_capture_nesting_restores_outer_capture():
    with capture() as outer:
        SimContext(seed=0)
        with capture() as inner:
            SimContext(seed=1)
        SimContext(seed=2)
    assert len(inner.recorders) == 1
    assert len(outer.recorders) == 2


def test_explicit_recorder_wins_over_capture():
    mine = ObsRecorder(label="mine")
    with capture() as cap:
        ctx = SimContext(seed=0, obs=mine)
    assert ctx.obs is mine
    assert cap.recorders == []
