"""Exporters: Chrome trace shape, JSONL, summary aggregates."""

import json

from repro.obs import (
    ObsRecorder,
    chrome_trace,
    spans_jsonl,
    summary_rows,
    summary_table,
)
from repro.obs.export import metrics_rows
from repro.obs.validate import check_chrome_trace


def _demo_recorder():
    clock = {"t": 0.0}
    rec = ObsRecorder(label="demo", clock=lambda: clock["t"])
    outer = rec.start("phase", track="main", step=1)
    clock["t"] = 2.0
    inner = rec.start("sub", track="main")
    clock["t"] = 3.0
    rec.finish(inner)
    rec.instant("tick", track="main", n=7)
    clock["t"] = 10.0
    rec.finish(outer)
    rec.counter("things").inc(3)
    rec.gauge("depth").set(4)
    rec.histogram("lat").observe(0.5)
    return rec


def test_chrome_trace_is_valid_and_microsecond_scaled():
    doc = chrome_trace(_demo_recorder())
    assert check_chrome_trace(doc) == []
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e for e in x}
    assert by_name["phase"]["ts"] == 0.0
    assert by_name["phase"]["dur"] == 10.0 * 1e6
    assert by_name["sub"]["ts"] == 2.0 * 1e6
    # same track -> same (pid, tid)
    assert by_name["sub"]["tid"] == by_name["phase"]["tid"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants and instants[0]["args"] == {"n": 7}
    # metadata names the process and each track
    meta = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "M"}
    assert meta["process_name"]["args"]["name"] == "demo"
    assert meta["thread_name"]["args"]["name"] == "main"


def test_chrome_trace_json_serializable_and_deterministic():
    a = json.dumps(chrome_trace(_demo_recorder()), sort_keys=True)
    b = json.dumps(chrome_trace(_demo_recorder()), sort_keys=True)
    assert a == b


def test_multiple_docs_get_distinct_pids():
    doc = chrome_trace([_demo_recorder(), _demo_recorder()])
    assert check_chrome_trace(doc) == []
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, 2}


def test_open_span_exports_zero_width():
    rec = ObsRecorder(label="open")
    rec.start("never-finished", track="a")
    doc = chrome_trace(rec)
    assert check_chrome_trace(doc) == []
    x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert x[0]["dur"] == 0.0


def test_spans_jsonl_one_line_per_span_with_context():
    out = spans_jsonl(_demo_recorder())
    lines = [json.loads(ln) for ln in out.strip().splitlines()]
    assert len(lines) == 2
    assert {ln["context"] for ln in lines} == {"demo"}
    assert {ln["name"] for ln in lines} == {"phase", "sub"}


def test_summary_rows_aggregate_per_name():
    rows = summary_rows(_demo_recorder())
    by_name = {r["name"]: r for r in rows}
    assert by_name["phase"]["count"] == 1
    assert by_name["phase"]["total_s"] == 10.0
    assert by_name["sub"]["p50_s"] == 1.0
    # sorted by total desc
    assert rows[0]["name"] == "phase"


def test_summary_counts_errors():
    rec = ObsRecorder(label="e")
    rec.finish(rec.start("w", track="a"), status="error", error="x")
    rec.finish(rec.start("w", track="a"))
    row = summary_rows(rec)[0]
    assert row["count"] == 2
    assert row["errors"] == 1


def test_summary_table_renders_and_handles_empty():
    assert "phase" in summary_table(_demo_recorder())
    assert "no spans" in summary_table(ObsRecorder(label="empty"))


def test_metrics_rows_flatten_types():
    rows = metrics_rows(_demo_recorder())
    kinds = {name: kind for _, name, kind, _ in rows}
    assert kinds == {"things": "counter", "depth": "gauge", "lat": "histogram"}
