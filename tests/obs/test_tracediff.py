"""Structural span diff: the first span that moved, named precisely."""

import json

from repro.obs import ObsRecorder, first_span_divergence, render_span_divergence


def _docs(shift=0.0, drop_last=False, extra_doc=False, rename=None):
    clock = [0.0]
    rec = ObsRecorder(label="run", clock=lambda: clock[0])
    a = rec.start("ec2.boot", track="ec2/i-1")
    clock[0] = 60.0 + shift
    rec.finish(a)
    b = rec.start("chef.converge", track="chef/n-1", cause=a.id)
    clock[0] = 120.0 + shift
    rec.finish(b)
    docs = [rec.to_dict()]
    if rename:
        docs[0]["spans"][-1]["name"] = rename
    if drop_last:
        docs[0]["spans"] = docs[0]["spans"][:-1]
    if extra_doc:
        docs.append({"label": "run-2", "spans": []})
    return json.loads(json.dumps(docs))


def test_identical_docs_have_no_divergence():
    assert first_span_divergence(_docs(), _docs()) is None


def test_int_float_equal_values_do_not_diverge():
    expected, actual = _docs(), _docs()
    expected[0]["spans"][0]["start"] = 0
    actual[0]["spans"][0]["start"] = 0.0
    assert first_span_divergence(expected, actual) is None


def test_shifted_span_names_field_track_and_time():
    div = first_span_divergence(_docs(), _docs(shift=1.5))
    assert div is not None
    assert div.context == "run"
    assert div.index == 0
    assert div.name == "ec2.boot"
    assert div.track == "ec2/i-1"
    assert div.time == 0.0
    assert div.field == "end"
    assert div.expected == 60.0
    assert div.actual == 61.5


def test_renamed_span_reports_name_field_first():
    div = first_span_divergence(_docs(), _docs(rename="chef.recipe"))
    assert div.field == "name"
    assert div.expected == "chef.converge"
    assert div.actual == "chef.recipe"


def test_missing_span_carries_identity_of_present_side():
    div = first_span_divergence(_docs(), _docs(drop_last=True))
    assert div.field == "<missing>"
    assert div.name == "chef.converge"
    assert div.track == "chef/n-1"
    # symmetric: the extra span can be on either side
    div = first_span_divergence(_docs(drop_last=True), _docs())
    assert div.field == "<missing>"
    assert div.name == "chef.converge"


def test_missing_doc_reports_context_divergence():
    div = first_span_divergence(_docs(), _docs(extra_doc=True))
    assert div.field == "<context>"
    assert div.context == "run-2"


def test_cause_id_is_compared():
    expected, actual = _docs(), _docs()
    actual[0]["spans"][1]["cause_id"] = None
    div = first_span_divergence(expected, actual)
    assert div.field == "cause_id"
    assert div.name == "chef.converge"


def test_metrics_and_attrs_are_ignored():
    expected, actual = _docs(), _docs()
    actual[0]["metrics"] = {"cohort.events": {"type": "counter", "value": 9}}
    actual[0]["spans"][0]["attrs"] = {"host": "somewhere-else"}
    assert first_span_divergence(expected, actual) is None


def test_render_names_span_track_and_sim_time():
    div = first_span_divergence(_docs(), _docs(shift=1.5))
    text = render_span_divergence(div)
    assert "ec2.boot" in text
    assert "ec2/i-1" in text
    assert "t=0" in text
    assert "end" in text
    d = div.to_dict()
    assert d["field"] == "end" and d["context"] == "run"
