"""Deterministic metrics: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("events")
    c.inc()
    c.inc(41)
    assert c.value == 42
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_tracks_high_water_mark():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(3)
    g.set(10)
    g.set(2)
    assert g.value == 2
    assert g.max_value == 10


def test_registry_returns_same_instance_and_rejects_type_clash():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_default_buckets_are_a_sorted_decade_ladder():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert len(set(DEFAULT_BUCKETS)) == len(DEFAULT_BUCKETS)
    # 1-2-5 per decade
    assert {1.0, 2.0, 5.0, 10.0} <= set(DEFAULT_BUCKETS)


def test_histogram_buckets_count_and_quantile():
    h = Histogram("t", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    assert h.count == 4
    assert h.total == pytest.approx(555.5)
    assert h.min == 0.5
    assert h.max == 500.0
    # overflow bucket holds the 500.0
    assert h.bucket_counts == [1, 1, 1, 1]
    # p50 lands in the second bucket -> its upper bound
    assert h.quantile(0.5) == 10.0
    # overflow bucket reports the observed max, not infinity
    assert h.quantile(1.0) == 500.0


def test_histogram_to_dict_round_trips_by_json():
    import json

    h = Histogram("t", bounds=(1.0, 2.0))
    h.observe(1.5)
    doc = json.loads(json.dumps(h.to_dict()))
    assert doc["count"] == 1
    assert doc["type"] == "histogram"


def test_registry_to_dict_sorted_by_name():
    reg = MetricsRegistry()
    reg.counter("z")
    reg.counter("a")
    assert list(reg.to_dict()) == ["a", "z"]
