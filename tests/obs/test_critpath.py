"""Critical-path extraction: bounds, contiguity, determinism.

The pinned invariants: the walk is contiguous backward coverage, so the
critical-path length equals the makespan exactly and is therefore (a)
never longer than the makespan and (b) never shorter than the longest
single operational span; container spans (``kernel.run``) never become
chain nodes; and the resulting document is byte-identical across the
scheduler (heap/wheel) x dispatch (scalar/cohort) matrix because it is
built from spans only, never metrics.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import run_suite
from repro.core import run_usecase
from repro.obs import capture, critical_path, critpath_doc, layer_of
from repro.obs.critpath import CONTAINER_NAMES

from ..provenance.conftest import tiny_suite


def test_layer_mapping_longest_prefix_wins():
    assert layer_of("ec2.boot") == "boot"
    assert layer_of("chef.converge") == "converge"
    assert layer_of("go.task") == "transfer"
    assert layer_of("gridftp.transfer") == "transfer"
    assert layer_of("galaxy.stage_in") == "transfer"
    assert layer_of("galaxy.stage_out") == "transfer"
    assert layer_of("condor.wait") == "queue"
    assert layer_of("condor.run") == "execute"
    assert layer_of("galaxy.job.run") == "execute"
    assert layer_of("waas.workflow") == "service"
    assert layer_of("something.else") == "something"


def test_empty_doc_yields_zero_path():
    ctx = critical_path({"label": "empty", "spans": []})
    assert ctx["makespan_s"] == 0.0
    assert ctx["critical_path_s"] == 0.0
    assert ctx["segments"] == []
    doc = critpath_doc([{"label": "empty", "spans": []}])
    assert doc["makespan_s"] == 0.0
    assert doc["layers"] == {}


def _span(id, name, track, start, end, parent_id=None, cause_id=None):
    return {
        "id": id,
        "name": name,
        "track": track,
        "start": start,
        "end": end,
        "parent_id": parent_id,
        "cause_id": cause_id,
        "status": "ok",
    }


def test_causal_chain_attributes_each_layer():
    # boot -> converge -> wait -> run, linked by cause edges
    doc = {
        "label": "chain",
        "spans": [
            _span(1, "ec2.boot", "ec2/i-1", 0.0, 60.0),
            _span(2, "chef.converge", "chef/n-1", 60.0, 200.0, cause_id=1),
            _span(3, "condor.wait", "condor/job-1", 200.0, 230.0, cause_id=2),
            _span(4, "condor.run", "condor/job-1", 230.0, 300.0, cause_id=3),
        ],
    }
    ctx = critical_path(doc)
    assert ctx["makespan_s"] == 300.0
    assert ctx["critical_path_s"] == 300.0
    assert ctx["chain_spans"] == 4
    assert ctx["layers"] == {
        "boot": 60.0,
        "converge": 140.0,
        "queue": 30.0,
        "execute": 70.0,
    }
    assert [s["name"] for s in ctx["segments"]] == [
        "ec2.boot",
        "chef.converge",
        "condor.wait",
        "condor.run",
    ]


def test_uncovered_time_becomes_explicit_idle():
    doc = {
        "label": "gappy",
        "spans": [
            _span(1, "ec2.boot", "ec2/i-1", 0.0, 50.0),
            _span(2, "condor.run", "condor/job-1", 80.0, 100.0),
        ],
    }
    ctx = critical_path(doc)
    assert ctx["critical_path_s"] == ctx["makespan_s"] == 100.0
    idle = [s for s in ctx["segments"] if s["layer"] == "idle"]
    assert sum(s["duration_s"] for s in idle) == 30.0


def test_container_span_never_enters_the_chain():
    doc = {
        "label": "wrapped",
        "spans": [
            _span(1, "kernel.run", "kernel", 0.0, 500.0),
            _span(2, "ec2.boot", "ec2/i-1", 0.0, 60.0),
        ],
    }
    ctx = critical_path(doc)
    names = {s["name"] for s in ctx["segments"]}
    assert "kernel.run" not in names
    # the container stretches the makespan; the excess reads as idle
    assert ctx["makespan_s"] == 500.0
    assert ctx["layers"]["idle"] == 440.0
    assert ctx["layers"]["boot"] == 60.0


spans_strategy = st.lists(
    st.tuples(
        st.sampled_from(
            ["ec2.boot", "chef.converge", "go.task", "condor.wait", "condor.run"]
        ),
        st.integers(0, 4),          # track index
        st.floats(0.0, 1000.0, allow_nan=False),
        st.floats(0.001, 500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(spans_strategy)
def test_path_length_bounds_and_contiguity(raw):
    spans = [
        _span(i + 1, name, f"{name.split('.', 1)[0]}/t{track}", start, start + dur)
        for i, (name, track, start, dur) in enumerate(raw)
    ]
    doc = {"label": "prop", "spans": spans}
    ctx = critical_path(doc)
    makespan = max(s["end"] for s in spans) - min(s["start"] for s in spans)
    longest = max(
        (s["end"] - s["start"] for s in spans if s["name"] not in CONTAINER_NAMES),
        default=0.0,
    )
    # contiguous coverage: path length == makespan, so <= and >= both hold
    assert ctx["critical_path_s"] == pytest.approx(ctx["makespan_s"])
    assert ctx["makespan_s"] == pytest.approx(makespan)
    assert ctx["critical_path_s"] <= makespan + 1e-9
    assert ctx["critical_path_s"] >= longest - 1e-9
    # segments tile [trace_start, makespan_end] without overlap or gaps
    prev_end = None
    for seg in ctx["segments"]:
        assert seg["duration_s"] >= 0.0
        assert seg["end"] == pytest.approx(seg["start"] + seg["duration_s"])
        if prev_end is not None:
            assert seg["start"] == pytest.approx(prev_end)
        prev_end = seg["end"]
    assert sum(ctx["layers"].values()) == pytest.approx(ctx["critical_path_s"])


def test_usecase_path_covers_makespan_and_contains_longest_span():
    with capture() as cap:
        run_usecase(run_large=False)
    [doc] = json.loads(json.dumps(cap.to_docs()))
    ctx = critical_path(doc)
    closed = [
        s
        for s in doc["spans"]
        if s["end"] is not None and s["name"] not in CONTAINER_NAMES
    ]
    longest = max(s["end"] - s["start"] for s in closed)
    assert ctx["critical_path_s"] == pytest.approx(ctx["makespan_s"])
    assert ctx["critical_path_s"] >= longest
    assert set(ctx["layers"]) >= {"boot", "converge"}


@pytest.fixture(scope="module")
def critpath_matrix():
    out = {}
    for scheduler in ("heap", "wheel"):
        for dispatch in ("scalar", "cohort"):
            result = run_suite(
                tiny_suite(), obs=True, scheduler=scheduler, dispatch=dispatch
            )
            assert result.ok
            doc = critpath_doc(result.obs_docs(), suite="tiny")
            out[(scheduler, dispatch)] = json.dumps(doc, sort_keys=True)
    return out


def test_critpath_doc_is_byte_identical_across_matrix(critpath_matrix):
    blobs = set(critpath_matrix.values())
    assert len(blobs) == 1, "critpath doc differs across scheduler/dispatch"


def test_critpath_doc_from_real_run_is_schema_valid(critpath_matrix):
    from repro.obs.validate import check_critpath

    doc = json.loads(next(iter(critpath_matrix.values())))
    assert check_critpath(doc) == []
    assert doc["layers"], "expected non-empty layer attribution"
