"""Causal span edges: who released whom, across entity tracks.

Every cross-layer hand-off the critical-path walk relies on must be a
recorded ``cause_id`` edge: EC2 boot releases the Chef converge on that
instance, a Galaxy job's stage-in/condor-wait cite the job, a Condor
run cites the wait that held it, a WaaS admission cites the arrival.
The links ride on domain objects (span-id carriers), not ambient state,
so they must survive cohort dispatch unchanged.
"""

import json

import pytest

from repro.core import CloudTestbed, run_usecase
from repro.obs import capture
from repro.provision import GlobusProvision
from repro.simcore import set_default_dispatch
from repro.waas import AdmissionController, WaasService, poisson_plan, waas_topology


@pytest.fixture(scope="module")
def usecase_doc():
    with capture() as cap:
        run_usecase(run_large=False)
    [doc] = json.loads(json.dumps(cap.to_docs()))
    return doc


def _by_id(doc):
    return {s["id"]: s for s in doc["spans"]}


def _named(doc, name):
    return [s for s in doc["spans"] if s["name"] == name]


def test_chef_converge_cites_the_instance_boot(usecase_doc):
    by_id = _by_id(usecase_doc)
    converges = _named(usecase_doc, "chef.converge")
    assert converges
    for span in converges:
        cause = by_id.get(span["cause_id"])
        assert cause is not None, f"converge {span['track']} has no cause"
        assert cause["name"] == "ec2.boot"
        assert cause["end"] <= span["start"]


def test_condor_run_cites_the_wait_that_held_it(usecase_doc):
    by_id = _by_id(usecase_doc)
    runs = _named(usecase_doc, "condor.run")
    assert runs
    for span in runs:
        cause = by_id.get(span["cause_id"])
        assert cause is not None
        assert cause["name"] == "condor.wait"
        assert cause["track"] == span["track"]


def test_galaxy_staging_and_dispatch_cite_the_job():
    # NFS staging is free, so stage spans only open under a backend that
    # charges per-job stage-in/out (the object store does)
    with capture() as cap:
        run_usecase(run_large=False, storage="object_store")
    [doc] = json.loads(json.dumps(cap.to_docs()))
    by_id = _by_id(doc)
    stage_ins = _named(doc, "galaxy.stage_in")
    stage_outs = _named(doc, "galaxy.stage_out")
    assert stage_ins and stage_outs
    for span in stage_ins + stage_outs:
        cause = by_id.get(span["cause_id"])
        assert cause is not None
        assert cause["name"] == "galaxy.job"
    # the condor.wait a Galaxy job opens points back at that job's span
    galaxy_jobs = {s["id"] for s in _named(doc, "galaxy.job")}
    caused_waits = [
        s for s in _named(doc, "condor.wait") if s["cause_id"] in galaxy_jobs
    ]
    assert caused_waits, "no condor.wait cites a galaxy.job"
    # the staging-concurrency gauge sampled both edges of the window
    series = doc.get("series") or {}
    assert "galaxy.staging_active" in series
    values = [v for _, v in series["galaxy.staging_active"]]
    assert max(values) >= 1.0 and values[-1] == 0.0


def test_go_file_spans_cite_their_task(usecase_doc):
    by_id = _by_id(usecase_doc)
    files = _named(usecase_doc, "go.file")
    assert files
    for span in files:
        cause = by_id.get(span["cause_id"])
        assert cause is not None
        assert cause["name"] == "go.task"


def _run_waas():
    bed = CloudTestbed(seed=0)
    gp = GlobusProvision(bed)
    gpi = gp.create(waas_topology(2, instance_type="m1.small"))
    start = bed.ctx.sim.process(gp.start(gpi.id), name="gp-start")
    bed.run(until=start)
    plan = poisson_plan(4, 6, 0.1, dag_tasks=3, unique_dags=2,
                        mean_task_work_s=30.0, seed=0)
    service = WaasService(gp, gpi.id, plan, AdmissionController(bed.ctx, max_in_flight=4))

    def drive(ctx):
        service.open()
        yield service.all_done

    bed.run(until=bed.ctx.sim.process(drive(bed.ctx), name="waas-drive"))


def test_waas_admission_chain_arrival_to_dispatch():
    with capture() as cap:
        _run_waas()
    [doc] = json.loads(json.dumps(cap.to_docs()))
    by_id = _by_id(doc)
    admits = _named(doc, "waas.admit")
    workflows = {s["id"]: s for s in _named(doc, "waas.workflow")}
    assert admits
    for span in admits:
        assert span["cause_id"] in workflows, "admit does not cite the arrival"
        assert span["start"] == span["end"], "admit is a zero-width mark"
    # task-level condor.waits cite the admission that released the workflow
    admit_ids = {s["id"] for s in admits}
    caused = [s for s in _named(doc, "condor.wait") if s["cause_id"] in admit_ids]
    assert caused, "no condor.wait cites a waas.admit"
    series = doc.get("series") or {}
    assert "waas.in_flight" in series
    assert series["waas.in_flight"][-1][1] == 0.0, "in-flight gauge did not drain"


def _usecase_doc_with_dispatch(dispatch):
    previous = set_default_dispatch(dispatch)
    try:
        with capture() as cap:
            run_usecase(run_large=False)
    finally:
        set_default_dispatch(previous)
    [doc] = json.loads(json.dumps(cap.to_docs()))
    return doc


def test_cause_links_identical_across_dispatch_modes():
    scalar = _usecase_doc_with_dispatch("scalar")
    cohort = _usecase_doc_with_dispatch("cohort")

    def edges(doc):
        by_id = _by_id(doc)
        out = []
        for s in doc["spans"]:
            cause = by_id.get(s["cause_id"])
            out.append(
                (s["name"], s["track"], s["start"],
                 (cause["name"], cause["track"]) if cause else None)
            )
        return out

    assert edges(scalar) == edges(cohort)
