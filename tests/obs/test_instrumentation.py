"""Whole-system observability: spans from real deployments.

These are the PR's acceptance tests: an instrumented use-case run must
export a schema-valid Chrome trace, its span totals must reconcile with
the trace-record timeline, the heap and wheel schedulers must record
identical span trees, and recording must leave simulation output
byte-identical to an obs-off run.
"""

import json

import pytest

from repro.core import CloudTestbed, run_usecase, usecase_topology
from repro.obs import capture, chrome_trace, summary_rows
from repro.obs.validate import check_chrome_trace
from repro.provision import GlobusProvision
from repro.reporting import collect_intervals
from repro.simcore import set_default_scheduler


def _deploy(seed: int = 60):
    """One GP deployment (boots + converges) inside a capture block."""
    with capture() as cap:
        bed = CloudTestbed(seed=seed)
        gp = GlobusProvision(bed)
        gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

        def scenario():
            yield from gp.start(gpi.id)

        bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return bed, cap


def test_deployment_spans_cover_boot_and_converge():
    bed, cap = _deploy()
    [doc] = cap.to_docs()
    names = {s["name"] for s in doc["spans"]}
    assert {"kernel.run", "ec2.boot", "chef.converge", "chef.recipe"} <= names
    # every span closed cleanly
    for span in doc["spans"]:
        assert span["end"] is not None, span
        assert span["status"] == "ok", span
    # recipes nest under their converge span
    by_id = {s["id"]: s for s in doc["spans"]}
    for s in doc["spans"]:
        if s["name"] == "chef.recipe":
            assert by_id[s["parent_id"]]["name"] == "chef.converge"


def test_span_totals_reconcile_with_timeline_intervals():
    bed, cap = _deploy()
    rows = {r["name"]: r for r in summary_rows(cap)}
    intervals = collect_intervals(bed.ctx.trace)

    def interval_total(prefix):
        return sum(iv.end - iv.start for iv in intervals if iv.label.startswith(prefix))

    assert rows["ec2.boot"]["total_s"] == pytest.approx(interval_total("boot"))
    assert rows["chef.converge"]["total_s"] == pytest.approx(interval_total("chef"))


def test_span_based_intervals_match_trace_based_intervals():
    bed, cap = _deploy()
    from_trace = sorted(
        (iv.label, iv.start, iv.end) for iv in collect_intervals(bed.ctx.trace)
    )
    from_spans = sorted(
        (iv.label, iv.start, iv.end) for iv in collect_intervals(cap)
    )
    assert from_spans == from_trace


def test_usecase_transfer_spans_reconcile_with_go_rows():
    with capture() as cap:
        result = run_usecase(run_large=False)
    rows = {r["name"]: r for r in summary_rows(cap)}
    assert rows["go.task"]["count"] >= 1
    # reconcile against the go rows of the span-derived timeline
    go_total = sum(
        iv.end - iv.start
        for iv in collect_intervals(cap)
        if iv.label.startswith("go ")
    )
    assert rows["go.task"]["total_s"] == pytest.approx(go_total)
    assert result.step3_job.state.value == "ok"


def test_usecase_chrome_trace_is_perfetto_valid():
    with capture() as cap:
        run_usecase(run_large=False)
    doc = chrome_trace(cap)
    assert check_chrome_trace(doc) == []


def test_heap_and_wheel_record_identical_span_trees():
    docs = {}
    for scheduler in ("heap", "wheel"):
        previous = set_default_scheduler(scheduler)
        try:
            with capture() as cap:
                run_usecase(run_large=False)
        finally:
            set_default_scheduler(previous)
        # the kernel.run span names the scheduler; everything else must match
        doc = json.loads(json.dumps(cap.to_docs()))
        for d in doc:
            for span in d["spans"]:
                span["attrs"].pop("scheduler", None)
        docs[scheduler] = doc
    assert docs["heap"] == docs["wheel"]


def test_observability_does_not_perturb_simulation_output():
    quiet = run_usecase(run_large=False)
    with capture():
        observed = run_usecase(run_large=False)
    assert quiet.steps34_seconds == observed.steps34_seconds
    assert quiet.deploy_seconds == observed.deploy_seconds
