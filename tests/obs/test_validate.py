"""Chrome trace schema checker: the CI gate for exported traces."""

import json

from repro.obs import ObsRecorder, chrome_trace
from repro.obs.validate import check_chrome_trace, main


def _valid_doc():
    rec = ObsRecorder(label="v")
    rec.finish(rec.start("w", track="a"))
    return chrome_trace(rec)


def test_valid_doc_passes():
    assert check_chrome_trace(_valid_doc()) == []


def test_rejects_non_object_and_missing_events():
    assert check_chrome_trace([]) != []
    assert check_chrome_trace({}) != []
    assert check_chrome_trace({"traceEvents": {}}) != []


def test_rejects_unknown_phase_and_bad_fields():
    doc = _valid_doc()
    doc["traceEvents"][-1]["ph"] = "Q"
    assert any("ph" in e for e in check_chrome_trace(doc))

    doc = _valid_doc()
    doc["traceEvents"][-1]["ts"] = -1.0
    assert check_chrome_trace(doc) != []

    doc = _valid_doc()
    doc["traceEvents"][-1]["dur"] = float("nan")
    assert check_chrome_trace(doc) != []

    doc = _valid_doc()
    doc["traceEvents"][-1]["pid"] = True  # bool is not an acceptable id
    assert check_chrome_trace(doc) != []


def test_requires_at_least_one_complete_event():
    doc = _valid_doc()
    doc["traceEvents"] = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any("X" in e for e in check_chrome_trace(doc))


def test_detects_non_monotone_timestamps_per_track():
    rec = ObsRecorder(label="v")
    rec.finish(rec.start("w", track="a"))
    doc = chrome_trace(rec)
    doc["traceEvents"].append(
        dict(doc["traceEvents"][-1], ts=doc["traceEvents"][-1]["ts"] + 5.0)
    )
    doc["traceEvents"].append(dict(doc["traceEvents"][-1], ts=0.0))
    # hand-built out-of-order event on the same (pid, tid)
    errors = check_chrome_trace(doc)
    assert any("went backwards" in e for e in errors)


def test_cli_main_ok_and_failure(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_valid_doc()))
    assert main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": []}))
    assert main([str(bad)]) == 1

    assert main([]) == 2


def test_cli_main_empty_file_fails(tmp_path, capsys):
    """A zero-byte (or whitespace-only) trace means the exporter never
    wrote — that must be a named failure, never a pass."""
    empty = tmp_path / "empty.trace.json"
    empty.write_text("")
    assert main([str(empty)]) == 1
    assert "empty trace file" in capsys.readouterr().err

    blank = tmp_path / "blank.trace.json"
    blank.write_text("  \n\t\n")
    assert main([str(blank)]) == 1
    assert "empty trace file" in capsys.readouterr().err


def test_cli_main_truncated_file_fails(tmp_path, capsys):
    """A trace cut off mid-write is malformed JSON, reported as such."""
    full = json.dumps(_valid_doc())
    truncated = tmp_path / "truncated.trace.json"
    truncated.write_text(full[: len(full) // 2])
    assert main([str(truncated)]) == 1
    assert "truncated or malformed JSON" in capsys.readouterr().err


def test_cli_main_empty_file_fails_even_alongside_good_files(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_valid_doc()))
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert main([str(good), str(empty)]) == 1
    captured = capsys.readouterr()
    assert "ok" in captured.out
    assert "empty trace file" in captured.err
