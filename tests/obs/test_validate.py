"""Chrome trace schema checker: the CI gate for exported traces."""

import json

from repro.obs import ObsRecorder, chrome_trace
from repro.obs.validate import check_chrome_trace, main


def _valid_doc():
    rec = ObsRecorder(label="v")
    rec.finish(rec.start("w", track="a"))
    return chrome_trace(rec)


def test_valid_doc_passes():
    assert check_chrome_trace(_valid_doc()) == []


def test_rejects_non_object_and_missing_events():
    assert check_chrome_trace([]) != []
    assert check_chrome_trace({}) != []
    assert check_chrome_trace({"traceEvents": {}}) != []


def test_rejects_unknown_phase_and_bad_fields():
    doc = _valid_doc()
    doc["traceEvents"][-1]["ph"] = "Q"
    assert any("ph" in e for e in check_chrome_trace(doc))

    doc = _valid_doc()
    doc["traceEvents"][-1]["ts"] = -1.0
    assert check_chrome_trace(doc) != []

    doc = _valid_doc()
    doc["traceEvents"][-1]["dur"] = float("nan")
    assert check_chrome_trace(doc) != []

    doc = _valid_doc()
    doc["traceEvents"][-1]["pid"] = True  # bool is not an acceptable id
    assert check_chrome_trace(doc) != []


def test_requires_at_least_one_complete_event():
    doc = _valid_doc()
    doc["traceEvents"] = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any("X" in e for e in check_chrome_trace(doc))


def test_detects_non_monotone_timestamps_per_track():
    rec = ObsRecorder(label="v")
    rec.finish(rec.start("w", track="a"))
    doc = chrome_trace(rec)
    doc["traceEvents"].append(
        dict(doc["traceEvents"][-1], ts=doc["traceEvents"][-1]["ts"] + 5.0)
    )
    doc["traceEvents"].append(dict(doc["traceEvents"][-1], ts=0.0))
    # hand-built out-of-order event on the same (pid, tid)
    errors = check_chrome_trace(doc)
    assert any("went backwards" in e for e in errors)


def test_cli_main_ok_and_failure(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_valid_doc()))
    assert main([str(good)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": []}))
    assert main([str(bad)]) == 1

    assert main([]) == 2


def test_cli_main_empty_file_fails(tmp_path, capsys):
    """A zero-byte (or whitespace-only) trace means the exporter never
    wrote — that must be a named failure, never a pass."""
    empty = tmp_path / "empty.trace.json"
    empty.write_text("")
    assert main([str(empty)]) == 1
    assert "empty trace file" in capsys.readouterr().err

    blank = tmp_path / "blank.trace.json"
    blank.write_text("  \n\t\n")
    assert main([str(blank)]) == 1
    assert "empty trace file" in capsys.readouterr().err


def test_cli_main_truncated_file_fails(tmp_path, capsys):
    """A trace cut off mid-write is malformed JSON, reported as such."""
    full = json.dumps(_valid_doc())
    truncated = tmp_path / "truncated.trace.json"
    truncated.write_text(full[: len(full) // 2])
    assert main([str(truncated)]) == 1
    assert "truncated or malformed JSON" in capsys.readouterr().err


def test_cli_main_empty_file_fails_even_alongside_good_files(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_valid_doc()))
    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert main([str(good), str(empty)]) == 1
    captured = capsys.readouterr()
    assert "ok" in captured.out
    assert "empty trace file" in captured.err


# -- .critpath.json ---------------------------------------------------------


def _valid_critpath():
    from repro.obs import critpath_doc

    rec = ObsRecorder(label="cp")
    clock = [0.0]
    rec._clock = lambda: clock[0]
    boot = rec.start("ec2.boot", track="ec2/i-1")
    clock[0] = 60.0
    rec.finish(boot)
    run = rec.start("condor.run", track="condor/job-1", cause=boot.id)
    clock[0] = 100.0
    rec.finish(run)
    return json.loads(json.dumps(critpath_doc(rec, suite="cp")))


def test_valid_critpath_doc_passes():
    from repro.obs.validate import check_critpath

    assert check_critpath(_valid_critpath()) == []


def test_critpath_rejects_bad_version_and_missing_sections():
    from repro.obs.validate import check_critpath

    assert check_critpath([]) != []
    doc = _valid_critpath()
    doc["version"] = 2
    assert any("version" in e for e in check_critpath(doc))
    doc = _valid_critpath()
    del doc["contexts"]
    assert any("contexts" in e for e in check_critpath(doc))


def test_critpath_rejects_gap_sum_and_layer_drift():
    from repro.obs.validate import check_critpath

    doc = _valid_critpath()
    doc["contexts"][0]["segments"][1]["start"] += 5.0
    assert any("gap in coverage" in e for e in check_critpath(doc))

    doc = _valid_critpath()
    doc["contexts"][0]["makespan_s"] += 3.0
    assert any("makespan_s" in e for e in check_critpath(doc))

    doc = _valid_critpath()
    doc["contexts"][0]["layers"]["boot"] += 2.0
    assert any("layers['boot']" in e for e in check_critpath(doc))

    doc = _valid_critpath()
    seg = doc["contexts"][0]["segments"][0]
    seg["duration_s"] = seg["duration_s"] + 1.0
    assert any("duration_s" in e for e in check_critpath(doc))


def test_cli_validates_critpath_files(tmp_path, capsys):
    good = tmp_path / "suite.critpath.json"
    good.write_text(json.dumps(_valid_critpath()))
    assert main([str(good)]) == 0
    assert "contexts" in capsys.readouterr().out

    empty = tmp_path / "empty.critpath.json"
    empty.write_text("")
    assert main([str(empty)]) == 1
    assert "empty" in capsys.readouterr().err

    truncated = tmp_path / "cut.critpath.json"
    truncated.write_text(json.dumps(_valid_critpath())[:40])
    assert main([str(truncated)]) == 1
    assert "truncated or malformed JSON" in capsys.readouterr().err


# -- .timeseries.jsonl ------------------------------------------------------


def _valid_timeseries_text():
    from repro.obs import timeseries_jsonl

    rec = ObsRecorder(label="ts")
    clock = [0.0]
    rec._clock = lambda: clock[0]
    rec.series("condor.idle_jobs").record(3)
    clock[0] = 5.0
    rec.series("condor.idle_jobs").record(1)
    return timeseries_jsonl(rec)


def test_valid_timeseries_passes(tmp_path, capsys):
    from repro.obs.validate import check_timeseries

    lines = [
        (i + 1, json.loads(line))
        for i, line in enumerate(_valid_timeseries_text().splitlines())
    ]
    assert check_timeseries(lines) == []
    path = tmp_path / "suite.timeseries.jsonl"
    path.write_text(_valid_timeseries_text())
    assert main([str(path)]) == 0
    assert "samples" in capsys.readouterr().out


def test_timeseries_rejects_bad_fields_and_backwards_time():
    from repro.obs.validate import check_timeseries

    assert check_timeseries([(1, [])]) != []
    assert check_timeseries(
        [(1, {"context": "", "series": "s", "t": 0.0, "value": 1.0})]
    ) != []
    assert check_timeseries(
        [(1, {"context": "c", "series": "s", "t": -1.0, "value": 1.0})]
    ) != []
    assert check_timeseries(
        [(1, {"context": "c", "series": "s", "t": 0.0, "value": float("nan")})]
    ) != []
    errors = check_timeseries(
        [
            (1, {"context": "c", "series": "s", "t": 5.0, "value": 1.0}),
            (2, {"context": "c", "series": "s", "t": 2.0, "value": 1.0}),
        ]
    )
    assert any("went backwards" in e for e in errors)
    # different series may interleave times freely
    assert check_timeseries(
        [
            (1, {"context": "c", "series": "a", "t": 5.0, "value": 1.0}),
            (2, {"context": "c", "series": "b", "t": 2.0, "value": 1.0}),
        ]
    ) == []


def test_cli_timeseries_empty_vs_truncated_are_distinct(tmp_path, capsys):
    empty = tmp_path / "empty.timeseries.jsonl"
    empty.write_text("")
    assert main([str(empty)]) == 1
    err_empty = capsys.readouterr().err
    assert "empty" in err_empty

    cut = tmp_path / "cut.timeseries.jsonl"
    cut.write_text(_valid_timeseries_text()[:-20])
    assert main([str(cut)]) == 1
    err_cut = capsys.readouterr().err
    assert "truncated or malformed JSON on line" in err_cut
    assert err_cut != err_empty
